"""Variable-length byte-string keys and query batches.

:class:`ByteKeySet` stores a sorted distinct set of variable-length byte
keys in an arrow-style layout — one flat ``uint8`` buffer plus an
``int64`` offsets array — alongside a cached null-padded ``S{L}`` view
(``L`` = maximum key length) whose ``memcmp`` order equals the padded
big-endian ``8*L``-bit integer order the scalar filters use.  All the
vectorised machinery (prefix extraction, LCPs, hashing, slot windows)
runs over the ``(n, L)`` uint8 matrix view of that padded array; see
:mod:`repro.keys.bytestr`.

Keys are canonicalised by stripping trailing null bytes: the padded
integer domain cannot distinguish a key from its null-padded extensions
(the paper makes the same concession for its string experiments), so the
stripped form is the canonical representative and raw lexicographic order
coincides with padded order.

:class:`ByteQueryBatch` is the matching :class:`~repro.workloads.batch.
QueryBatch` subclass with ``S``-dtype bounds.  Its ``is_vector`` is False
— the int64 fast paths never apply — and byte-aware consumers branch on
``isinstance(batch, ByteQueryBatch)`` *before* consulting ``is_vector``,
so unported call sites fall back to the (correct) scalar loops via
:meth:`pairs`, which yields padded big-integer bounds.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.keys.bytestr import (
    adjacent_lcp_bits,
    mask_rows,
    strings_as_rows,
    unique_rows,
)
from repro.keys.keyspace import StringKeySpace
from repro.workloads.batch import QueryBatch
from repro.workloads.keyset import KeySet

__all__ = ["ByteKeySet", "ByteQueryBatch", "byte_probe_matrix"]


def _clean_key(key) -> bytes:
    """Canonical byte form of a raw key: utf-8 encode, strip trailing nulls."""
    return StringKeySpace._as_bytes(key).rstrip(b"\x00")


class ByteKeySet(KeySet):
    """Sorted distinct variable-length byte keys (arrow-style flat layout)."""

    __slots__ = (
        "width",
        "max_length",
        "buffer",
        "offsets",
        "keys",
        "_matrix",
        "_prefix_cache",
        "_prefix_counts",
    )

    def __init__(self, keys: Iterable[bytes | str], max_length: int | None = None):
        cleaned = sorted({_clean_key(key) for key in keys})
        longest = max((len(key) for key in cleaned), default=1)
        length = max_length if max_length is not None else max(1, longest)
        if length <= 0:
            raise ValueError("maximum key length must be positive")
        if longest > length:
            raise ValueError(f"key of length {longest} exceeds maximum {length}")
        lengths = np.array([len(key) for key in cleaned], dtype=np.int64)
        offsets = np.zeros(len(cleaned) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        self._adopt(
            np.frombuffer(b"".join(cleaned), dtype=np.uint8),
            offsets,
            np.array(cleaned, dtype=f"S{length}"),
            length,
        )

    def _adopt(
        self,
        buffer: np.ndarray,
        offsets: np.ndarray,
        padded: np.ndarray,
        max_length: int,
    ) -> None:
        self.width = 8 * max_length
        self.max_length = max_length
        self.buffer = buffer
        self.offsets = offsets
        self.keys = padded
        self._matrix: np.ndarray | None = None
        self._prefix_cache: dict[int, np.ndarray] = {}
        self._prefix_counts: list[int] | None = None

    @classmethod
    def from_raw(
        cls, keys: Iterable[bytes | str], max_length: int | None = None
    ) -> "ByteKeySet":
        """Build from any iterable of byte/str keys (sorted + deduped here)."""
        return cls(keys, max_length=max_length)

    @classmethod
    def _trusted(
        cls,
        buffer: np.ndarray,
        offsets: np.ndarray,
        padded: np.ndarray,
        max_length: int,
    ) -> "ByteKeySet":
        """Adopt pre-validated storage (the slice / sorted_take constructor)."""
        instance = cls.__new__(cls)
        instance._adopt(buffer, offsets, padded, max_length)
        return instance

    @property
    def is_vector(self) -> bool:
        return False

    @property
    def is_bytes(self) -> bool:
        return True

    @property
    def matrix(self) -> np.ndarray:
        """The ``(n, L)`` uint8 view of the padded keys (cached, zero-copy)."""
        if self._matrix is None:
            self._matrix = strings_as_rows(self.keys)
        return self._matrix

    def key_at(self, index: int) -> bytes:
        """Materialise one key from the flat buffer (canonical bytes)."""
        start, stop = int(self.offsets[index]), int(self.offsets[index + 1])
        return self.buffer[start:stop].tobytes()

    def as_list(self) -> list[bytes]:
        return self.keys.tolist()

    def as_ints(self) -> np.ndarray:
        """Padded big-endian integer view — the one legacy conversion shim."""
        length = self.max_length
        return np.array(
            [int.from_bytes(key.ljust(length, b"\x00"), "big") for key in self.as_list()],
            dtype=object,
        )

    def slice(self, start: int, stop: int) -> "ByteKeySet":
        """Zero-copy sub-range view: offsets and padded keys alias the parent."""
        if not 0 <= start <= stop <= len(self):
            raise ValueError(
                f"slice [{start}, {stop}) outside the key set of size {len(self)}"
            )
        return self._trusted(
            self.buffer,
            self.offsets[start : stop + 1],
            self.keys[start:stop],
            self.max_length,
        )

    @classmethod
    def _from_padded(cls, padded: np.ndarray, max_length: int) -> "ByteKeySet":
        """Adopt a sorted distinct canonical ``S``-dtype array verbatim.

        The caller vouches for the invariants (sorted, distinct, no key
        ending in a null byte); the flat buffer and offsets are rebuilt
        here.  ``tolist`` strips trailing nulls, which is exactly the
        canonical form — interior nulls survive.
        """
        chosen = padded.tolist()
        lengths = np.array([len(key) for key in chosen], dtype=np.int64)
        offsets = np.zeros(len(chosen) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        buffer = np.frombuffer(b"".join(chosen), dtype=np.uint8)
        return cls._trusted(buffer, offsets, padded, max_length)

    def sorted_take(self, indices: np.ndarray) -> "ByteKeySet":
        """Select distinct ``indices`` and rebuild a sorted, compact set."""
        return self._from_padded(np.sort(self.keys[indices]), self.max_length)

    def prefixes(self, length: int) -> np.ndarray:
        """Sorted distinct prefixes as canonical-byte rows (cached)."""
        if not 0 <= length <= self.width:
            raise ValueError(f"prefix length {length} outside [0, {self.width}]")
        cached = self._prefix_cache.get(length)
        if cached is None:
            if length == 0:
                cached = np.zeros((min(len(self), 1), 0), dtype=np.uint8)
            else:
                cached = unique_rows(mask_rows(self.matrix, length))
            self._prefix_cache[length] = cached
        return cached

    def prefix_counts(self) -> list[int]:
        """``counts[l] == |K_l|``, from one adjacent-LCP pass (cached)."""
        if self._prefix_counts is None:
            counts = np.zeros(self.width + 1, dtype=np.int64)
            if len(self):
                counts[0] = 1
                if len(self) > 1:
                    lcps = adjacent_lcp_bits(self.matrix)
                    histogram = np.bincount(lcps, minlength=self.width + 1)
                    counts[1:] = 1 + np.cumsum(histogram)[: self.width]
                else:
                    counts[1:] = 1
            self._prefix_counts = counts.tolist()
        return self._prefix_counts

    def distinguishing_byte_depths(self) -> np.ndarray:
        """Per-key minimum byte depth that distinguishes it (SuRF pruning)."""
        n = len(self)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        if n == 1:
            return np.ones(1, dtype=np.int64)
        first_diff = adjacent_lcp_bits(self.matrix) // 8
        left = np.concatenate(([-1], first_diff))
        right = np.concatenate((first_diff, [-1]))
        return np.minimum(self.max_length, np.maximum(left, right) + 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ByteKeySet(n={len(self)}, max_length={self.max_length})"


class ByteQueryBatch(QueryBatch):
    """Inclusive ``[lo, hi]`` byte-range queries over an ``8*L``-bit space."""

    __slots__ = ("max_length",)

    def __init__(self, los, his, max_length: int, validate: bool = True):
        if max_length <= 0:
            raise ValueError("maximum key length must be positive")
        self.width = 8 * max_length
        self.max_length = max_length
        self.los = self._as_strings(los, his)
        self.his = self._as_strings(his, los, swap=True)
        if self.los.shape != self.his.shape or self.los.ndim != 1:
            raise ValueError("los and his must be parallel one-dimensional arrays")
        self._validated = len(self) == 0
        if validate and not self._validated:
            self._validate()

    def _as_strings(self, values, others, swap: bool = False) -> np.ndarray:
        length = self.max_length
        if (
            isinstance(values, np.ndarray)
            and values.dtype.kind == "S"
            and values.dtype.itemsize == length
        ):
            return values
        cleaned = []
        other_list = list(others) if not isinstance(others, np.ndarray) else list(others)
        for index, value in enumerate(values):
            raw = StringKeySpace._as_bytes(value)
            if len(raw) > length:
                other = StringKeySpace._as_bytes(other_list[index])
                lo, hi = (other, raw) if swap else (raw, other)
                raise ValueError(
                    f"query range [{lo!r}, {hi!r}] outside the {self.width}-bit key space"
                )
            cleaned.append(raw)
        return np.array(cleaned, dtype=f"S{length}")

    def _validate(self) -> None:
        """Reject ``lo > hi`` in padded (``memcmp``) order, scalar-message style."""
        bad = self.los > self.his
        if bad.any():
            index = int(np.argmax(bad))
            lo, hi = bytes(self.los[index]), bytes(self.his[index])
            raise ValueError(f"empty query range [{lo!r}, {hi!r}]")
        self._validated = True

    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[tuple[bytes, bytes]],
        max_length: int,
        validate: bool = True,
    ) -> "ByteQueryBatch":
        """Build a batch from inclusive ``(lo, hi)`` byte pairs."""
        pairs = list(pairs)
        if not pairs:
            return cls([], [], max_length, validate=False)
        los, his = zip(*pairs)
        return cls(los, his, max_length, validate=validate)

    @classmethod
    def points(cls, keys: Sequence[bytes], max_length: int) -> "ByteQueryBatch":
        """Build a batch of point queries ``(k, k)``."""
        keys = list(keys)
        return cls(keys, keys, max_length)

    @property
    def is_vector(self) -> bool:
        return False

    @property
    def lo_matrix(self) -> np.ndarray:
        """Uint8 matrix view of the padded lower bounds."""
        return strings_as_rows(self.los)

    @property
    def hi_matrix(self) -> np.ndarray:
        """Uint8 matrix view of the padded upper bounds."""
        return strings_as_rows(self.his)

    def byte_pairs(self) -> Iterator[tuple[bytes, bytes]]:
        """Iterate the queries as canonical (null-stripped) byte pairs."""
        return zip(self.los.tolist(), self.his.tolist())

    def pairs(self) -> Iterator[tuple[int, int]]:
        """Iterate as padded big-integer pairs — the scalar-loop contract."""
        length = self.max_length
        for lo, hi in self.byte_pairs():
            yield (
                int.from_bytes(lo.ljust(length, b"\x00"), "big"),
                int.from_bytes(hi.ljust(length, b"\x00"), "big"),
            )

    def select(self, indices: np.ndarray) -> "ByteQueryBatch":
        sub = super().select(indices)
        sub.max_length = self.max_length
        return sub

    def spans(self) -> np.ndarray:
        """``hi - lo + 1`` per query, as arbitrary-precision Python ints."""
        return np.array([hi - lo + 1 for lo, hi in self.pairs()], dtype=object)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ByteQueryBatch(n={len(self)}, max_length={self.max_length})"


def byte_probe_matrix(keys, width: int) -> np.ndarray | None:
    """Uint8 probe matrix for a byte-mode filter's batch path, or ``None``.

    Accepts a :class:`ByteKeySet` (zero-copy matrix view), an S-dtype array,
    or a list/tuple of byte/str probes; shorter probes are null-padded out
    to the filter's ``width`` and longer ones raise (they cannot be in the
    key space, and silent truncation could fabricate a false negative).
    Non-byte inputs return ``None`` so the caller falls back to its scalar
    (padded big-integer) loop.
    """
    nb = (width + 7) // 8
    if isinstance(keys, ByteKeySet):
        if keys.width != width:
            raise ValueError(
                f"key set width {keys.width} does not match filter width {width}"
            )
        return keys.matrix
    values = None
    if isinstance(keys, np.ndarray) and keys.dtype.kind == "S":
        if keys.dtype.itemsize == nb:
            return strings_as_rows(keys)
        values = keys.tolist()
    elif (
        isinstance(keys, (list, tuple))
        and keys
        and isinstance(keys[0], (bytes, str, np.bytes_))
    ):
        values = [StringKeySpace._as_bytes(key) for key in keys]
    if values is None:
        return None
    longest = max((len(value) for value in values), default=0)
    if longest > nb:
        raise ValueError(f"key of length {longest} exceeds maximum {nb}")
    return strings_as_rows(np.array(values, dtype=f"S{nb}"))
