"""Shared array representation for keys and query batches.

Every layer of the batched execution path speaks two types:

* :class:`EncodedKeySet` — a sorted, distinct, bounds-checked key set in a
  fixed-width integer key space, backed by a numpy array;
* :class:`QueryBatch` — a batch of inclusive ``[lo, hi]`` range queries in
  the same space, backed by parallel ``los``/``his`` arrays (a point query
  is ``lo == hi``).

For word-sized key spaces (``width <= MAX_VECTOR_WIDTH`` — 63 bits, so
values *and* spans fit ``int64``) the backing arrays are ``int64`` and every
consumer (bulk Bloom probes, the vectorised CPFPR model, the batch filter
API) runs a few numpy operations per batch.  Wider spaces (null-padded
string keys can be thousands of bits) fall back to ``object`` arrays of
Python ints; consumers detect ``is_vector == False`` and take their scalar
per-item paths, so correctness never depends on the fast path.

Both types validate on construction with the same rules as the scalar
entry points (:func:`repro.keys.keyspace.sorted_distinct_keys` for keys,
``RangeFilter._check_range`` for queries), so a batch handed to any filter
or model is already known to be well-formed.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.keys.keyspace import KeySpace, sorted_distinct_keys
from repro.keys.lcp import MAX_VECTOR_WIDTH, unique_prefix_counts, unique_prefix_counts_array
from repro.workloads.keyset import KeySet

__all__ = [
    "MAX_VECTOR_WIDTH",
    "EncodedKeySet",
    "QueryBatch",
    "as_key_array",
    "coerce_keys",
    "coerce_query_batch",
    "probe_key_array",
    "slot_bounds",
]


def slot_bounds(
    los: np.ndarray,
    his: np.ndarray,
    width: int,
    prefix_len: int,
    max_probes: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-query prefix-slot interval and probe clamp: ``(plo, phi, clamped)``.

    ``plo``/``phi`` bound the ``prefix_len``-bit slots each ``[lo, hi]``
    covers; ``clamped`` marks queries spanning more than ``max_probes``
    slots (the filters answer those with a conservative True, and the CPFPR
    model charges them as certain positives).  The clamp compares the span
    against ``max_probes - 1`` instead of forming the slot count
    ``phi - plo + 1``, which would overflow int64 on a full-space query in
    a 63-bit key space.  Every Bloom-layer consumer shares this helper so
    the overflow-sensitive idiom lives in exactly one place.
    """
    shift = np.int64(width - prefix_len)
    plo = los >> shift
    phi = his >> shift
    return plo, phi, phi - plo > max_probes - 1


def _is_vector_width(width: int) -> bool:
    return width <= MAX_VECTOR_WIDTH


class EncodedKeySet(KeySet):
    """A sorted distinct key set in a ``width``-bit space, as a numpy array.

    ``keys`` holds ``int64`` values for word-sized spaces and Python ints
    (``object`` dtype) otherwise; either way the array is sorted, distinct
    and bounds-checked, so every consumer can skip its own validation.
    """

    __slots__ = ("width", "keys", "_prefix_cache", "_prefix_counts")

    def __init__(self, keys: Iterable[int], width: int):
        if width <= 0:
            raise ValueError("key width must be positive")
        self.width = width
        if _is_vector_width(width):
            if isinstance(keys, np.ndarray) and keys.dtype.kind in "iu":
                arr = np.unique(keys.astype(np.int64, copy=False))
            else:
                arr = np.array(sorted_distinct_keys(keys, width), dtype=np.int64)
            if arr.size and not 0 <= int(arr[0]) <= int(arr[-1]) < (1 << width):
                raise ValueError(f"key outside the {width}-bit key space")
            self.keys = arr
        else:
            self.keys = np.array(sorted_distinct_keys(keys, width), dtype=object)
        self._prefix_cache: dict[int, np.ndarray] = {}
        self._prefix_counts: list[int] | None = None

    @classmethod
    def from_raw(cls, keys: Iterable, key_space: KeySpace) -> "EncodedKeySet":
        """Encode raw-domain keys through ``key_space`` and wrap them."""
        return cls(key_space.encode_many(keys), key_space.width)

    @property
    def is_vector(self) -> bool:
        """Whether the backing array supports the numpy fast paths."""
        return self.keys.dtype != object

    def __len__(self) -> int:
        return int(self.keys.size)

    def __iter__(self) -> Iterator[int]:
        return iter(self.as_list())

    def as_list(self) -> list[int]:
        """Return the keys as a plain sorted list of Python ints."""
        return self.keys.tolist()

    def as_ints(self) -> np.ndarray:
        """The integer view of the keys — the backing array itself."""
        return self.keys

    @classmethod
    def _trusted(cls, arr: np.ndarray, width: int) -> "EncodedKeySet":
        """Wrap an array already known to be sorted, distinct and in-bounds.

        The internal constructor behind :meth:`slice` and the LSM level
        builder: no validation, no copy — ``arr`` is adopted as the backing
        store, so the caller vouches for the invariants.
        """
        instance = cls.__new__(cls)
        instance.width = width
        instance.keys = arr
        instance._prefix_cache = {}
        instance._prefix_counts = None
        return instance

    def slice(self, start: int, stop: int) -> "EncodedKeySet":
        """Return the contiguous sub-range ``[start, stop)`` as a zero-copy view.

        Basic numpy slicing shares the backing buffer, and a contiguous slice
        of a sorted distinct in-bounds array keeps every ``EncodedKeySet``
        invariant, so no validation (and no copy) is needed — this is the
        per-SST construction path: one encoded key array, many SSTable views.
        """
        if not 0 <= start <= stop <= len(self):
            raise ValueError(
                f"slice [{start}, {stop}) outside the key set of size {len(self)}"
            )
        return self._trusted(self.keys[start:stop], self.width)

    def sorted_take(self, indices: np.ndarray) -> "EncodedKeySet":
        """Select distinct ``indices`` (any order) and re-sort the result."""
        return self._trusted(np.sort(self.keys[indices]), self.width)

    def prefixes(self, length: int) -> np.ndarray:
        """Return the sorted distinct ``length``-bit key prefixes (cached)."""
        if not 0 <= length <= self.width:
            raise ValueError(f"prefix length {length} outside [0, {self.width}]")
        cached = self._prefix_cache.get(length)
        if cached is None:
            shift = self.width - length
            if self.is_vector:
                cached = np.unique(self.keys >> np.int64(shift)) if shift else self.keys
            else:
                cached = np.array(
                    sorted({key >> shift for key in self.keys.tolist()}), dtype=object
                )
            self._prefix_cache[length] = cached
        return cached

    def prefix_counts(self) -> list[int]:
        """Return ``counts`` with ``counts[l] == |K_l|`` (cached)."""
        if self._prefix_counts is None:
            if self.is_vector:
                self._prefix_counts = unique_prefix_counts_array(
                    self.keys, self.width
                ).tolist()
            else:
                self._prefix_counts = unique_prefix_counts(self.as_list(), self.width)
        return self._prefix_counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EncodedKeySet(n={len(self)}, width={self.width})"


class QueryBatch:
    """A batch of inclusive ``[lo, hi]`` range queries over one key space."""

    __slots__ = ("width", "los", "his", "_validated")

    def __init__(self, los, his, width: int, validate: bool = True):
        if width <= 0:
            raise ValueError("key width must be positive")
        self.width = width
        if _is_vector_width(width):
            try:
                self.los = np.asarray(los, dtype=np.int64)
                self.his = np.asarray(his, dtype=np.int64)
            except (OverflowError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"query bound outside the {width}-bit key space"
                ) from exc
        else:
            self.los = np.array([int(lo) for lo in los], dtype=object)
            self.his = np.array([int(hi) for hi in his], dtype=object)
        if self.los.shape != self.his.shape or self.los.ndim != 1:
            raise ValueError("los and his must be parallel one-dimensional arrays")
        self._validated = len(self) == 0
        if validate and not self._validated:
            self._validate()

    def _validate(self) -> None:
        """Apply ``RangeFilter._check_range``'s rules (and messages) batch-wide.

        Sets ``_validated`` on success so deferred validation
        (``validate=False`` construction followed by
        :func:`coerce_query_batch`) runs at most once per batch.
        """
        top = (1 << self.width) - 1
        if self.is_vector:
            bad_order = self.los > self.his
            bad_bounds = (self.los < 0) | (self.his > top)
            bad = bad_order | bad_bounds
            if bad.any():
                # Report the *first* offending query, defect-checked in the
                # scalar _check_range order, so a mixed-defect batch raises
                # the same error a per-query loop would.
                index = int(np.argmax(bad))
                lo, hi = int(self.los[index]), int(self.his[index])
                if lo > hi:
                    raise ValueError(f"empty query range [{lo}, {hi}]")
                raise ValueError(
                    f"query range [{lo}, {hi}] outside the {self.width}-bit key space"
                )
        else:
            for lo, hi in zip(self.los.tolist(), self.his.tolist()):
                if lo > hi:
                    raise ValueError(f"empty query range [{lo}, {hi}]")
                if lo < 0 or hi > top:
                    raise ValueError(
                        f"query range [{lo}, {hi}] outside the {self.width}-bit key space"
                    )
        self._validated = True

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[int, int]], width: int, validate: bool = True
    ) -> "QueryBatch":
        """Build a batch from an iterable of inclusive ``(lo, hi)`` pairs."""
        pairs = list(pairs)
        if not pairs:
            return cls([], [], width, validate=False)
        los, his = zip(*pairs)
        return cls(los, his, width, validate=validate)

    @classmethod
    def points(cls, keys: Iterable[int], width: int) -> "QueryBatch":
        """Build a batch of point queries ``(k, k)``."""
        keys = list(keys)
        return cls(keys, keys, width)

    @classmethod
    def from_raw(
        cls, pairs: Iterable[tuple], key_space: KeySpace
    ) -> "QueryBatch":
        """Encode raw-domain ``(lo, hi)`` pairs through ``key_space``."""
        encoded = [
            (key_space.encode(lo), key_space.encode(hi)) for lo, hi in pairs
        ]
        return cls.from_pairs(encoded, key_space.width)

    @property
    def is_vector(self) -> bool:
        """Whether the backing arrays support the numpy fast paths."""
        return self.los.dtype != object

    def __len__(self) -> int:
        return int(self.los.size)

    def pairs(self) -> Iterator[tuple[int, int]]:
        """Iterate the queries as ``(lo, hi)`` pairs of Python ints."""
        return zip(self.los.tolist(), self.his.tolist())

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return self.pairs()

    def to_list(self) -> list[tuple[int, int]]:
        """Return the queries as a plain list of ``(lo, hi)`` pairs."""
        return list(self.pairs())

    def select(self, indices: np.ndarray) -> "QueryBatch":
        """Return the sub-batch selected by ``indices`` (boolean or integer).

        The sub-batch inherits this batch's validation state — selecting
        rows cannot introduce an invalid query — so consumers that carve
        one parent batch into many per-SST sub-batches (the LSM probe
        router) never pay for re-validation.
        """
        sub = type(self).__new__(type(self))
        sub.width = self.width
        sub.los = self.los[indices]
        sub.his = self.his[indices]
        sub._validated = self._validated
        return sub

    def spans(self) -> np.ndarray:
        """Return ``hi - lo + 1`` per query (the key count each covers).

        Returned as ``uint64``: the full-space query in a 63-bit space
        covers ``2**63`` keys, one past the int64 maximum.
        """
        if self.is_vector:
            return (self.his - self.los).astype(np.uint64) + np.uint64(1)
        return np.array(
            [hi - lo + 1 for lo, hi in self.pairs()], dtype=object
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryBatch(n={len(self)}, width={self.width})"


def coerce_query_batch(queries, width: int) -> QueryBatch:
    """Return ``queries`` as a :class:`QueryBatch` in a ``width``-bit space.

    An existing batch is passed through (its width must match); any iterable
    of ``(lo, hi)`` pairs is wrapped and validated.  A batch constructed
    with ``validate=False`` is validated here — once, the flag is sticky —
    so the vectorised ``may_intersect_many`` fast paths reject ``lo > hi``
    and out-of-width ranges with exactly the ``ValueError``s the scalar
    ``_check_range`` path raises.
    """
    if isinstance(queries, QueryBatch):
        if queries.width != width:
            raise ValueError(
                f"query batch width {queries.width} does not match filter width {width}"
            )
        if not queries._validated:
            queries._validate()
        return queries
    pairs = list(queries)
    if pairs and isinstance(pairs[0][0], (bytes, str, np.bytes_)):
        from repro.workloads.bytekeys import ByteQueryBatch

        return ByteQueryBatch.from_pairs(pairs, (width + 7) // 8)
    return QueryBatch.from_pairs(pairs, width)


def coerce_keys(keys, width: int | None = None) -> KeySet:
    """Single key-ingestion entry point: return ``keys`` as a :class:`KeySet`.

    Dispatches on the input representation — an existing :class:`KeySet`
    passes through (its width must match when one is given), byte/str keys
    become a :class:`~repro.workloads.bytekeys.ByteKeySet`, integers an
    :class:`EncodedKeySet` — with the same ``ValueError`` messages as the
    scalar entry points either way.
    """
    from repro.workloads.bytekeys import ByteKeySet

    if isinstance(keys, KeySet):
        if width is not None and keys.width != width:
            raise ValueError(
                f"key set width {keys.width} does not match filter width {width}"
            )
        return keys
    concrete = keys if isinstance(keys, np.ndarray) else list(keys)
    sample = concrete[0] if len(concrete) else None
    if isinstance(sample, (bytes, str, np.bytes_)):
        max_length = None if width is None else (width + 7) // 8
        return ByteKeySet(concrete, max_length=max_length)
    if width is None:
        raise ValueError("an explicit width is required for integer keys")
    return EncodedKeySet(concrete, width)


def probe_key_array(
    keys, width: int, expect_bytes: bool | None = None
) -> np.ndarray:
    """Probe keys as an array in a tree's native key order (lookup dispatch).

    The lookup-side counterpart of :func:`coerce_keys`: the same
    representation dispatch (byte/str probes become a canonical ``S``
    array in memcmp order, integers stay int64/object), but **order- and
    duplicate-preserving** — lookups are positional, so probes must never
    be sorted or deduplicated.  Byte probes longer than the key space
    raise (silent ``S``-dtype truncation could fabricate a membership
    answer for a key that cannot exist); ``expect_bytes`` lets a caller
    that knows its tree's representation reject mismatched probes with a
    clear error instead of a downstream dtype failure.
    """
    from repro.workloads.bytekeys import ByteKeySet, _clean_key

    num_bytes = (width + 7) // 8
    if isinstance(keys, KeySet):
        if keys.width != width:
            raise ValueError(
                f"key set width {keys.width} does not match probe width {width}"
            )
        if expect_bytes is not None and keys.is_bytes != expect_bytes:
            raise ValueError(
                "byte-keyed probes against an integer-keyed tree"
                if keys.is_bytes
                else "integer probes against a byte-keyed tree"
            )
        return keys.keys
    if isinstance(keys, np.ndarray) and keys.dtype.kind == "S":
        probes = [value.rstrip(b"\x00") for value in keys.tolist()]
    else:
        concrete = list(keys)
        if concrete and isinstance(concrete[0], (bytes, str, np.bytes_)):
            probes = [_clean_key(key) for key in concrete]
        else:
            if expect_bytes:
                raise ValueError("integer probes against a byte-keyed tree")
            return as_key_array(concrete)
    if expect_bytes is not None and not expect_bytes:
        raise ValueError("byte-keyed probes against an integer-keyed tree")
    longest = max((len(probe) for probe in probes), default=0)
    if longest > num_bytes:
        raise ValueError(f"key of length {longest} exceeds maximum {num_bytes}")
    return np.array(probes, dtype=f"S{num_bytes}")


def as_key_array(keys) -> np.ndarray:
    """Return ``keys`` as a 1-D numpy array (``int64`` when values fit).

    Accepts numpy arrays, any :class:`KeySet`, or any iterable of ints.
    The result is *not* deduplicated or validated — it is the probe-side
    helper for ``may_contain_many``, where duplicates are legitimate.
    Byte key sets go through their :meth:`~KeySet.as_ints` shim (this is a
    scalar-loop entry point, not a byte hot path).
    """
    if isinstance(keys, KeySet):
        return keys.as_ints()
    if isinstance(keys, np.ndarray) and keys.dtype.kind in "iu":
        return keys.astype(np.int64, copy=False)
    concrete = list(keys)
    try:
        return np.array(concrete, dtype=np.int64)
    except (OverflowError, TypeError, ValueError):
        return np.array(concrete, dtype=object)
