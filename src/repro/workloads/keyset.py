"""The ``KeySet`` protocol: what every key representation must provide.

The batch execution layer was built around one concrete class —
:class:`repro.workloads.EncodedKeySet`, an int64-first array of encoded
keys — but the interface the rest of the codebase actually consumes is
narrower and representation-agnostic: a *sorted distinct* key collection
in a ``width``-bit key space with cheap slicing, prefix extraction, and
LCP-derived statistics.  This module names that interface so a second
implementation (:class:`repro.workloads.ByteKeySet`, variable-length byte
strings in an arrow-style flat buffer) can slot in underneath the filters,
the LSM tree and the drivers without per-call-site special cases.

Invariants every implementation upholds:

* keys are sorted ascending and distinct in the padded ``width``-bit
  integer order (for byte keys: null-padded big-endian, i.e. ``memcmp``);
* ``keys`` exposes a numpy array that sorts/searchsorts in that same
  order (``int64``/``object`` for integer sets, ``S{L}`` for byte sets),
  so fence pruning and membership bisection never branch on the
  representation;
* ``slice`` returns zero-copy views that alias the parent's storage
  (the SSTable aliasing contract).

Representation-specific return types are part of the protocol:
``prefixes(length)`` yields an array of prefix *integers* for integer
sets and a ``(m, ceil(length/8))`` uint8 matrix of canonical prefix
*bytes* for byte sets; consumers dispatch on :attr:`KeySet.is_bytes`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

import numpy as np

__all__ = ["KeySet"]


class KeySet(ABC):
    """A sorted, distinct, bounds-checked key set in a ``width``-bit space."""

    __slots__ = ()

    #: Number of bits in the (padded) integer view of a key.
    width: int
    #: Numpy array sorting/searchsorting in padded key order.
    keys: np.ndarray

    @property
    @abstractmethod
    def is_vector(self) -> bool:
        """Whether the int64 numpy fast paths apply to this set."""

    @property
    def is_bytes(self) -> bool:
        """Whether keys are variable-length byte strings (byte fast paths)."""
        return False

    def __len__(self) -> int:
        return int(self.keys.size)

    def __iter__(self) -> Iterator:
        return iter(self.as_list())

    @property
    def first(self):
        """Smallest key, as a native scalar (``int`` or ``bytes``)."""
        return self.as_scalar(self.keys[0])

    @property
    def last(self):
        """Largest key, as a native scalar (``int`` or ``bytes``)."""
        return self.as_scalar(self.keys[-1])

    @staticmethod
    def as_scalar(value):
        """Convert one element of :attr:`keys` to its native scalar form."""
        if isinstance(value, bytes):
            return value
        return int(value)

    @abstractmethod
    def as_list(self) -> list:
        """Return the keys as a plain sorted list of native scalars."""

    @abstractmethod
    def as_ints(self) -> np.ndarray:
        """Return the padded integer view of every key.

        For byte sets this is *the* conversion shim onto the legacy
        object-dtype path; nothing on the batched hot paths calls it.
        """

    @abstractmethod
    def slice(self, start: int, stop: int) -> "KeySet":
        """Zero-copy view of the contiguous sub-range ``[start, stop)``."""

    @abstractmethod
    def sorted_take(self, indices: np.ndarray) -> "KeySet":
        """Select ``indices`` (distinct, any order) and re-sort the result."""

    @abstractmethod
    def prefixes(self, length: int) -> np.ndarray:
        """Sorted distinct ``length``-bit key prefixes (cached).

        Integer sets return prefix values; byte sets return canonical
        prefix-byte rows (see module docstring).
        """

    @abstractmethod
    def prefix_counts(self) -> list[int]:
        """``counts`` with ``counts[l] == |K_l|`` for ``l`` in ``[0, width]``."""
