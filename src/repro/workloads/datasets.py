"""Real-dataset workload loaders: SOSD facsimiles, YCSB-E scans, DBLP keys.

The paper grades its filters on real key distributions — SOSD's ``books``
and ``osm_cellids`` integer sets, YCSB scan workloads, and string keys —
alongside the synthetic families.  This module packages those shapes as
named, seeded :class:`~repro.api.workload.Workload` loaders so the sweep
and LSM drivers (and the tests) can request them by name:

* ``sosd_books`` — heavy-tailed 48-bit "popularity" integers in dense
  clusters (the SOSD books shape), graded with the mixed query family;
* ``sosd_osm`` — 60-bit location-style cell ids in tight clusters (the
  SOSD osm_cellids shape), graded with the adversarial correlated family;
* ``ycsb_e`` — YCSB workload-E: fixed-format ``user<id>`` *string* keys
  over a zipf-popular id space, probed with short scans (plus the point
  lookups E mixes in);
* ``dblp`` — variable-length DBLP-style citation keys
  (``conf/sigmod/Lehman86``) from the bundled corpus under
  ``workloads/data/``, probed with venue/author prefix scans and exact
  lookups.

Every loader is pure function of ``(seed, query_seed)``: the same
arguments reproduce the same workload byte-for-byte.  Held-out grading
re-samples the *query* side only — :func:`dataset_queries` with a fresh
seed draws new queries against the same keys, which is what
``evaluation.sweep.held_out_queries`` does for dataset workloads.

The DBLP corpus is a deterministic facsimile (seeded synthesis of
citation keys, committed under ``workloads/data/dblp_keys.txt``); if the
file is missing from an installation the loader regenerates it in memory
from the same seed, so the two paths are identical.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Callable, Sequence

from repro.workloads.batch import QueryBatch, coerce_keys, coerce_query_batch
from repro.workloads.generators import clustered_keys, correlated_queries, mixed_queries
from repro.workloads.keyset import KeySet

__all__ = [
    "DATASETS",
    "Dataset",
    "dataset_queries",
    "list_datasets",
    "load_dataset",
]

#: Where the bundled corpora live (shipped as package data).
DATA_DIR = Path(__file__).resolve().parent / "data"

#: Seed of the committed DBLP corpus synthesis (also the fallback seed).
_DBLP_CORPUS_SEED = 20220615

#: Size of the committed DBLP corpus.
_DBLP_CORPUS_SIZE = 4096


class Dataset:
    """One named workload recipe: a key sampler plus a query sampler."""

    __slots__ = ("name", "description", "width", "make_keys", "make_queries")

    def __init__(
        self,
        name: str,
        description: str,
        make_keys: Callable[[random.Random, int], list],
        make_queries: Callable[[random.Random, Sequence, int], list[tuple]],
        width: int | None = None,
    ):
        self.name = name
        self.description = description
        self.width = width  # None: byte-string keys size their own space
        self.make_keys = make_keys
        self.make_queries = make_queries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dataset({self.name!r}, width={self.width})"


# --------------------------------------------------------------------- #
# DBLP-style citation keys (bundled string corpus)                      #
# --------------------------------------------------------------------- #

_DBLP_VENUES = (
    ("conf", "sigmod"), ("conf", "vldb"), ("conf", "icde"), ("conf", "edbt"),
    ("conf", "kdd"), ("conf", "icml"), ("conf", "nips"), ("conf", "www"),
    ("conf", "soda"), ("conf", "focs"), ("conf", "stoc"), ("conf", "podc"),
    ("journals", "tods"), ("journals", "pvldb"), ("journals", "vldbj"),
    ("journals", "tkde"), ("journals", "jacm"), ("journals", "sigmodrec"),
)

_DBLP_SYLLABLES = (
    "an", "bel", "berg", "chen", "das", "er", "feld", "gar", "haas", "ish",
    "jor", "kas", "knorr", "lam", "li", "man", "mo", "ner", "ov", "pat",
    "qui", "ro", "sen", "shi", "sky", "son", "stein", "ta", "ulr", "va",
    "wei", "xu", "yama", "zhang",
)


def synthesize_dblp_corpus(
    count: int = _DBLP_CORPUS_SIZE, seed: int = _DBLP_CORPUS_SEED
) -> list[str]:
    """Deterministically synthesize the DBLP-style citation-key corpus.

    This is the exact generator behind the committed
    ``workloads/data/dblp_keys.txt``; loading the file and re-running the
    synthesis produce identical corpora.
    """
    rng = random.Random(seed)
    keys: set[str] = set()
    while len(keys) < count:
        kind, venue = _DBLP_VENUES[rng.randrange(len(_DBLP_VENUES))]
        surname = "".join(
            rng.choice(_DBLP_SYLLABLES) for _ in range(rng.randint(1, 3))
        ).capitalize()
        coauthors = "".join(
            rng.choice("ABCDEFGHIJKLMNOPRSTUVWXYZ")
            for _ in range(rng.randrange(4))
        )
        year = rng.randrange(70, 125) % 100  # 1970..2024 as two digits
        keys.add(f"{kind}/{venue}/{surname}{coauthors}{year:02d}")
    return sorted(keys)


_dblp_cache: list[str] | None = None


def _dblp_corpus() -> list[str]:
    """The bundled corpus, read once (regenerated in memory if absent)."""
    global _dblp_cache
    if _dblp_cache is None:
        path = DATA_DIR / "dblp_keys.txt"
        if path.is_file():
            _dblp_cache = [
                line for line in path.read_text().splitlines() if line
            ]
        else:  # pragma: no cover - installations without package data
            _dblp_cache = synthesize_dblp_corpus()
    return _dblp_cache


def _dblp_keys(rng: random.Random, count: int) -> list[str]:
    corpus = _dblp_corpus()
    if count >= len(corpus):
        return list(corpus)
    return rng.sample(corpus, count)


def _mutate_key(rng: random.Random, key: str) -> str:
    """Perturb one character — a plausible lookup that is usually absent."""
    position = rng.randrange(len(key))
    replacement = chr(ord("a") + rng.randrange(26))
    return key[:position] + replacement + key[position + 1 :]


def _dblp_queries(
    rng: random.Random, keys: Sequence[bytes], count: int
) -> list[tuple[bytes, bytes]]:
    """Prefix scans and exact lookups over citation keys.

    A third are author-prefix scans (``[prefix, prefix + 0xff]`` — ASCII
    keys under the prefix all land inside), a third exact lookups of
    perturbed keys (mostly empty), a third lookups of real keys (hits).
    """
    decoded = [
        key.decode() if isinstance(key, bytes) else str(key) for key in keys
    ]
    queries: list[tuple[bytes, bytes]] = []
    for index in range(count):
        base = decoded[rng.randrange(len(decoded))]
        mode = index % 3
        if mode == 0:
            # Scan a venue/author prefix, sometimes perturbed so the scan
            # is empty: the last path segment truncated to a few chars.
            cut = base.rfind("/") + 1 + rng.randint(1, 3)
            prefix = _mutate_key(rng, base[:cut]) if rng.random() < 0.5 else base[:cut]
            queries.append((prefix.encode(), prefix.encode() + b"\xff"))
        elif mode == 1:
            probe = _mutate_key(rng, base).encode()
            queries.append((probe, probe))
        else:
            queries.append((base.encode(), base.encode()))
    return queries


# --------------------------------------------------------------------- #
# YCSB workload E: short scans over user<id> string keys                #
# --------------------------------------------------------------------- #

_YCSB_ID_SPACE = 10_000_000_000  # ids fit the 10-digit zero-padded format


def _ycsb_ids(rng: random.Random, count: int) -> list[int]:
    """Zipf-popular ids: dense near zero with a long uniform tail."""
    ids: set[int] = set()
    position = 0
    while len(ids) < count:
        position += max(1, int(rng.paretovariate(1.1)))
        if position >= _YCSB_ID_SPACE:
            ids.add(rng.randrange(_YCSB_ID_SPACE))
        else:
            ids.add(position)
    return sorted(ids)


def _ycsb_key(identifier: int) -> bytes:
    return b"user%010d" % identifier


def _ycsb_keys(rng: random.Random, count: int) -> list[bytes]:
    return [_ycsb_key(identifier) for identifier in _ycsb_ids(rng, count)]


def _ycsb_queries(
    rng: random.Random, keys: Sequence[bytes], count: int, max_scan: int = 100
) -> list[tuple[bytes, bytes]]:
    """Workload E's scan/insert-free read mix: short scans plus points.

    The zero-padded decimal format preserves numeric order, so an id
    window maps to a contiguous string range; windows over unpopulated id
    stretches are the empty queries FPR is measured on.
    """
    ids = [int(key[4:]) for key in keys]
    top_id = ids[-1] if ids else _YCSB_ID_SPACE
    queries: list[tuple[bytes, bytes]] = []
    for index in range(count):
        if index % 20 == 0 and ids:
            # E mixes ~5% point lookups of hot (popular) ids into the scans.
            probe = _ycsb_key(ids[rng.randrange(len(ids))])
            queries.append((probe, probe))
            continue
        start = rng.randrange(min(top_id + max_scan, _YCSB_ID_SPACE - max_scan))
        span = rng.randint(1, max_scan)
        queries.append((_ycsb_key(start), _ycsb_key(start + span)))
    return queries


# --------------------------------------------------------------------- #
# SOSD facsimiles: books / osm_cellids integer shapes                   #
# --------------------------------------------------------------------- #

_SOSD_BOOKS_WIDTH = 48
_SOSD_OSM_WIDTH = 60


def _sosd_books_keys(rng: random.Random, count: int) -> list[int]:
    return clustered_keys(
        rng, count, _SOSD_BOOKS_WIDTH, num_clusters=64, spread=1 << 16
    )


def _sosd_books_queries(
    rng: random.Random, keys: Sequence[int], count: int
) -> list[tuple[int, int]]:
    return mixed_queries(rng, keys, count, _SOSD_BOOKS_WIDTH)


def _sosd_osm_keys(rng: random.Random, count: int) -> list[int]:
    return clustered_keys(
        rng, count, _SOSD_OSM_WIDTH, num_clusters=256, spread=1 << 10
    )


def _sosd_osm_queries(
    rng: random.Random, keys: Sequence[int], count: int
) -> list[tuple[int, int]]:
    return correlated_queries(rng, keys, count, _SOSD_OSM_WIDTH)


DATASETS: dict[str, Dataset] = {
    "dblp": Dataset(
        "dblp",
        "variable-length DBLP-style citation keys (bundled string corpus)",
        _dblp_keys,
        _dblp_queries,
    ),
    "ycsb_e": Dataset(
        "ycsb_e",
        "YCSB workload E: short scans over zipf-popular user<id> string keys",
        _ycsb_keys,
        _ycsb_queries,
    ),
    "sosd_books": Dataset(
        "sosd_books",
        "SOSD books facsimile: clustered 48-bit popularity integers",
        _sosd_books_keys,
        _sosd_books_queries,
        width=_SOSD_BOOKS_WIDTH,
    ),
    "sosd_osm": Dataset(
        "sosd_osm",
        "SOSD osm_cellids facsimile: tightly clustered 60-bit cell ids",
        _sosd_osm_keys,
        _sosd_osm_queries,
        width=_SOSD_OSM_WIDTH,
    ),
}


def list_datasets() -> list[str]:
    """Registered dataset names, sorted."""
    return sorted(DATASETS)


def _get(name: str) -> Dataset:
    try:
        return DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; expected one of {list_datasets()}"
        ) from None


def dataset_queries(name: str, keys: KeySet, count: int, seed: int) -> QueryBatch:
    """A fresh seeded query batch for ``name`` against an existing key set.

    The held-out grading hook: same keys, independently seeded queries —
    byte datasets yield a :class:`~repro.workloads.bytekeys.ByteQueryBatch`,
    integer datasets a plain :class:`~repro.workloads.batch.QueryBatch`.
    """
    spec = _get(name)
    pairs = spec.make_queries(random.Random(seed), keys.as_list(), count)
    return coerce_query_batch(pairs, keys.width)


def load_dataset(
    name: str,
    num_keys: int = 4096,
    num_queries: int = 2048,
    seed: int = 0,
    query_seed: int | None = None,
):
    """Build the named dataset as a ready :class:`~repro.api.workload.Workload`.

    ``seed`` drives the key sample; the design-query sample is seeded by
    ``query_seed`` (default ``seed + 1``) so callers can redraw queries
    over identical keys.  Provenance (dataset name and both seeds) lands
    in ``workload.metadata`` — the hook ``held_out_queries`` keys on.
    """
    from repro.api.workload import Workload

    spec = _get(name)
    key_set = coerce_keys(spec.make_keys(random.Random(seed), num_keys), spec.width)
    actual_query_seed = seed + 1 if query_seed is None else query_seed
    queries = spec.make_queries(
        random.Random(actual_query_seed), key_set.as_list(), num_queries
    )
    return Workload(
        key_set,
        queries,
        metadata={
            "source": "dataset",
            "dataset": name,
            "description": spec.description,
            "num_keys": len(key_set),
            "num_queries": num_queries,
            "width": key_set.width,
            "seed": seed,
            "query_seed": actual_query_seed,
        },
    )
