"""Workloads: array-backed key sets, query batches, and seeded generators.

The batched execution layer runs on two shared types —
:class:`~repro.workloads.batch.EncodedKeySet` (sorted distinct keys as a
numpy array) and :class:`~repro.workloads.batch.QueryBatch` (parallel
``lo``/``hi`` arrays of inclusive range queries).  Word-sized key spaces
(width <= 63 bits) get ``int64`` backing and vectorised consumers; wider
spaces fall back to ``object`` arrays and scalar paths transparently.

:mod:`repro.workloads.generators` provides the seeded synthetic workload
families (uniform/zipf/clustered keys, uniform/point/correlated/mixed
queries) that the test-suite and the benchmark harness share.
"""

from repro.workloads.batch import (
    MAX_VECTOR_WIDTH,
    EncodedKeySet,
    QueryBatch,
    as_key_array,
    coerce_keys,
    coerce_query_batch,
)
from repro.workloads.bytekeys import ByteKeySet, ByteQueryBatch
from repro.workloads.datasets import (
    DATASETS,
    dataset_queries,
    list_datasets,
    load_dataset,
)
from repro.workloads.generators import (
    KEY_DISTRIBUTIONS,
    QUERY_FAMILIES,
    clustered_keys,
    correlated_queries,
    generate_workload,
    mixed_queries,
    point_queries,
    random_keys,
    uniform_queries,
    write_stream,
    zipf_keys,
)

from repro.workloads.keyset import KeySet

__all__ = [
    "MAX_VECTOR_WIDTH",
    "ByteKeySet",
    "ByteQueryBatch",
    "EncodedKeySet",
    "KeySet",
    "QueryBatch",
    "as_key_array",
    "coerce_keys",
    "coerce_query_batch",
    "DATASETS",
    "dataset_queries",
    "list_datasets",
    "load_dataset",
    "KEY_DISTRIBUTIONS",
    "QUERY_FAMILIES",
    "random_keys",
    "zipf_keys",
    "clustered_keys",
    "uniform_queries",
    "point_queries",
    "correlated_queries",
    "mixed_queries",
    "generate_workload",
    "write_stream",
]
