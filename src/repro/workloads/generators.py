"""Seeded workload generators: key distributions and query families.

This module is the single home for synthetic workload sampling — the
test-suite (``tests/conftest.py``) and the benchmark harness
(:mod:`repro.evaluation.bench`) both draw from here, so experiments stop
hand-rolling key/query sampling.

Everything is seeded through an explicit ``random.Random`` instance: a
failing test or a benchmark run reproduces byte-for-byte.  Queries are
inclusive ``(lo, hi)`` pairs; point queries are ``(k, k)``.

Key distributions
    * :func:`random_keys` — uniform over the key space;
    * :func:`zipf_keys` — heavy-tailed (Pareto gaps), keys piled near the
      bottom of the space with a long sparse tail, the skewed-integer
      setting of the paper's synthetic benchmarks;
    * :func:`clustered_keys` — dense clusters around uniform centres, the
      SOSD-style "books/osm" shape where keys arrive in runs.

Query families
    * :func:`uniform_queries` — uniform ranges (mostly empty, far from
      keys);
    * :func:`point_queries` — uniform point lookups;
    * :func:`correlated_queries` — near-miss ranges just above an existing
      key, sharing a long prefix with it (the adversarial family the paper
      designs against);
    * :func:`mixed_queries` — an even blend of the three.

:func:`generate_workload` bundles a key distribution and a query family
into the array-backed :class:`~repro.workloads.batch.EncodedKeySet` /
:class:`~repro.workloads.batch.QueryBatch` pair the batched execution
layer consumes.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.workloads.batch import EncodedKeySet, QueryBatch

__all__ = [
    "random_keys",
    "zipf_keys",
    "clustered_keys",
    "uniform_queries",
    "point_queries",
    "correlated_queries",
    "mixed_queries",
    "KEY_DISTRIBUTIONS",
    "QUERY_FAMILIES",
    "generate_workload",
    "write_stream",
]


# --------------------------------------------------------------------- #
# Key distributions                                                     #
# --------------------------------------------------------------------- #


def random_keys(rng: random.Random, count: int, width: int) -> list[int]:
    """Return ``count`` distinct uniform ``width``-bit keys."""
    return rng.sample(range(1 << width), count)


def zipf_keys(
    rng: random.Random, count: int, width: int, skew: float = 1.2
) -> list[int]:
    """Return ``count`` distinct keys with a heavy-tailed (Pareto) density.

    Successive keys are separated by ``int(paretovariate(skew))`` gaps, so
    the set is dense near its origin and increasingly sparse — the shape a
    Zipf-popularity insert stream produces.  ``skew`` close to 1 gives the
    heaviest tail.  Falls back to uniform filling if the space is too small
    to fit ``count`` distinct keys under the sampled gaps.
    """
    if count > (1 << width):
        raise ValueError(f"cannot draw {count} distinct {width}-bit keys")
    top = (1 << width) - 1
    keys: set[int] = set()
    position = 0
    while len(keys) < count and position <= top:
        keys.add(position)
        position += max(1, int(rng.paretovariate(skew)))
    while len(keys) < count:  # tail overflowed the space: top up uniformly
        keys.add(rng.randrange(1 << width))
    return sorted(keys)


def clustered_keys(
    rng: random.Random,
    count: int,
    width: int,
    num_clusters: int = 16,
    spread: int = 1 << 12,
) -> list[int]:
    """Return ``count`` distinct keys in dense clusters around uniform centres.

    Each key is a uniform centre plus a uniform offset in ``[-spread,
    spread]`` (clamped to the key space) — runs of nearby keys with long
    shared prefixes, as produced by timestamp or location insert streams.
    """
    if count > (1 << width):
        raise ValueError(f"cannot draw {count} distinct {width}-bit keys")
    if num_clusters < 1:
        raise ValueError("need at least one cluster")
    top = (1 << width) - 1
    centres = [rng.randrange(1 << width) for _ in range(num_clusters)]
    keys: set[int] = set()
    attempts, max_attempts = 0, 64 * count
    while len(keys) < count and attempts < max_attempts:
        centre = centres[rng.randrange(num_clusters)]
        keys.add(min(top, max(0, centre + rng.randint(-spread, spread))))
        attempts += 1
    while len(keys) < count:  # clusters saturated: top up uniformly
        keys.add(rng.randrange(1 << width))
    return sorted(keys)


# --------------------------------------------------------------------- #
# Query families                                                        #
# --------------------------------------------------------------------- #


def uniform_queries(
    rng: random.Random, count: int, width: int, max_range: int
) -> list[tuple[int, int]]:
    """Uniform range queries of span ``1..max_range``.

    ``max_range`` is clamped to the key space so narrow widths stay valid
    (the clamp is a no-op for the widths the test-suite seeds, keeping
    historical workloads byte-identical).
    """
    top = (1 << width) - 1
    max_range = min(max_range, top - 1)
    if max_range < 1:
        raise ValueError(
            f"a {width}-bit key space is too narrow for uniform range queries"
        )
    queries = []
    for _ in range(count):
        lo = rng.randrange(top - max_range)
        queries.append((lo, lo + rng.randrange(1, max_range + 1)))
    return queries


def point_queries(rng: random.Random, count: int, width: int) -> list[tuple[int, int]]:
    """Uniform point queries."""
    return [(k, k) for k in (rng.randrange(1 << width) for _ in range(count))]


def correlated_queries(
    rng: random.Random,
    keys: Sequence[int],
    count: int,
    width: int,
    max_offset: int = 32,
    max_range: int = 64,
) -> list[tuple[int, int]]:
    """Near-miss ranges starting just above an existing key."""
    top = (1 << width) - 1
    queries = []
    for _ in range(count):
        key = keys[rng.randrange(len(keys))]
        lo = min(top - 1, key + 1 + rng.randrange(max_offset))
        queries.append((lo, min(top, lo + rng.randrange(1, max_range + 1))))
    return queries


def mixed_queries(
    rng: random.Random, keys: Sequence[int], count: int, width: int
) -> list[tuple[int, int]]:
    """An even blend of uniform ranges, point queries and near-miss ranges."""
    third = count // 3
    return (
        uniform_queries(rng, third, width, 1000)
        + point_queries(rng, third, width)
        + correlated_queries(rng, keys, count - 2 * third, width)
    )


# --------------------------------------------------------------------- #
# Write streams                                                         #
# --------------------------------------------------------------------- #


def write_stream(
    rng: random.Random,
    num_batches: int,
    batch_size: int,
    width: int,
    key_dist: str = "uniform",
    delete_fraction: float = 0.1,
) -> list[list[tuple[str, int]]]:
    """Seeded batches of ``("put", key)`` / ``("del", key)`` operations.

    The insert keys are drawn from ``key_dist`` (one of
    :data:`KEY_DISTRIBUTIONS`) and arrive in shuffled order — the churn an
    online LSM tree ingests.  Each op slot is a delete with probability
    ``delete_fraction``, targeting a uniformly-chosen key that was inserted
    earlier in the stream and is still live (no double deletes, no deletes
    of never-inserted keys), so replaying the stream yields a well-defined
    live set.  Returns ``num_batches`` lists of ``batch_size`` ops; the
    same ``rng`` state always reproduces the same stream.
    """
    if num_batches < 0 or batch_size < 1:
        raise ValueError("need a non-negative batch count and positive batch size")
    if not 0.0 <= delete_fraction < 1.0:
        raise ValueError(f"delete_fraction must be in [0, 1), got {delete_fraction}")
    try:
        make_keys = KEY_DISTRIBUTIONS[key_dist]
    except KeyError:
        raise ValueError(
            f"unknown key distribution {key_dist!r}; "
            f"expected one of {sorted(KEY_DISTRIBUTIONS)}"
        ) from None
    total_ops = num_batches * batch_size
    fresh = make_keys(rng, total_ops, width)
    rng.shuffle(fresh)
    live: list[int] = []
    batches: list[list[tuple[str, int]]] = []
    cursor = 0
    for _ in range(num_batches):
        ops: list[tuple[str, int]] = []
        for _ in range(batch_size):
            if live and rng.random() < delete_fraction:
                victim = live.pop(rng.randrange(len(live)))
                ops.append(("del", victim))
            else:
                key = fresh[cursor]
                cursor += 1
                live.append(key)
                ops.append(("put", key))
        batches.append(ops)
    return batches


# --------------------------------------------------------------------- #
# Bundled array-backed workloads                                        #
# --------------------------------------------------------------------- #

KEY_DISTRIBUTIONS = {
    "uniform": lambda rng, count, width: random_keys(rng, count, width),
    "zipf": lambda rng, count, width: zipf_keys(rng, count, width),
    "clustered": lambda rng, count, width: clustered_keys(rng, count, width),
}

QUERY_FAMILIES = {
    "uniform": lambda rng, keys, count, width: uniform_queries(rng, count, width, 1000),
    "point": lambda rng, keys, count, width: point_queries(rng, count, width),
    "correlated": correlated_queries,
    "mixed": mixed_queries,
}


def generate_workload(
    num_keys: int,
    num_queries: int,
    width: int,
    seed: int = 0,
    key_dist: str = "uniform",
    query_family: str = "mixed",
) -> tuple[EncodedKeySet, QueryBatch]:
    """Return a seeded ``(EncodedKeySet, QueryBatch)`` workload pair.

    ``key_dist`` picks from :data:`KEY_DISTRIBUTIONS` and ``query_family``
    from :data:`QUERY_FAMILIES`; the same ``seed`` always reproduces the
    same workload byte-for-byte.
    """
    try:
        make_keys = KEY_DISTRIBUTIONS[key_dist]
    except KeyError:
        raise ValueError(
            f"unknown key distribution {key_dist!r}; "
            f"expected one of {sorted(KEY_DISTRIBUTIONS)}"
        ) from None
    try:
        make_queries = QUERY_FAMILIES[query_family]
    except KeyError:
        raise ValueError(
            f"unknown query family {query_family!r}; "
            f"expected one of {sorted(QUERY_FAMILIES)}"
        ) from None
    rng = random.Random(seed)
    keys = make_keys(rng, num_keys, width)
    queries = make_queries(rng, keys, num_queries, width)
    return EncodedKeySet(keys, width), QueryBatch.from_pairs(queries, width)
