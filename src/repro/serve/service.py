"""The sharded lookup service: route, dispatch, gather, account.

:class:`ShardedLookupService` is the serving-layer root object.  Built
from a key population (or an :class:`~repro.lsm.online.OnlineLSMTree`
snapshot), it partitions the keys into contiguous shards
(:mod:`repro.serve.shard`), builds one filtered
:class:`~repro.lsm.tree.LSMTree` per shard under the two-level budget
split, freezes each tree's buffers into shared memory
(:mod:`repro.serve.shm`), and spawns one worker process per shard
(:mod:`repro.serve.worker`).  :meth:`serve_batch` then answers a batch of
point/range lookups end to end:

1. **validate** the bounds once, as a :class:`~repro.workloads.batch.
   QueryBatch`/:class:`~repro.workloads.bytekeys.ByteQueryBatch`;
2. **route** every query to its contiguous candidate-shard interval with
   two ``searchsorted`` calls on the shard fences (queries in a fence gap
   are answered negative for free);
3. **dispatch** one sub-batch per touched shard to its worker (or probe
   inline in ``mode="inline"``, the same data path minus the processes);
4. **gather** the per-shard ground-truth answers, OR-combining queries
   that straddled a boundary, and aggregate the cost-model accounting.

``spawn`` is used for workers on every platform: it is the start method
that actually exercises the attach-by-name shared-memory path (fork would
silently inherit the mappings) and the only portable one.

Failure model: a worker death or reply timeout raises
:class:`ServeError` with the shard named; :meth:`close` is idempotent,
runs from a ``weakref.finalize`` as a last resort, and always terminates
workers before unlinking segments — the parent owns every segment, so no
crash ordering can leak one (the lifecycle the tests pin).
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
import weakref
from time import monotonic

import numpy as np

from repro.api import FilterSpec, Workload
from repro.lsm.merge import EntryRun, merge_entry_runs
from repro.lsm.online import OnlineLSMTree
from repro.lsm.tree import DEFAULT_FANOUT, DEFAULT_SST_KEYS, LSMTree
from repro.obs.metrics import MetricsRegistry
from repro.serve.shard import build_shard_trees, route_queries, shard_fences, split_key_set
from repro.serve.shm import snapshot_tree
from repro.serve.worker import probe_stats, worker_main
from repro.workloads.batch import QueryBatch, coerce_keys
from repro.workloads.bytekeys import ByteQueryBatch
from repro.workloads.keyset import KeySet

__all__ = ["ServeError", "ShardedLookupService"]

#: Accounting keys aggregated across shards per served batch.
_STAT_KEYS = ("blocks_read", "required_reads", "false_positive_reads", "filter_probes")


class ServeError(RuntimeError):
    """A serving-layer failure: worker startup, death, timeout, or probe error."""


class _ShardWorker:
    """Parent-side handle for one shard: process, queue, owned segments."""

    __slots__ = ("process", "request_queue", "segments")

    def __init__(self, process, request_queue, segments):
        self.process = process
        self.request_queue = request_queue
        self.segments = segments


def _reap(workers: list[_ShardWorker], reply_queue) -> None:
    """Tear the fleet down: sentinel, join, terminate, close + unlink.

    Module-level (and referencing no service instance) so a
    ``weakref.finalize`` can run it after the service is collected.
    Unlinking is unconditional and parent-side — a worker that already
    crashed, or never attached, changes nothing about segment cleanup.
    """
    for worker in workers:
        if worker.process.is_alive():
            try:
                worker.request_queue.put_nowait(None)
            except Exception:
                pass
    for worker in workers:
        worker.process.join(timeout=5.0)
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=5.0)
    for worker in workers:
        worker.request_queue.cancel_join_thread()
        worker.request_queue.close()
        for segment in worker.segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - parent holds no views
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
    if reply_queue is not None:
        reply_queue.cancel_join_thread()
        reply_queue.close()


class ShardedLookupService:
    """Key-range-sharded lookup serving over worker processes.

    Construct with :meth:`build` (from a key population) or
    :meth:`from_online` (from an online tree's live snapshot); use as a
    context manager or call :meth:`close`.  ``mode="inline"`` runs the
    identical route/dispatch/gather path against in-process trees — the
    deterministic backend the unit tests and single-core baselines use.
    """

    def __init__(
        self,
        trees: list[LSMTree],
        shards: list[KeySet],
        mode: str = "process",
        metrics: MetricsRegistry | None = None,
        reply_timeout: float = 30.0,
    ):
        if mode not in ("process", "inline"):
            raise ValueError(f"unknown serving mode {mode!r}")
        if len(trees) != len(shards) or not trees:
            raise ValueError("need one tree per shard, at least one shard")
        self.width = shards[0].width
        self.max_length = shards[0].max_length if shards[0].is_bytes else None
        self.num_shards = len(shards)
        self.shard_sizes = [len(shard) for shard in shards]
        self.filter_bits = sum(tree.filter_size_bits() for tree in trees)
        self.mode = mode
        self.metrics = metrics
        self.reply_timeout = reply_timeout
        self._mins, self._maxs = shard_fences(shards)
        self._lock = threading.Lock()
        self._closed = False
        self._request_counter = 0
        self._trees: list[LSMTree] | None = None
        self._workers: list[_ShardWorker] = []
        self._reply_queue = None
        self._finalizer = None
        if mode == "inline":
            self._trees = trees
        else:
            self._start_workers(trees)

    # ------------------------------------------------------------------ #
    # Construction                                                       #
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        keys,
        num_shards: int = 1,
        spec: FilterSpec | None = None,
        workload: Workload | None = None,
        policy: str = "proportional",
        sst_keys: int = DEFAULT_SST_KEYS,
        fanout: int = DEFAULT_FANOUT,
        seed: int = 0,
        width: int | None = None,
        mode: str = "process",
        metrics: MetricsRegistry | None = None,
        reply_timeout: float = 30.0,
    ) -> "ShardedLookupService":
        """Shard ``keys``, build one filtered tree per shard, start serving.

        ``keys`` is anything :func:`~repro.workloads.batch.coerce_keys`
        accepts — a :class:`~repro.workloads.keyset.KeySet`, raw
        byte/str keys, or integers (with ``width``).  ``spec`` is the
        *global* filter budget, split across shards and then SSTs by
        ``policy``; ``None`` serves filterless.
        """
        key_set = coerce_keys(keys, width)
        shards = split_key_set(key_set, num_shards)
        trees = build_shard_trees(
            shards,
            spec=spec,
            workload=workload,
            policy=policy,
            sst_keys=sst_keys,
            fanout=fanout,
            seed=seed,
            metrics=metrics,
        )
        return cls(
            trees,
            shards,
            mode=mode,
            metrics=metrics,
            reply_timeout=reply_timeout,
        )

    @classmethod
    def from_online(
        cls,
        tree: OnlineLSMTree,
        num_shards: int = 1,
        policy: str | None = None,
        seed: int = 0,
        mode: str = "process",
        metrics: MetricsRegistry | None = None,
        reply_timeout: float = 30.0,
    ) -> "ShardedLookupService":
        """Serve a point-in-time live snapshot of an online tree.

        The live key set is recovered by merging every SST newest-first
        with tombstones dropped — exactly the deepest-level compaction
        semantics — then sharded and rebuilt under the tree's own spec,
        design sample, geometry and policy.  The snapshot *copies* into
        shared memory, so the parent tree is free to keep ingesting and
        compacting; serving answers stay frozen at snapshot time.
        Unflushed memtable writes are not part of the snapshot — call
        ``tree.flush()`` first to include them.
        """
        runs = [EntryRun(sst.keys, sst.tombstones) for sst in tree.sstables()]
        if not runs:
            raise ValueError("cannot snapshot an online tree with no SSTs")
        live = merge_entry_runs(runs, drop_tombstones=True)
        workload = None
        if tree.design_queries is not None:
            workload = Workload(live.keys, tree.design_queries)
        return cls.build(
            live.keys,
            num_shards=num_shards,
            spec=tree.spec,
            workload=workload,
            policy=policy if policy is not None else tree.policy,
            sst_keys=tree.sst_keys,
            fanout=tree.fanout,
            seed=seed,
            mode=mode,
            metrics=metrics,
            reply_timeout=reply_timeout,
        )

    def _start_workers(self, trees: list[LSMTree]) -> None:
        """Snapshot every shard, spawn its worker, and wait for readiness."""
        context = multiprocessing.get_context("spawn")
        self._reply_queue = context.Queue()
        try:
            for shard_id, tree in enumerate(trees):
                spec, segments, filters = snapshot_tree(tree)
                try:
                    request_queue = context.Queue()
                    process = context.Process(
                        target=worker_main,
                        args=(
                            shard_id,
                            spec,
                            filters,
                            self.max_length,
                            request_queue,
                            self._reply_queue,
                        ),
                        daemon=True,
                    )
                    process.start()
                except BaseException:
                    # This shard's segments are not yet registered with a
                    # _ShardWorker, so close() below cannot reach them —
                    # unlink here or they outlive the process.
                    for segment in segments:
                        segment.close()
                        segment.unlink()
                    raise
                self._workers.append(_ShardWorker(process, request_queue, segments))
            self._finalizer = weakref.finalize(
                self, _reap, self._workers, self._reply_queue
            )
            ready: set[int] = set()
            while len(ready) < len(self._workers):
                kind, _, shard_id, payload = self._next_reply()
                if kind == "error":
                    raise ServeError(f"shard {shard_id} failed to start: {payload}")
                if kind == "ready":
                    ready.add(shard_id)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------ #
    # Serving                                                            #
    # ------------------------------------------------------------------ #

    def _make_batch(self, los, his) -> QueryBatch:
        """Validate raw bounds once, in the service's native representation."""
        if self.max_length is not None:
            return ByteQueryBatch(los, his, self.max_length)
        return QueryBatch(los, his, self.width)

    def _next_reply(self) -> tuple:
        """One reply off the shared queue, with liveness-aware timeout."""
        deadline = monotonic() + self.reply_timeout
        while True:
            try:
                return self._reply_queue.get(timeout=0.2)
            except queue_module.Empty:
                dead = [
                    shard_id
                    for shard_id, worker in enumerate(self._workers)
                    if not worker.process.is_alive()
                ]
                if dead:
                    raise ServeError(
                        f"shard worker(s) {dead} died "
                        f"(exitcodes {[self._workers[d].process.exitcode for d in dead]})"
                    ) from None
                if monotonic() > deadline:
                    raise ServeError(
                        f"no worker reply within {self.reply_timeout}s"
                    ) from None

    def serve_batch(self, los, his=None) -> tuple[np.ndarray, dict]:
        """Answer inclusive ``[lo, hi]`` lookups; returns ``(answers, stats)``.

        ``his=None`` makes every request a point lookup.  ``answers`` is
        ground truth — one bool per request, in order — and ``stats``
        aggregates the cost-model accounting (blocks read, false
        positives, filter probes) plus routing detail across the fleet.
        A range spanning several shards fans out and ORs; a range in a
        fence gap is answered negative without touching any worker.
        """
        if his is None:
            his = los
        batch = self._make_batch(los, his)
        answers = np.zeros(len(batch), dtype=bool)
        stats = {key: 0 for key in _STAT_KEYS}
        stats["shard_queries"] = [0] * self.num_shards
        stats["routed_none"] = 0
        if len(batch) == 0:
            return answers, stats
        first, last = route_queries(self._mins, self._maxs, batch.los, batch.his)
        stats["routed_none"] = int((first == last).sum())
        with self._lock:
            if self._closed:
                raise ServeError("service is closed")
            pending: dict[int, np.ndarray] = {}
            for shard_id in range(self.num_shards):
                indices = np.nonzero((first <= shard_id) & (shard_id < last))[0]
                if indices.size == 0:
                    continue
                sub = batch.select(indices)
                stats["shard_queries"][shard_id] = int(indices.size)
                if self.metrics is not None:
                    self.metrics.inc(f"serve.shard.{shard_id}.batches")
                    self.metrics.inc(
                        f"serve.shard.{shard_id}.queries", int(indices.size)
                    )
                if self._trees is not None:
                    result = self._trees[shard_id].probe(sub)
                    answers[indices] |= np.asarray(
                        result.required_reads > 0, dtype=bool
                    )
                    for key, value in probe_stats(result).items():
                        stats[key] += value
                else:
                    request_id = self._request_counter
                    self._request_counter += 1
                    self._workers[shard_id].request_queue.put(
                        (request_id, sub.los, sub.his)
                    )
                    pending[request_id] = indices
            while pending:
                kind, request_id, shard_id, payload = self._next_reply()
                if kind == "error":
                    raise ServeError(f"shard {shard_id} probe failed: {payload}")
                if kind != "ok" or request_id not in pending:
                    continue  # stale reply from an aborted earlier batch
                shard_answers, shard_stats = payload
                answers[pending.pop(request_id)] |= shard_answers
                for key in _STAT_KEYS:
                    stats[key] += shard_stats[key]
        if self.metrics is not None:
            self.metrics.inc("serve.batches")
            self.metrics.inc("serve.requests", len(batch))
            self.metrics.inc("serve.router.misses", stats["routed_none"])
            for key in _STAT_KEYS:
                self.metrics.inc(f"serve.{key}", stats[key])
        return answers, stats

    def answer_batch(self, los, his) -> np.ndarray:
        """Answers only — the :class:`~repro.serve.batcher.MicroBatcher` backend."""
        return self.serve_batch(los, his)[0]

    def describe(self) -> dict:
        """JSON-ready shape summary (shards, sizes, mode, representation)."""
        return {
            "mode": self.mode,
            "width": self.width,
            "byte_keys": self.max_length is not None,
            "num_shards": self.num_shards,
            "shard_sizes": list(self.shard_sizes),
            "num_keys": int(sum(self.shard_sizes)),
            "filter_bits": int(self.filter_bits),
        }

    # ------------------------------------------------------------------ #
    # Lifecycle                                                          #
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Stop workers and release every shared segment (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._finalizer is not None:
            self._finalizer()  # runs _reap exactly once
        elif self._workers:  # startup failed before the finalizer existed
            _reap(self._workers, self._reply_queue)
        self._trees = None

    def __enter__(self) -> "ShardedLookupService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedLookupService(shards={self.num_shards}, "
            f"keys={sum(self.shard_sizes)}, mode={self.mode!r}, "
            f"closed={self._closed})"
        )

