"""The serving layer: micro-batching, key-space sharding, worker probes.

This package turns the batch-probe substrate into a lookup *service* —
the ROADMAP's production-shaped tier:

* :class:`~repro.serve.batcher.MicroBatcher` — coalesce awaited single
  lookups into :class:`~repro.workloads.batch.QueryBatch` groups under a
  max-batch/max-delay policy and fan the answers back, caller by caller;
* :mod:`repro.serve.shard` — partition the sorted key space into
  contiguous shards and route query batches to them with the same
  two-``searchsorted`` fence trick the LSM levels use;
* :mod:`repro.serve.shm` — freeze each shard's tree buffers into
  ``multiprocessing.shared_memory`` segments that workers probe as
  zero-copy numpy views (parent owns, workers attach);
* :class:`~repro.serve.service.ShardedLookupService` — the root object:
  build, snapshot, spawn, route, dispatch, gather, account, tear down.

>>> from repro.serve import ShardedLookupService
>>> service = ShardedLookupService.build(range(10_000), width=32, num_shards=2,
...                                      mode="inline")
>>> answers, stats = service.serve_batch([5, 70_000], [17, 70_009])
>>> answers.tolist()
[True, False]
>>> service.close()

The benchmark driver lives in :mod:`repro.evaluation.serve_bench`.
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.service import ServeError, ShardedLookupService
from repro.serve.shard import (
    build_shard_trees,
    plan_shard_bounds,
    route_queries,
    shard_fences,
    split_key_set,
)
from repro.serve.shm import (
    attach_key_set,
    attach_segment,
    attach_tree,
    share_key_set,
    snapshot_tree,
)

__all__ = [
    "MicroBatcher",
    "ServeError",
    "ShardedLookupService",
    "attach_key_set",
    "attach_segment",
    "attach_tree",
    "build_shard_trees",
    "plan_shard_bounds",
    "route_queries",
    "shard_fences",
    "share_key_set",
    "snapshot_tree",
    "split_key_set",
]
