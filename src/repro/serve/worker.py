"""Shard worker: probe a shared-memory tree snapshot in a child process.

The worker protocol is deliberately tiny — one request queue in, one
shared reply queue out:

* parent → worker: ``(request_id, los, his)`` with numpy bound arrays
  already validated by the parent's router (the worker rebuilds the
  sub-batch with the validated flag set, so no re-validation cost), or
  ``None`` as the shutdown sentinel;
* worker → parent: uniform ``(kind, request_id, shard_id, payload)``
  tuples — ``("ready", -1, shard_id, None)`` once the snapshot is
  attached, then ``("ok", request_id, shard_id, (answers, stats))`` per
  request or ``("error", request_id, shard_id, message)`` if a probe
  raised (``request_id`` is ``-1`` for a startup failure).

Answers are ground truth (``required_reads > 0``) — the filter decides
what gets *charged*, never what is *answered* — and ``stats`` carries the
cost-model aggregates (blocks read, false positives, filter probes) so
the service can expose fleet-wide accounting through :mod:`repro.obs`.

Lifecycle: the worker only ever *attaches* segments (through
:func:`~repro.serve.shm.attach_segment`, which opts out of resource
tracking) and closes its mappings on the way out; creating and unlinking
stay with the parent, so a worker crash cannot leak or destroy a
segment.  See :mod:`repro.serve.shm` for the full ownership rules.
"""

from __future__ import annotations

import numpy as np

from repro.serve.shm import attach_tree
from repro.workloads.batch import QueryBatch
from repro.workloads.bytekeys import ByteQueryBatch

__all__ = ["rebuild_batch", "worker_main"]


def rebuild_batch(
    los: np.ndarray, his: np.ndarray, width: int, max_length: int | None
) -> QueryBatch:
    """Reassemble a pre-validated sub-batch from its bound arrays.

    The parent carved these out of one validated batch with
    :meth:`~repro.workloads.batch.QueryBatch.select`-style indexing, so
    the invariants hold by construction and the sticky ``_validated``
    flag is set directly — the worker never re-validates per request.
    """
    if max_length is not None:
        batch: QueryBatch = ByteQueryBatch(los, his, max_length, validate=False)
    else:
        batch = QueryBatch(los, his, width, validate=False)
    batch._validated = True
    return batch


def probe_stats(result) -> dict:
    """Cost-model aggregates of one :class:`~repro.lsm.cost.ProbeResult`."""
    return {
        "blocks_read": int(result.blocks_read.sum()),
        "required_reads": int(result.required_reads.sum()),
        "false_positive_reads": int(result.false_positive_reads.sum()),
        "filter_probes": int(result.filter_probes.sum()),
    }


def worker_main(
    shard_id: int,
    snapshot_spec: dict,
    filters: list,
    max_length: int | None,
    request_queue,
    reply_queue,
) -> None:
    """Worker entry point: attach the snapshot, answer until the sentinel.

    Runs in a spawned child.  Any exception while answering one request is
    reported as an ``("error", ...)`` reply and the loop continues — a
    malformed batch must not take the shard down; only the ``None``
    sentinel (or queue breakage at parent death) ends the worker.
    """
    tree = None
    segments = []
    try:
        try:
            tree, segments = attach_tree(snapshot_spec, filters)
        except BaseException as exc:  # report, then die: parent sees non-ready
            reply_queue.put(("error", -1, shard_id, repr(exc)))
            raise
        width = tree.width
        reply_queue.put(("ready", -1, shard_id, None))
        while True:
            message = request_queue.get()
            if message is None:
                break
            request_id, los, his = message
            try:
                batch = rebuild_batch(los, his, width, max_length)
                result = tree.probe(batch)
                answers = np.asarray(result.required_reads > 0, dtype=bool)
                reply_queue.put(
                    ("ok", request_id, shard_id, (answers, probe_stats(result)))
                )
            except Exception as exc:
                reply_queue.put(("error", request_id, shard_id, repr(exc)))
    finally:
        # Drop every view into the segments before closing the mappings —
        # closing with live buffer exports raises BufferError.
        del tree
        for segment in segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - exit cleans up anyway
                pass
