"""The async micro-batcher: coalesce single lookups into query batches.

Every vectorised layer below — batched fence routing, one filter call per
SST, the compiled kernels — amortises per-query overhead across a batch,
but a serving front-end receives lookups one at a time.  The
:class:`MicroBatcher` closes that gap with the standard coalescing
policy: requests accumulate until either ``max_batch`` of them are
pending (size flush) or ``max_delay`` seconds have passed since the
first one arrived (delay flush — the latency bound a sparse stream pays),
then the whole group is answered with a **single** backend call and each
answer is fanned back to exactly its own caller's future.

The backend callable (``answer_batch(los, his) -> answers``) is invoked
in an executor thread because it blocks (it is
:meth:`~repro.serve.service.ShardedLookupService.serve_batch` dispatching
to worker processes), so the event loop keeps accepting and coalescing
new lookups while a batch is in flight — the pipelining that makes the
sustained-throughput numbers in ``serve_bench`` possible.

Instrumentation (optional, via :mod:`repro.obs`): a batch-size histogram
(how well is coalescing working), a queue-wait histogram (the latency
cost of waiting for the flush), and per-reason flush counters.
"""

from __future__ import annotations

import asyncio
from time import perf_counter
from typing import Callable, Sequence

from repro.obs.metrics import MetricsRegistry

__all__ = ["MicroBatcher", "BATCH_SIZE_BUCKETS"]

#: Power-of-two batch-size histogram buckets (an +inf overflow follows).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0)


class MicroBatcher:
    """Coalesce awaited point/range lookups into batched backend calls.

    One batcher serves one asyncio event loop.  ``answer_batch`` receives
    parallel ``los``/``his`` lists (whatever scalar type the callers
    passed — ints for integer key spaces, bytes/str for byte ones) and
    must return one truthy/falsy answer per request, in order.
    """

    def __init__(
        self,
        answer_batch: Callable[[list, list], Sequence],
        max_batch: int = 256,
        max_delay: float = 0.002,
        metrics: MetricsRegistry | None = None,
        executor=None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        self._answer_batch = answer_batch
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.metrics = metrics
        self._executor = executor
        self._loop: asyncio.AbstractEventLoop | None = None
        #: Pending requests: ``(lo, hi, future, enqueued_at)``.
        self._pending: list[tuple] = []
        self._timer: asyncio.TimerHandle | None = None
        self._tasks: set[asyncio.Task] = set()
        self._closed = False

    # ------------------------------------------------------------------ #
    # The caller side                                                    #
    # ------------------------------------------------------------------ #

    async def lookup(self, lo, hi) -> bool:
        """Await the answer to one inclusive ``[lo, hi]`` range lookup."""
        if self._closed:
            raise RuntimeError("cannot submit to a closed MicroBatcher")
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        elif loop is not self._loop:
            raise RuntimeError("a MicroBatcher is bound to one event loop")
        future: asyncio.Future = loop.create_future()
        self._pending.append((lo, hi, future, perf_counter()))
        if self.metrics is not None:
            self.metrics.inc("serve.batcher.requests")
        if len(self._pending) >= self.max_batch:
            self._flush("size")
        elif self._timer is None:
            self._timer = loop.call_later(self.max_delay, self._flush, "delay")
        return await future

    async def point(self, key) -> bool:
        """Await the answer to one point lookup (``[key, key]``)."""
        return await self.lookup(key, key)

    @property
    def num_pending(self) -> int:
        """Requests waiting for the next flush (in-flight ones excluded)."""
        return len(self._pending)

    # ------------------------------------------------------------------ #
    # Flushing and fan-back                                              #
    # ------------------------------------------------------------------ #

    def _flush(self, reason: str) -> None:
        """Seal the pending group and dispatch it as one backend call."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        requests, self._pending = self._pending, []
        if self.metrics is not None:
            self.metrics.observe(
                "serve.batcher.batch_size", len(requests), BATCH_SIZE_BUCKETS
            )
            self.metrics.inc(f"serve.batcher.flush.{reason}")
        task = self._loop.create_task(self._dispatch(requests))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _dispatch(self, requests: list[tuple]) -> None:
        """Answer one sealed group; every future gets exactly its answer.

        A backend failure propagates to *every* caller in the group (each
        future carries the exception); a miscounted answer vector is a
        protocol error and does the same.  Futures whose caller went away
        (cancelled) are skipped.
        """
        dispatched = perf_counter()
        if self.metrics is not None:
            for _, _, _, enqueued in requests:
                self.metrics.observe(
                    "serve.batcher.queue_wait_seconds", dispatched - enqueued
                )
        los = [request[0] for request in requests]
        his = [request[1] for request in requests]
        try:
            answers = await self._loop.run_in_executor(
                self._executor, self._answer_batch, los, his
            )
            answers = list(answers)
            if len(answers) != len(requests):
                raise RuntimeError(
                    f"answer_batch returned {len(answers)} answers "
                    f"for {len(requests)} requests"
                )
        except Exception as exc:
            for _, _, future, _ in requests:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, _, future, _), answer in zip(requests, answers):
            if not future.done():
                future.set_result(bool(answer))

    async def close(self) -> None:
        """Flush the tail, wait for every in-flight batch, reject new work."""
        self._closed = True
        self._flush("close")
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    async def __aenter__(self) -> "MicroBatcher":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MicroBatcher(max_batch={self.max_batch}, "
            f"max_delay={self.max_delay}, pending={len(self._pending)}, "
            f"in_flight={len(self._tasks)})"
        )
