"""Key-space sharding: partition one tree's keys across serving workers.

A shard is a contiguous slice of the sorted key set, so the shard fences
(per-shard min/max keys) are increasing arrays and routing a query batch
is the same two-``searchsorted`` interval trick the
:class:`~repro.lsm.tree.LSMTree` uses to route queries to SSTs within a
level — just one level up: each query's candidate shards form the
contiguous interval ``first[q] <= s < last[q]``.  A range that straddles
a shard boundary fans out to every overlapping shard and the per-shard
answers OR together, which is exact because each shard answers ground
truth *for its own keys*.  A query falling entirely in the gap between
two shards' fences touches no worker at all and is answered negative by
the router for free — the serving-layer analogue of fence pruning.

Budget composition: the global :class:`~repro.api.spec.FilterSpec` splits
across shards with :func:`~repro.api.budget.derive_shard_specs` (shards
as allocation units), then each shard's tree re-splits its grant across
its own SSTs via the ordinary ``attach_filters`` path — the global-grant
invariant holds at both levels.
"""

from __future__ import annotations

import numpy as np

from repro.api import FilterSpec, Workload, derive_shard_specs, family
from repro.lsm.tree import LSMTree
from repro.workloads.batch import MAX_VECTOR_WIDTH
from repro.workloads.keyset import KeySet

__all__ = ["plan_shard_bounds", "shard_fences", "split_key_set", "build_shard_trees"]


def plan_shard_bounds(num_keys: int, num_shards: int) -> list[tuple[int, int]]:
    """Near-equal contiguous index ranges ``[start, stop)``, one per shard.

    Sizes differ by at most one key.  More shards than keys is clamped to
    one key per shard — a worker with nothing to serve would be pure
    overhead.
    """
    if num_keys <= 0:
        raise ValueError("cannot shard an empty key set")
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    num_shards = min(num_shards, num_keys)
    edges = np.linspace(0, num_keys, num_shards + 1).astype(np.int64)
    return [(int(lo), int(hi)) for lo, hi in zip(edges, edges[1:])]


def split_key_set(keys: KeySet, num_shards: int) -> list[KeySet]:
    """Partition ``keys`` into contiguous shards (zero-copy slices)."""
    return [
        keys.slice(start, stop)
        for start, stop in plan_shard_bounds(len(keys), num_shards)
    ]


def shard_fences(shards: list[KeySet]) -> tuple[np.ndarray, np.ndarray]:
    """Per-shard min/max fence arrays in the key set's native dtype.

    Same dtype rule as the tree's level fences: ``S``-dtype for byte keys
    (so a :class:`~repro.workloads.bytekeys.ByteQueryBatch`'s bounds
    searchsort directly in memcmp order), ``int64`` for vector-width
    integers, ``object`` for wide ones.
    """
    if not shards:
        raise ValueError("need at least one shard")
    sample = shards[0]
    if sample.is_bytes:
        dtype = sample.keys.dtype
    else:
        dtype = np.int64 if sample.width <= MAX_VECTOR_WIDTH else object
    mins = np.array([shard.first for shard in shards], dtype=dtype)
    maxs = np.array([shard.last for shard in shards], dtype=dtype)
    return mins, maxs


def route_queries(
    mins: np.ndarray, maxs: np.ndarray, los: np.ndarray, his: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Candidate shard interval per query: ``first[q] <= s < last[q]``.

    Shards are disjoint and sorted, so both fence arrays are increasing
    and two binary searches bound each query's overlap set — ``first ==
    last`` means the range dodges every shard and the answer is a free
    negative.
    """
    first = np.searchsorted(maxs, los, side="left")
    last = np.searchsorted(mins, his, side="right")
    return first, last


def build_shard_trees(
    shards: list[KeySet],
    spec: FilterSpec | None = None,
    workload: Workload | None = None,
    policy: str = "proportional",
    sst_keys: int = 512,
    fanout: int = 4,
    seed: int = 0,
    metrics=None,
) -> list[LSMTree]:
    """One leveled tree per shard, filters split through the two-level budget.

    Each shard builds with a distinct derived seed so the level
    permutations are independent, and attaches filters from its
    :func:`~repro.api.budget.derive_shard_specs` share of the global
    budget against the one shared query sample — the paper's deployment,
    now per shard.  ``spec=None`` builds filterless trees (the no-filter
    serving baseline).
    """
    if spec is not None and workload is None and family(spec.family).requires_workload:
        # Catch this at the service boundary: failing later, deep inside
        # some shard's attach_filters, reads like a per-SST build bug.
        raise ValueError(
            f"filter family {spec.family!r} is self-designing; pass the "
            f"workload (query sample) to build sharded filters against"
        )
    trees = [
        LSMTree.build(shard, sst_keys=sst_keys, fanout=fanout, seed=seed + index)
        for index, shard in enumerate(shards)
    ]
    if spec is not None:
        shard_specs = derive_shard_specs(spec, [len(s) for s in shards], policy)
        for tree, shard_spec in zip(trees, shard_specs):
            tree.attach_filters(shard_spec, workload, policy=policy, metrics=metrics)
    return trees
