"""Shared-memory snapshots: key buffers workers probe zero-copy.

The serving layer places the numpy buffers behind a shard's
:class:`~repro.lsm.tree.LSMTree` into POSIX shared memory
(:mod:`multiprocessing.shared_memory`) so worker processes probe *views*
of one physical copy instead of pickled duplicates.  The layout mirrors
the tree's own aliasing contract — every SST in a level is a zero-copy
:meth:`~repro.workloads.keyset.KeySet.slice` of one parent array — so a
level snapshot is one segment per backing array plus the SST boundary
offsets, and the worker-side reconstruction goes through the same
``_trusted`` constructors the in-process slicing path uses.

Ownership rules (the lifecycle the tests pin):

* the **parent** creates every segment, copies the key buffers in once at
  snapshot time, and is the only process that ever calls ``unlink`` —
  worker death can never leak a segment the parent still tracks;
* **workers** attach read-only views and ``close`` on exit; workers are
  spawned children sharing the parent's resource tracker, so their
  attach-time registrations deduplicate against the parent's own (see
  :func:`attach_segment`) and a worker exit can never unlink a segment
  the parent still serves from;
* snapshots are **immutable by construction**: the copy decouples the
  serving view from the source tree, so the parent's online compactions
  never move bytes under a probing worker.

Filters are deliberately *not* placed in shared memory: at ``B`` bits per
key they are a ~``B/64``-th the size of the key arrays and pickle once at
worker start, while their internals (bit arrays, succinct tries, CPFPR
designs) have no stable cross-process layout to share.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

from repro.lsm.sstable import SSTable
from repro.lsm.tree import LSMTree
from repro.workloads.batch import EncodedKeySet
from repro.workloads.bytekeys import ByteKeySet
from repro.workloads.keyset import KeySet

__all__ = [
    "attach_key_set",
    "attach_segment",
    "attach_tree",
    "share_key_set",
    "snapshot_tree",
]


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting cleanup responsibility.

    Python 3.13 grew ``track=False`` for exactly this.  On earlier
    versions every attach registers the name with the resource tracker —
    but our workers are spawned children of the segment's creator, and
    spawned children share the *parent's* tracker process (the fd rides
    along in the spawn preparation data), so the worker's registration is
    a set-idempotent duplicate of the parent's own: nothing is unlinked
    at worker exit, the parent's ``unlink`` clears the single entry, and
    a crashed parent still gets its segments reaped by the tracker.  The
    oft-cited hazard (bpo-38119: an attaching process's tracker unlinks
    the segment when *it* exits) only bites attachers with an independent
    tracker, which this serving topology never creates — so no
    ``unregister`` workaround, which would instead erase the parent's
    leak protection and make its ``unlink`` double-unregister.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: shared-tracker registration is benign
        return shared_memory.SharedMemory(name=name)


def _share_array(arr: np.ndarray) -> tuple[dict, shared_memory.SharedMemory]:
    """Copy ``arr`` into a fresh segment; return its JSON-able descriptor.

    The descriptor carries everything :func:`_attach_array` needs to
    rebuild a dtype-faithful view: segment name, dtype string (including
    ``S``-itemsize for byte keys), and shape.  The local view used for the
    copy is dropped before returning so the parent can ``close`` segments
    without outstanding buffer exports.
    """
    arr = np.ascontiguousarray(arr)
    if arr.dtype == object:
        raise ValueError(
            "object-dtype arrays (wide integer key spaces) have no stable "
            "byte layout to share; use byte-string keys or width <= 63"
        )
    segment = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=segment.buf)
    view[...] = arr
    del view
    spec = {"name": segment.name, "dtype": arr.dtype.str, "shape": list(arr.shape)}
    return spec, segment


def _attach_array(spec: dict) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    """Attach the segment behind ``spec`` and view it with the recorded dtype."""
    segment = attach_segment(spec["name"])
    view = np.ndarray(
        tuple(spec["shape"]), dtype=np.dtype(spec["dtype"]), buffer=segment.buf
    )
    return view, segment


def share_key_set(
    keys: KeySet,
) -> tuple[dict, list[shared_memory.SharedMemory]]:
    """Copy one key set's backing arrays into shared memory.

    Returns ``(spec, segments)``: a picklable descriptor for
    :func:`attach_key_set` plus the created segments, which the caller
    owns (close + unlink).  Integer sets share their one int64 array; byte
    sets share all three arrays of the arrow-style layout (flat buffer,
    offsets, padded view), so the worker-side set is fully zero-copy.
    """
    if isinstance(keys, ByteKeySet):
        buffer_spec, buffer_seg = _share_array(keys.buffer)
        offsets_spec, offsets_seg = _share_array(keys.offsets)
        padded_spec, padded_seg = _share_array(keys.keys)
        spec = {
            "kind": "bytes",
            "max_length": keys.max_length,
            "buffer": buffer_spec,
            "offsets": offsets_spec,
            "padded": padded_spec,
        }
        return spec, [buffer_seg, offsets_seg, padded_seg]
    if isinstance(keys, EncodedKeySet):
        array_spec, segment = _share_array(keys.keys)
        return {"kind": "encoded", "width": keys.width, "keys": array_spec}, [segment]
    raise TypeError(f"cannot share key set of type {type(keys).__name__}")


def attach_key_set(
    spec: dict,
) -> tuple[KeySet, list[shared_memory.SharedMemory]]:
    """Rebuild a :class:`KeySet` over shared-memory views (no copies).

    The arrays were valid (sorted, distinct, bounds-checked) when the
    parent shared them and shared snapshots are immutable, so the views go
    through the ``_trusted`` constructors — the same vouched-for path the
    in-process SSTable slicing uses.
    """
    if spec["kind"] == "encoded":
        view, segment = _attach_array(spec["keys"])
        return EncodedKeySet._trusted(view, spec["width"]), [segment]
    if spec["kind"] == "bytes":
        buffer_view, buffer_seg = _attach_array(spec["buffer"])
        offsets_view, offsets_seg = _attach_array(spec["offsets"])
        padded_view, padded_seg = _attach_array(spec["padded"])
        keys = ByteKeySet._trusted(
            buffer_view, offsets_view, padded_view, spec["max_length"]
        )
        return keys, [buffer_seg, offsets_seg, padded_seg]
    raise ValueError(f"unknown shared key-set kind {spec['kind']!r}")


def snapshot_tree(
    tree: LSMTree,
) -> tuple[dict, list[shared_memory.SharedMemory], list]:
    """Freeze a tree's key buffers into shared memory.

    Returns ``(spec, segments, filters)``:

    * ``spec`` — a picklable topology descriptor (per level: one shared
      key-set spec, the SST boundary offsets, and an optional tombstone
      mask spec);
    * ``segments`` — every created segment, owned by the caller;
    * ``filters`` — the attached filter objects in ``tree.sstables()``
      order (``None`` where an SST runs unfiltered), to be pickled to the
      worker separately from the shared key buffers.

    Each level's SSTs are re-concatenated into one fresh array before
    sharing: SSTs within a level are disjoint and ordered, so the
    concatenation is itself a sorted distinct run and the per-SST views
    reconstruct as plain slices — the aliasing contract, now across a
    process boundary.
    """
    level_specs: list[dict] = []
    segments: list[shared_memory.SharedMemory] = []
    filters: list = []
    for level in tree.levels:
        bounds: list[int] = [0]
        for sst in level:
            bounds.append(bounds[-1] + len(sst))
            filters.append(sst.filter)
        if not level:
            level_specs.append({"keys": None, "bounds": bounds, "tombstones": None})
            continue
        sample = level[0].keys
        if isinstance(sample, ByteKeySet):
            padded = np.concatenate([sst.keys.keys for sst in level])
            level_keys: KeySet = ByteKeySet._from_padded(padded, sample.max_length)
        else:
            level_keys = EncodedKeySet(
                np.concatenate([sst.keys.keys for sst in level]), tree.width
            )
        keys_spec, keys_segments = share_key_set(level_keys)
        segments.extend(keys_segments)
        tombstones_spec = None
        if any(sst.tombstones is not None for sst in level):
            mask = np.concatenate([sst.tombstone_mask() for sst in level])
            tombstones_spec, mask_segment = _share_array(mask)
            segments.append(mask_segment)
        level_specs.append(
            {"keys": keys_spec, "bounds": bounds, "tombstones": tombstones_spec}
        )
    spec = {
        "width": tree.width,
        "geometry": dict(tree.geometry),
        "levels": level_specs,
    }
    return spec, segments, filters


def attach_tree(
    spec: dict, filters: list | None = None
) -> tuple[LSMTree, list[shared_memory.SharedMemory]]:
    """Rebuild a probe-ready :class:`LSMTree` over shared-memory views.

    The inverse of :func:`snapshot_tree`: every SST is a zero-copy slice
    of its level's shared key array.  ``filters`` (in ``sstables()``
    order, as returned by :func:`snapshot_tree`) are re-attached without
    their specs — a serving snapshot never rebuilds, so the budget
    provenance stays with the parent.
    """
    levels: list[list[SSTable]] = []
    segments: list[shared_memory.SharedMemory] = []
    for level_index, level_spec in enumerate(spec["levels"]):
        if level_spec["keys"] is None:
            levels.append([])
            continue
        level_keys, keys_segments = attach_key_set(level_spec["keys"])
        segments.extend(keys_segments)
        tombstones = None
        if level_spec["tombstones"] is not None:
            tombstones, mask_segment = _attach_array(level_spec["tombstones"])
            segments.append(mask_segment)
        ssts = []
        bounds = level_spec["bounds"]
        for sst_index, (start, stop) in enumerate(zip(bounds, bounds[1:])):
            ssts.append(
                SSTable(
                    level_index,
                    sst_index,
                    level_keys.slice(start, stop),
                    tombstones[start:stop] if tombstones is not None else None,
                )
            )
        levels.append(ssts)
    tree = LSMTree(levels, spec["width"], spec["geometry"])
    if filters is not None:
        for sst, filt in zip(tree.sstables(), filters):
            if filt is not None:
                sst.attach_filter(filt)
    return tree, segments
