"""The ``numba`` backend: JIT-compiled kernels, optional at runtime.

numba is an *extras* dependency (``pip install proteus-repro[kernels]``);
when it is not importable :func:`load` returns ``None`` and the registry
silently falls back, so a numpy-only environment never notices this module.
The jitted loops mirror ``_ckernels.c`` statement for statement — the same
fmix64 finaliser, probe recurrence and level pass — so results stay
bit-identical to the numpy reference backend.
"""

from __future__ import annotations

import numpy as np

name = "numba"


def _build_kernels():
    """Compile the jitted kernel set; raises when numba is unusable."""
    from numba import njit

    @njit(cache=False)
    def _fmix64(v):
        v ^= v >> np.uint64(33)
        v *= np.uint64(0xFF51AFD7ED558CCD)
        v ^= v >> np.uint64(33)
        v *= np.uint64(0xC4CEB9FE1A85EC53)
        v ^= v >> np.uint64(33)
        return v

    @njit(cache=False)
    def bloom_add(buffer, num_bits, values, s1, s2, k):
        m = np.uint64(num_bits)
        for j in range(values.size):
            v = values[j]
            x = _fmix64(v ^ s1) % m
            y = (_fmix64(v ^ s2) | np.uint64(1)) % m
            buffer[x >> np.uint64(3)] |= np.uint8(128) >> np.uint8(x & np.uint64(7))
            for i in range(1, k):
                x = (x + y) % m
                y = (y + np.uint64(i)) % m
                buffer[x >> np.uint64(3)] |= (
                    np.uint8(128) >> np.uint8(x & np.uint64(7))
                )

    @njit(cache=False)
    def bloom_contains(buffer, num_bits, values, s1, s2, k, out):
        m = np.uint64(num_bits)
        for j in range(values.size):
            v = values[j]
            x = _fmix64(v ^ s1) % m
            y = (_fmix64(v ^ s2) | np.uint64(1)) % m
            hit = (
                buffer[x >> np.uint64(3)] >> np.uint8(7 - (x & np.uint64(7)))
            ) & np.uint8(1)
            for i in range(1, k):
                if not hit:
                    break
                x = (x + y) % m
                y = (y + np.uint64(i)) % m
                hit = (
                    buffer[x >> np.uint64(3)] >> np.uint8(7 - (x & np.uint64(7)))
                ) & np.uint8(1)
            out[j] = hit

    @njit(cache=False)
    def bitvector_get_rank1(buffer, cumulative, num_bits, positions, bits, ranks):
        for j in range(positions.size):
            p = positions[j]
            bits[j] = (buffer[p >> 3] >> np.uint8(7 - (p & 7))) & np.uint8(1)
            q = p + 1
            full = q >> 3
            part = q & 7
            r = cumulative[full]
            if part:
                masked = buffer[full] & np.uint8((0xFF00 >> part) & 0xFF)
                while masked:
                    r += 1
                    masked &= np.uint8(masked - np.uint8(1))
            ranks[j] = r

    @njit(cache=False)
    def trie_levels(mat, lengths, labels_out, parent_out, leaf_out,
                    edge_counts, group_counts, grp, idx):
        n, height = mat.shape
        nact = 0
        for i in range(n):
            if lengths[i] > 0:
                idx[nact] = i
                grp[nact] = 0
                nact += 1
        out_pos = 0
        for level in range(height):
            edge_counts[level] = 0
            group_counts[level] = 0
            if nact == 0:
                continue
            edge_id = -1
            ngroups = 0
            prev_grp = -1
            prev_byte = np.uint8(0)
            next_nact = 0
            for a in range(nact):
                i = idx[a]
                g = grp[a]
                byte = mat[i, level]
                if g != prev_grp:
                    ngroups += 1
                if g != prev_grp or byte != prev_byte:
                    edge_id += 1
                    labels_out[out_pos + edge_id] = byte
                    parent_out[out_pos + edge_id] = ngroups - 1
                    leaf_out[out_pos + edge_id] = lengths[i] == level + 1
                prev_grp = g
                prev_byte = byte
                if lengths[i] > level + 1:
                    idx[next_nact] = i
                    grp[next_nact] = edge_id
                    next_nact += 1
            edge_counts[level] = edge_id + 1
            group_counts[level] = ngroups
            out_pos += edge_id + 1
            nact = next_nact
        return out_pos

    return bloom_add, bloom_contains, bitvector_get_rank1, trie_levels


class _NumbaBackend:
    """Kernel entry points over the jitted loops (numpy in/out at the edge)."""

    name = "numba"

    def __init__(self):
        (self._bloom_add, self._bloom_contains,
         self._bitvector_get_rank1, self._trie_levels) = _build_kernels()
        # Force one tiny compilation now so availability failures surface
        # at load time (and fall back) instead of mid-probe.
        probe = np.zeros(1, dtype=np.uint8)
        self._bloom_contains(
            probe, np.uint64(8), np.zeros(1, dtype=np.uint64),
            np.uint64(1), np.uint64(2), 1, np.empty(1, dtype=np.uint8),
        )

    def bloom_add(self, buffer, num_bits, values, s1, s2, k):
        v = np.ascontiguousarray(np.asarray(values).astype(np.uint64, copy=False))
        self._bloom_add(
            buffer, np.uint64(num_bits), v, np.uint64(s1), np.uint64(s2), int(k)
        )

    def bloom_contains(self, buffer, num_bits, values, s1, s2, k):
        v = np.ascontiguousarray(np.asarray(values).astype(np.uint64, copy=False))
        out = np.empty(v.size, dtype=np.uint8)
        self._bloom_contains(
            buffer, np.uint64(num_bits), v, np.uint64(s1), np.uint64(s2), int(k), out
        )
        return out.view(bool)

    def bitvector_get_rank1(self, buffer, cumulative, num_bits, positions):
        pos = np.ascontiguousarray(positions, dtype=np.int64)
        bits = np.empty(pos.size, dtype=np.uint8)
        ranks = np.empty(pos.size, dtype=np.int64)
        self._bitvector_get_rank1(buffer, cumulative, int(num_bits), pos, bits, ranks)
        return bits.view(bool), ranks

    def trie_levels(self, mat, lengths):
        mat = np.ascontiguousarray(mat, dtype=np.uint8)
        lengths = np.ascontiguousarray(lengths, dtype=np.int64)
        n, height = mat.shape
        capacity = max(1, int(lengths.sum()))
        labels = np.empty(capacity, dtype=np.uint8)
        parents = np.empty(capacity, dtype=np.int64)
        leaves = np.empty(capacity, dtype=np.uint8)
        edge_counts = np.zeros(height, dtype=np.int64)
        group_counts = np.zeros(height, dtype=np.int64)
        grp = np.empty(max(1, n), dtype=np.int64)
        idx = np.empty(max(1, n), dtype=np.int64)
        total = self._trie_levels(
            mat, lengths, labels, parents, leaves, edge_counts, group_counts,
            grp, idx,
        )
        return (
            labels[:total].copy(), parents[:total].copy(),
            leaves[:total].view(bool).copy(), edge_counts, group_counts,
        )


def load() -> _NumbaBackend | None:
    """Build the jitted backend; ``None`` when numba is absent or broken."""
    try:
        return _NumbaBackend()
    except Exception:  # numba not installed, or JIT unavailable on platform
        return None
