"""The ``cc`` backend: the C kernels, compiled on demand with the system
C compiler and loaded through ctypes.

No Python extension machinery is involved — ``_ckernels.c`` is plain C with
no ``Python.h`` dependency, compiled once per source hash into a cached
shared object (``$REPRO_KERNEL_CACHE`` or the system temp directory).  Any
failure (no compiler, sandboxed filesystem, broken toolchain) makes
:func:`load` return ``None`` and the registry silently falls back, so this
backend can never take an environment down.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

name = "cc"

_SOURCE = Path(__file__).with_name("_ckernels.c")

_u8_p = ctypes.POINTER(ctypes.c_uint8)
_u64_p = ctypes.POINTER(ctypes.c_uint64)
_i64_p = ctypes.POINTER(ctypes.c_int64)


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    return Path(tempfile.gettempdir()) / "repro-kernels"


def _compile() -> Path:
    """Compile the C source (once per content hash) and return the .so path."""
    compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if compiler is None:
        raise RuntimeError("no C compiler on PATH")
    tag = hashlib.sha256(_SOURCE.read_bytes()).hexdigest()[:16]
    lib_path = _cache_dir() / f"ckernels-{tag}.so"
    if not lib_path.exists():
        lib_path.parent.mkdir(parents=True, exist_ok=True)
        scratch = lib_path.with_name(f"{lib_path.stem}.{os.getpid()}.tmp.so")
        subprocess.run(
            [compiler, "-O2", "-shared", "-fPIC", "-o", str(scratch), str(_SOURCE)],
            check=True, capture_output=True, timeout=120,
        )
        os.replace(scratch, lib_path)  # atomic: concurrent builders agree
    return lib_path


def _ptr(array: np.ndarray, ctype):  # noqa: ANN001 - ctypes pointer type
    return array.ctypes.data_as(ctypes.POINTER(ctype))


class _CcBackend:
    """Kernel entry points bound to the compiled shared object."""

    name = "cc"

    def __init__(self, lib: ctypes.CDLL):
        self._lib = lib
        lib.bloom_add.argtypes = [
            _u8_p, ctypes.c_uint64, _u64_p, ctypes.c_int64,
            ctypes.c_uint64, ctypes.c_uint64, ctypes.c_int64,
        ]
        lib.bloom_add.restype = None
        lib.bloom_contains.argtypes = [
            _u8_p, ctypes.c_uint64, _u64_p, ctypes.c_int64,
            ctypes.c_uint64, ctypes.c_uint64, ctypes.c_int64, _u8_p,
        ]
        lib.bloom_contains.restype = None
        lib.bitvector_get_rank1.argtypes = [
            _u8_p, _i64_p, ctypes.c_int64, _i64_p, ctypes.c_int64, _u8_p, _i64_p,
        ]
        lib.bitvector_get_rank1.restype = None
        lib.trie_levels.argtypes = [
            _u8_p, _i64_p, ctypes.c_int64, ctypes.c_int64,
            _u8_p, _i64_p, _u8_p, _i64_p, _i64_p, _i64_p, _i64_p,
        ]
        lib.trie_levels.restype = ctypes.c_int64

    def bloom_add(self, buffer, num_bits, values, s1, s2, k):
        v = np.ascontiguousarray(np.asarray(values).astype(np.uint64, copy=False))
        self._lib.bloom_add(
            _ptr(buffer, ctypes.c_uint8), num_bits, _ptr(v, ctypes.c_uint64),
            v.size, s1, s2, k,
        )

    def bloom_contains(self, buffer, num_bits, values, s1, s2, k):
        v = np.ascontiguousarray(np.asarray(values).astype(np.uint64, copy=False))
        out = np.empty(v.size, dtype=np.uint8)
        self._lib.bloom_contains(
            _ptr(buffer, ctypes.c_uint8), num_bits, _ptr(v, ctypes.c_uint64),
            v.size, s1, s2, k, _ptr(out, ctypes.c_uint8),
        )
        return out.view(bool)

    def bitvector_get_rank1(self, buffer, cumulative, num_bits, positions):
        pos = np.ascontiguousarray(positions, dtype=np.int64)
        bits = np.empty(pos.size, dtype=np.uint8)
        ranks = np.empty(pos.size, dtype=np.int64)
        self._lib.bitvector_get_rank1(
            _ptr(buffer, ctypes.c_uint8), _ptr(cumulative, ctypes.c_int64),
            num_bits, _ptr(pos, ctypes.c_int64), pos.size,
            _ptr(bits, ctypes.c_uint8), _ptr(ranks, ctypes.c_int64),
        )
        return bits.view(bool), ranks

    def trie_levels(self, mat, lengths):
        mat = np.ascontiguousarray(mat, dtype=np.uint8)
        lengths = np.ascontiguousarray(lengths, dtype=np.int64)
        n, height = mat.shape
        capacity = max(1, int(lengths.sum()))
        labels = np.empty(capacity, dtype=np.uint8)
        parents = np.empty(capacity, dtype=np.int64)
        leaves = np.empty(capacity, dtype=np.uint8)
        edge_counts = np.zeros(height, dtype=np.int64)
        group_counts = np.zeros(height, dtype=np.int64)
        grp = np.empty(n, dtype=np.int64)
        idx = np.empty(n, dtype=np.int64)
        total = self._lib.trie_levels(
            _ptr(mat, ctypes.c_uint8), _ptr(lengths, ctypes.c_int64), n, height,
            _ptr(labels, ctypes.c_uint8), _ptr(parents, ctypes.c_int64),
            _ptr(leaves, ctypes.c_uint8), _ptr(edge_counts, ctypes.c_int64),
            _ptr(group_counts, ctypes.c_int64), _ptr(grp, ctypes.c_int64),
            _ptr(idx, ctypes.c_int64),
        )
        return (
            labels[:total].copy(), parents[:total].copy(),
            leaves[:total].view(bool).copy(), edge_counts, group_counts,
        )


def load() -> _CcBackend | None:
    """Compile (or reuse) the shared object; ``None`` when impossible."""
    try:
        return _CcBackend(ctypes.CDLL(str(_compile())))
    except Exception:  # no compiler / read-only tmp / exotic toolchains
        return None
