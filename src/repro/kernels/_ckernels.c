/* Compiled hot kernels for the `cc` backend of repro.kernels.
 *
 * Every function here is a bit-exact restatement of the numpy reference
 * implementation in _numpy_backend.py; parity is pinned by
 * tests/test_kernels.py.  The shared conventions:
 *
 *   - bit i of a packed buffer lives in byte i >> 3 at MSB-first position
 *     i & 7 (the repro.amq.bitarray.BitArray layout);
 *   - 64-bit hashing is the MurmurHash3 fmix64 finaliser; uint64_t
 *     arithmetic wraps modulo 2**64 exactly like the numpy uint64 lanes;
 *   - Bloom probe positions follow the enhanced double hashing recurrence
 *     x_{i+1} = (x_i + y_i) % m, y_{i+1} = (y_i + i) % m.
 *
 * Built once per source hash with `cc -O2 -shared -fPIC` and loaded via
 * ctypes; no Python.h dependency, so any C toolchain suffices.
 */

#include <stdint.h>

static const uint8_t BIT_MASKS[8] = {128, 64, 32, 16, 8, 4, 2, 1};

static inline uint64_t fmix64(uint64_t v) {
    v ^= v >> 33;
    v *= 0xFF51AFD7ED558CCDULL;
    v ^= v >> 33;
    v *= 0xC4CEB9FE1A85EC53ULL;
    v ^= v >> 33;
    return v;
}

static inline uint8_t get_bit(const uint8_t *buf, uint64_t pos) {
    return (uint8_t)((buf[pos >> 3] >> (7 - (pos & 7))) & 1u);
}

/* Insert every value: set the k probe positions of each hashed value. */
void bloom_add(uint8_t *buf, uint64_t num_bits, const uint64_t *values,
               int64_t n, uint64_t s1, uint64_t s2, int64_t k) {
    for (int64_t j = 0; j < n; j++) {
        uint64_t v = values[j];
        uint64_t x = fmix64(v ^ s1) % num_bits;
        uint64_t y = (fmix64(v ^ s2) | 1ULL) % num_bits;
        buf[x >> 3] |= BIT_MASKS[x & 7];
        for (uint64_t i = 1; i < (uint64_t)k; i++) {
            x = (x + y) % num_bits;
            y = (y + i) % num_bits;
            buf[x >> 3] |= BIT_MASKS[x & 7];
        }
    }
}

/* Probe every value; early-exits on the first unset bit per value. */
void bloom_contains(const uint8_t *buf, uint64_t num_bits,
                    const uint64_t *values, int64_t n, uint64_t s1,
                    uint64_t s2, int64_t k, uint8_t *out) {
    for (int64_t j = 0; j < n; j++) {
        uint64_t v = values[j];
        uint64_t x = fmix64(v ^ s1) % num_bits;
        uint64_t y = (fmix64(v ^ s2) | 1ULL) % num_bits;
        uint8_t hit = get_bit(buf, x);
        for (uint64_t i = 1; hit && i < (uint64_t)k; i++) {
            x = (x + y) % num_bits;
            y = (y + i) % num_bits;
            hit = get_bit(buf, x);
        }
        out[j] = hit;
    }
}

/* Fused LOUDS step: bit value at pos and rank1(pos + 1), per position.
 * cum[b] holds the popcount of bytes [0, b); positions are in
 * [0, num_bits) (the caller validates). */
void bitvector_get_rank1(const uint8_t *buf, const int64_t *cum,
                         int64_t num_bits, const int64_t *pos, int64_t n,
                         uint8_t *bit_out, int64_t *rank_out) {
    for (int64_t j = 0; j < n; j++) {
        int64_t p = pos[j];
        bit_out[j] = get_bit(buf, (uint64_t)p);
        int64_t q = p + 1;
        int64_t full = q >> 3;
        int64_t part = q & 7;
        int64_t r = cum[full];
        if (part)
            r += __builtin_popcount(
                (unsigned)(buf[full] & (uint8_t)((0xFF00 >> part) & 0xFF)));
        rank_out[j] = r;
    }
}

/* One pass over sorted, distinct, prefix-free byte strings (rows of a
 * padded n x H matrix with per-row lengths), emitting the per-level edge
 * arrays the succinct trie encoders consume:
 *
 *   labels_out[e]  - edge label byte (level-major, sorted within a node);
 *   parent_out[e]  - rank of the edge's parent among that level's
 *                    internal nodes (sorted == level order);
 *   leaf_out[e]    - 1 iff the edge ends a stored prefix (a leaf edge);
 *   edge_counts[l] - edges from level-l nodes into level l + 1;
 *   group_counts[l]- internal (child-bearing) nodes at level l.
 *
 * grp/idx are caller-provided int64 workspaces of size n.  Returns the
 * total number of edges written. */
int64_t trie_levels(const uint8_t *mat, const int64_t *lengths, int64_t n,
                    int64_t H, uint8_t *labels_out, int64_t *parent_out,
                    uint8_t *leaf_out, int64_t *edge_counts,
                    int64_t *group_counts, int64_t *grp, int64_t *idx) {
    int64_t nact = 0;
    for (int64_t i = 0; i < n; i++) {
        if (lengths[i] > 0) {
            idx[nact] = i;
            grp[nact] = 0;
            nact++;
        }
    }
    int64_t out_pos = 0;
    for (int64_t l = 0; l < H; l++) {
        edge_counts[l] = 0;
        group_counts[l] = 0;
        if (nact == 0)
            continue;
        int64_t edge_id = -1;
        int64_t ngroups = 0;
        int64_t prev_grp = -1;
        uint8_t prev_byte = 0;
        int64_t next_nact = 0;
        for (int64_t a = 0; a < nact; a++) {
            int64_t i = idx[a];
            int64_t g = grp[a];
            uint8_t byte = mat[i * H + l];
            if (g != prev_grp)
                ngroups++;
            if (g != prev_grp || byte != prev_byte) {
                edge_id++;
                labels_out[out_pos + edge_id] = byte;
                parent_out[out_pos + edge_id] = ngroups - 1;
                leaf_out[out_pos + edge_id] = (lengths[i] == l + 1);
            }
            prev_grp = g;
            prev_byte = byte;
            if (lengths[i] > l + 1) {
                idx[next_nact] = i;
                grp[next_nact] = edge_id;
                next_nact++;
            }
        }
        edge_counts[l] = edge_id + 1;
        group_counts[l] = ngroups;
        out_pos += edge_id + 1;
        nact = next_nact;
    }
    return out_pos;
}
