"""Compiled hot kernels behind a pluggable backend registry.

The batched numpy execution layer (PR 2) left three loops numpy cannot
fuse: the per-hash Bloom probe round-trips, the rank+get pair inside every
LOUDS traversal step, and the per-node Python walks of the trie builders.
This package exposes those loops as pure-function *kernels* served by one
of several backends:

* ``numpy`` — the vectorised reference implementation, always available;
  it defines kernel semantics and every other backend must match it
  bit for bit (``tests/test_kernels.py`` pins this).
* ``numba`` — JIT-compiled loops, available when the optional ``numba``
  extra is installed (``pip install proteus-repro[kernels]``).
* ``cc`` — the same loops as plain C, compiled on demand with the system
  C compiler and loaded via ctypes; available wherever a toolchain is.

Selection: an explicit ``backend=`` argument wins, then the
``REPRO_KERNEL_BACKEND`` environment variable, then the preference order
``numba > cc > numpy``.  Naming a *known but unavailable* backend falls
back silently (the documented "numba absent" contract); naming an unknown
backend raises, because that is always a typo.

>>> import repro.kernels as kernels
>>> "numpy" in kernels.available_backends()
True
>>> kernels.get_backend_name("no-such-backend")  # doctest: +IGNORE_EXCEPTION_DETAIL
Traceback (most recent call last):
ValueError: unknown kernel backend 'no-such-backend'...

Observability: :func:`attach_metrics` registers per-dispatch counters
``kernels.dispatch.{backend}.{kernel}`` on a
:class:`repro.obs.metrics.MetricsRegistry`, so instrumented runs report
which backend actually served each hot path.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Callable, Iterator

import numpy as np

from repro.kernels import _numpy_backend

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "ENV_VAR",
    "available_backends",
    "get_backend_name",
    "use_backend",
    "attach_metrics",
    "bloom_positions",
    "bloom_add",
    "bloom_contains",
    "bitvector_get_rank1",
    "trie_levels",
    "merge_runs",
]

#: Environment variable naming the default backend for the process.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Resolution order when nothing is requested explicitly.
_PREFERENCE = ("numba", "cc", "numpy")


def _load_numba():
    from repro.kernels import _numba_backend

    return _numba_backend.load()


def _load_cc():
    from repro.kernels import _cc_backend

    return _cc_backend.load()


_LOADERS: dict[str, Callable[[], Any]] = {
    "numpy": lambda: _numpy_backend,
    "numba": _load_numba,
    "cc": _load_cc,
}

_loaded: dict[str, Any] = {}
_forced: Any = None  # use_backend() override
_default: Any = None  # cached env/preference resolution
_metrics: "MetricsRegistry | None" = None


def _backend(name: str):
    """Load (once) and return the backend called ``name``, or ``None``."""
    if name not in _LOADERS:
        raise ValueError(
            f"unknown kernel backend {name!r}; known: {sorted(_LOADERS)}"
        )
    if name not in _loaded:
        _loaded[name] = _LOADERS[name]()
    return _loaded[name]


def available_backends() -> tuple[str, ...]:
    """Return the names of every backend that loads in this environment.

    ``numpy`` is always present; ``numba``/``cc`` appear when their
    toolchains do.  Order follows the resolution preference.
    """
    return tuple(n for n in _PREFERENCE if _backend(n) is not None)


def _resolve(name: str | None):
    """Return the backend object serving a dispatch.

    Explicit ``name`` wins (silently falling back to numpy when that
    backend is known but unavailable); otherwise the :func:`use_backend`
    override, then the cached ``REPRO_KERNEL_BACKEND``/preference default.
    """
    global _default
    if name is not None:
        return _backend(name) or _backend("numpy")
    if _forced is not None:
        return _forced
    if _default is None:
        requested = os.environ.get(ENV_VAR)
        if requested:
            _default = _backend(requested) or _backend("numpy")
        else:
            for candidate in _PREFERENCE:
                backend = _backend(candidate)
                if backend is not None:
                    _default = backend
                    break
    return _default


def get_backend_name(name: str | None = None) -> str:
    """Return the name of the backend a dispatch would use right now."""
    return _resolve(name).name


def reset_default_backend() -> None:
    """Drop the cached default so ``REPRO_KERNEL_BACKEND`` is re-read."""
    global _default
    _default = None


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Force every dispatch in the ``with`` body onto backend ``name``.

    The usual silent-fallback rule applies: a known but unavailable
    backend resolves to numpy.  Yields the name actually in force.
    """
    global _forced
    previous = _forced
    _forced = _backend(name) or _backend("numpy")
    try:
        yield _forced.name
    finally:
        _forced = previous


def attach_metrics(metrics: "MetricsRegistry | None") -> None:
    """Count every dispatch as ``kernels.dispatch.{backend}.{kernel}``.

    Pass ``None`` to detach.  The disabled path costs one ``is None``
    check per kernel call — the same contract as the rest of ``repro.obs``.
    """
    global _metrics
    _metrics = metrics


def _count(backend_name: str, kernel: str) -> None:
    if _metrics is not None:
        _metrics.inc(f"kernels.dispatch.{backend_name}.{kernel}")


# --------------------------------------------------------------------- #
# Kernel entry points                                                   #
# --------------------------------------------------------------------- #


def bloom_positions(
    values: np.ndarray, s1: int, s2: int, num_bits: int, k: int,
    backend: str | None = None,
) -> np.ndarray:
    """Return the ``(k, n)`` Bloom probe-position matrix (uint64).

    ``s1``/``s2`` are the pre-mixed double-hashing seeds.  Served by the
    numpy reference on every backend — the compiled backends fuse the
    positions into :func:`bloom_add`/:func:`bloom_contains` instead of
    materialising the matrix.
    """
    resolved = _resolve(backend)
    impl = getattr(resolved, "bloom_positions", None)
    if impl is None:
        resolved = _backend("numpy")
        impl = resolved.bloom_positions
    _count(resolved.name, "bloom_positions")
    return impl(values, s1, s2, num_bits, k)


def bloom_add(
    buffer: np.ndarray, num_bits: int, values: np.ndarray,
    s1: int, s2: int, k: int, backend: str | None = None,
) -> None:
    """Insert hashed ``values`` into the packed bit ``buffer`` in place."""
    resolved = _resolve(backend)
    _count(resolved.name, "bloom_add")
    resolved.bloom_add(buffer, num_bits, values, s1, s2, k)


def bloom_contains(
    buffer: np.ndarray, num_bits: int, values: np.ndarray,
    s1: int, s2: int, k: int, backend: str | None = None,
) -> np.ndarray:
    """Return one bool per value: every probe position set in ``buffer``."""
    resolved = _resolve(backend)
    _count(resolved.name, "bloom_contains")
    return resolved.bloom_contains(buffer, num_bits, values, s1, s2, k)


def bitvector_get_rank1(
    buffer: np.ndarray, cumulative: np.ndarray, num_bits: int,
    positions: np.ndarray, backend: str | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Fused LOUDS step: ``(bit at pos, rank1(pos + 1))`` per position."""
    resolved = _resolve(backend)
    _count(resolved.name, "bitvector_get_rank1")
    return resolved.bitvector_get_rank1(buffer, cumulative, num_bits, positions)


def merge_runs(
    keys: np.ndarray, tombstones: np.ndarray, priorities: np.ndarray,
    backend: str | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Newest-wins merge of concatenated sorted runs (the compaction core).

    Served by the numpy reference on every backend until a compiled
    implementation lands — the dispatch still counts, so instrumented
    compactions report ``kernels.dispatch.{backend}.merge_runs``.
    """
    resolved = _resolve(backend)
    impl = getattr(resolved, "merge_runs", None)
    if impl is None:
        resolved = _backend("numpy")
        impl = resolved.merge_runs
    _count(resolved.name, "merge_runs")
    return impl(keys, tombstones, priorities)


def trie_levels(
    mat: np.ndarray, lengths: np.ndarray, backend: str | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-level edge arrays of a sorted prefix-free byte-string matrix.

    Returns ``(labels, parents, leaves, edge_counts, group_counts)``; see
    :func:`repro.kernels._numpy_backend.trie_levels` for the exact
    contract the succinct-trie encoders consume.
    """
    resolved = _resolve(backend)
    _count(resolved.name, "trie_levels")
    return resolved.trie_levels(mat, lengths)
