"""The numpy reference backend: always available, defines kernel semantics.

Every other backend must return bit-identical results to these
implementations (pinned by ``tests/test_kernels.py``); they are the exact
vectorised code the hot paths ran before the kernel layer existed, moved
here verbatim so the dispatch indirection never changes an answer.
"""

from __future__ import annotations

import numpy as np

from repro.amq.hashing import mix64_many

name = "numpy"

_BIT_MASKS = np.array([1 << (7 - i) for i in range(8)], dtype=np.uint8)
_POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint32)


def bloom_positions(values: np.ndarray, s1: int, s2: int, num_bits: int, k: int) -> np.ndarray:
    """Return the ``(k, n)`` enhanced-double-hashing probe-position matrix.

    ``s1``/``s2`` are the pre-mixed seeds (``mix64(seed)`` and
    ``mix64(seed ^ GOLDEN)``); all intermediates stay below 2**64 because
    ``x, y < num_bits``, so uint64 wrap-around matches the scalar path.
    """
    v = np.asarray(values).astype(np.uint64)
    h1 = mix64_many(v ^ np.uint64(s1))
    h2 = mix64_many(v ^ np.uint64(s2)) | np.uint64(1)
    m = np.uint64(num_bits)
    x, y = h1 % m, h2 % m
    out = np.empty((k, v.shape[0]), dtype=np.uint64)
    out[0] = x
    for i in range(1, k):
        x = (x + y) % m
        y = (y + np.uint64(i)) % m
        out[i] = x
    return out


def bloom_add(buffer: np.ndarray, num_bits: int, values: np.ndarray,
              s1: int, s2: int, k: int) -> None:
    """Set every probe position of every value in the packed bit buffer."""
    positions = bloom_positions(values, s1, s2, num_bits, k)
    idx = positions.ravel().astype(np.int64)
    np.bitwise_or.at(buffer, idx >> 3, _BIT_MASKS[idx & 7])


def bloom_contains(buffer: np.ndarray, num_bits: int, values: np.ndarray,
                   s1: int, s2: int, k: int) -> np.ndarray:
    """Return one boolean per value: all k probe positions set."""
    positions = bloom_positions(values, s1, s2, num_bits, k)
    idx = positions.ravel().astype(np.int64)
    probed = (buffer[idx >> 3] & _BIT_MASKS[idx & 7]) != 0
    return probed.reshape(positions.shape).all(axis=0)


def bitvector_get_rank1(buffer: np.ndarray, cumulative: np.ndarray,
                        num_bits: int, positions: np.ndarray
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Fused LOUDS step: ``(bit at pos, rank1(pos + 1))`` per position.

    ``cumulative[b]`` is the popcount of bytes ``[0, b)``; positions must
    already be validated into ``[0, num_bits)`` by the caller.
    """
    idx = positions
    bits = (buffer[idx >> 3] & _BIT_MASKS[idx & 7]) != 0
    q = idx + 1
    full = q >> 3
    part = q & 7
    counts = cumulative[full]
    if buffer.size:
        safe = np.minimum(full, buffer.size - 1)
        masks = ((0xFF00 >> part) & 0xFF).astype(np.uint8)
        counts = counts + _POPCOUNT_TABLE[buffer[safe] & masks]
    return bits, counts.astype(np.int64)


def merge_runs(keys: np.ndarray, tombstones: np.ndarray, priorities: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray]:
    """Newest-wins k-way merge of concatenated sorted runs.

    ``keys``/``tombstones``/``priorities`` are the parallel concatenation
    of every input run's entries; ``priorities`` is the run's recency rank
    (0 = newest), constant within a run.  One ``lexsort`` orders entries by
    key with the newest first inside each duplicate group, then a shifted
    comparison keeps exactly the first (newest) entry per key.  Returns the
    sorted distinct ``(keys, tombstones)`` of the surviving entries —
    shadowed duplicates dropped, each key carrying its newest entry's
    tombstone flag.
    """
    if keys.size == 0:
        return keys[:0].copy(), tombstones[:0].copy()
    order = np.lexsort((priorities, keys))
    sorted_keys = keys[order]
    keep = np.empty(sorted_keys.size, dtype=bool)
    keep[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=keep[1:])
    return sorted_keys[keep], tombstones[order][keep]


def trie_levels(mat: np.ndarray, lengths: np.ndarray
                ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-level edge arrays of a sorted, distinct, prefix-free string set.

    ``mat`` is the ``(n, H)`` zero-padded byte matrix of the strings (rows
    in lexicographic order), ``lengths`` the per-row byte lengths.  Returns
    ``(labels, parents, leaves, edge_counts, group_counts)`` — level-major
    flat edge arrays plus per-level edge and internal-node counts — exactly
    the quantities the LOUDS-Dense/Sparse encoders consume.  One vector
    pass per level: group boundaries come from adjacent-row comparisons,
    which sorted order makes sufficient.
    """
    n, height = mat.shape
    label_parts: list[np.ndarray] = []
    parent_parts: list[np.ndarray] = []
    leaf_parts: list[np.ndarray] = []
    edge_counts = np.zeros(height, dtype=np.int64)
    group_counts = np.zeros(height, dtype=np.int64)
    idx = np.nonzero(lengths > 0)[0]
    grp = np.zeros(idx.size, dtype=np.int64)
    for level in range(height):
        if idx.size == 0:
            break
        byte = mat[idx, level]
        new_grp = np.empty(idx.size, dtype=bool)
        new_grp[0] = True
        np.not_equal(grp[1:], grp[:-1], out=new_grp[1:])
        boundary = new_grp.copy()
        boundary[1:] |= byte[1:] != byte[:-1]
        edge_id = np.cumsum(boundary) - 1
        group_id = np.cumsum(new_grp) - 1
        first = np.nonzero(boundary)[0]
        label_parts.append(byte[first].astype(np.uint8))
        parent_parts.append(group_id[first])
        leaf_parts.append(lengths[idx[first]] == level + 1)
        edge_counts[level] = first.size
        group_counts[level] = int(group_id[-1]) + 1
        keep = lengths[idx] > level + 1
        idx = idx[keep]
        grp = edge_id[keep]
    if label_parts:
        labels = np.concatenate(label_parts)
        parents = np.concatenate(parent_parts)
        leaves = np.concatenate(leaf_parts)
    else:
        labels = np.zeros(0, dtype=np.uint8)
        parents = np.zeros(0, dtype=np.int64)
        leaves = np.zeros(0, dtype=bool)
    return labels, parents, leaves, edge_counts, group_counts
