"""Bit vector with rank/select support.

The LOUDS encodings navigate the trie exclusively through ``rank1``,
``rank0`` and ``select1`` queries over their bit vectors.  This
implementation keeps the raw bits in a packed :class:`~repro.amq.bitarray.BitArray`
and a per-512-bit-block cumulative popcount directory, giving O(1) rank and
O(log n) select.  The reported payload size excludes the rank directory,
matching the size accounting convention of the SuRF paper.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro import kernels
from repro.amq.bitarray import BitArray

_BLOCK_BYTES = 64  # 512-bit rank blocks.

_POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint32)


class RankSelectBitVector:
    """An immutable bit vector supporting rank and select queries.

    Layout invariants: bit ``i`` lives in byte ``i >> 3`` at MSB-first
    position ``i & 7`` (the :class:`~repro.amq.bitarray.BitArray`
    convention), and ``_byte_cumulative[b]`` holds the popcount of bytes
    ``[0, b)`` — so ``rank1(i)`` is one directory lookup plus a partial-byte
    popcount, for scalar and batched callers alike.
    """

    def __init__(self, bits: Sequence[bool] | BitArray):
        """Wrap ``bits`` (a :class:`BitArray` is adopted, not copied)."""
        if isinstance(bits, BitArray):
            self._bits = bits
        else:
            self._bits = BitArray.from_bits(bits)
        self.num_bits = len(self._bits)
        self._build_rank_directory()

    def _build_rank_directory(self) -> None:
        byte_buffer = np.frombuffer(self._bits.to_bytes(), dtype=np.uint8)
        self._byte_buffer = byte_buffer
        byte_popcounts = _POPCOUNT_TABLE[byte_buffer]
        self._byte_cumulative = np.concatenate(
            ([0], np.cumsum(byte_popcounts, dtype=np.int64))
        )
        self._total_ones = int(self._byte_cumulative[-1])

    def __len__(self) -> int:
        """Return the number of bits in the vector."""
        return self.num_bits

    def get(self, index: int) -> bool:
        """Return the bit at ``index``."""
        return self._bits.get(index)

    def get_many(self, indices) -> np.ndarray:
        """Return a boolean array with the bit value at every index.

        Vectorised :meth:`get`: accepts any integer iterable or numpy array;
        every index must be in ``[0, num_bits)``.
        """
        return self._bits.get_many(indices)

    def __getitem__(self, index: int) -> bool:
        """Return the bit at ``index`` (sequence protocol)."""
        return self.get(index)

    def rank1(self, index: int) -> int:
        """Return the number of set bits in positions ``[0, index)``."""
        if index <= 0:
            return 0
        index = min(index, self.num_bits)
        full_bytes = index >> 3
        count = int(self._byte_cumulative[full_bytes])
        for position in range(full_bytes << 3, index):
            if self._bits.get(position):
                count += 1
        return count

    def rank0(self, index: int) -> int:
        """Return the number of zero bits in positions ``[0, index)``."""
        index = max(0, min(index, self.num_bits))
        return index - self.rank1(index)

    def rank1_many(self, indices) -> np.ndarray:
        """Return ``rank1`` at every index, vectorised.

        Bit-exact restatement of :meth:`rank1` (indices are clipped to
        ``[0, num_bits]`` the same way): one gather into the cumulative
        byte directory plus a masked-partial-byte popcount per index — the
        primitive the batched LOUDS traversals are built on.
        """
        idx = np.clip(
            np.asarray(indices, dtype=np.int64).ravel(), 0, self.num_bits
        )
        full_bytes = idx >> 3
        partial = idx & 7
        counts = self._byte_cumulative[full_bytes]
        # The top `partial` bits of the boundary byte (MSB-first layout).
        # A clipped index of num_bits on a byte-aligned vector has
        # full_bytes == len(buffer); the mask is 0 there, so reading the
        # clamped byte is safe.
        buffer = self._byte_buffer
        if buffer.size:
            safe = np.minimum(full_bytes, buffer.size - 1)
            masks = ((0xFF00 >> partial) & 0xFF).astype(np.uint8)
            counts = counts + _POPCOUNT_TABLE[buffer[safe] & masks]
        return counts.astype(np.int64)

    def get_and_rank1_many(self, indices) -> tuple[np.ndarray, np.ndarray]:
        """Fused LOUDS step: ``(bit at i, rank1(i + 1))`` for every index.

        One kernel pass instead of a :meth:`get_many` + :meth:`rank1_many`
        pair — the inner loop of every batched LOUDS-Dense/Sparse
        traversal step.  Every index must be in ``[0, num_bits)`` (no
        clipping: traversals only ever ask about positions they hold).
        """
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if idx.size == 0:
            return np.zeros(0, dtype=bool), np.zeros(0, dtype=np.int64)
        if idx.min() < 0 or idx.max() >= self.num_bits:
            raise IndexError("bit index out of range in get_and_rank1_many")
        return kernels.bitvector_get_rank1(
            self._byte_buffer, self._byte_cumulative, self.num_bits, idx
        )

    def select1(self, rank: int) -> int:
        """Return the position of the ``rank``-th set bit (1-indexed)."""
        if rank <= 0 or rank > self._total_ones:
            raise ValueError(f"select1 rank {rank} out of range (1..{self._total_ones})")
        # Binary search over the cumulative byte popcounts.
        lo, hi = 0, len(self._byte_cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._byte_cumulative[mid] < rank:
                lo = mid + 1
            else:
                hi = mid
        byte_index = lo - 1
        count = int(self._byte_cumulative[byte_index])
        for position in range(byte_index << 3, min(self.num_bits, (byte_index + 1) << 3)):
            if self._bits.get(position):
                count += 1
                if count == rank:
                    return position
        raise AssertionError("select1 directory inconsistent")  # pragma: no cover

    def count_ones(self) -> int:
        """Return the total number of set bits."""
        return self._total_ones

    def to_bytes(self) -> bytes:
        """Serialise the payload bits (MSB-first per byte, no directory)."""
        return self._bits.to_bytes()

    def size_in_bits(self) -> int:
        """Payload size in bits (excludes the rank directory, as in SuRF)."""
        return self.num_bits

    @classmethod
    def from_indices(cls, indices: Iterable[int], num_bits: int) -> "RankSelectBitVector":
        """Build a bit vector of ``num_bits`` bits with the given positions set."""
        array = BitArray(num_bits)
        array.set_many(indices)
        return cls(array)
