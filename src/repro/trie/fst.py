"""The Fast Succinct Trie: LOUDS-Dense top + LOUDS-Sparse bottom.

This is the physical realisation of the succinct layout that
:func:`repro.trie.size_model.fst_size_estimate` models: the top ``cutoff``
levels of a prefix-free byte trie encoded as
:class:`~repro.trie.louds_dense.LoudsDenseTrie` bitmaps, the remaining
levels as :class:`~repro.trie.louds_sparse.LoudsSparseTrie` arrays, with
the cutoff chosen by :func:`repro.trie.size_model.fst_prefix_cutoff` to
minimise the total footprint over all dense prefixes.  ``size_in_bits()``
is therefore *measured* — it is exactly what the stored bitmaps and arrays
charge — and is bounded below by the model's per-level-minimum estimate.

Query semantics match :class:`~repro.trie.node_trie.ByteTrie`: a stored
prefix ``p`` covers the key interval ``[p·00…, p·FF…]``, so point probes
ask "is a stored prefix a prefix of this key?" and range probes ask "does
any stored prefix's interval intersect ``[lo, hi]``?".  Both exploit the
prefix-free-trie invariant that *every node has a leaf descendant*: a
traversal that reaches any edge strictly inside the query interval can
answer True immediately, which makes the range walk two point-like
descents (a lo-tight and a hi-tight walker) plus one interior-label check
per node — each step pure rank arithmetic, and vectorised level-
synchronously across a whole query batch in the ``*_many`` methods.

>>> fst = FastSuccinctTrie.from_prefixes([b"ab", b"ad", b"x"])
>>> fst.match_prefix_of(b"adz"), fst.match_prefix_of(b"az")
(True, False)
>>> fst.range_overlaps(b"ac", b"ae"), fst.range_overlaps(b"b", b"w")
(True, False)
>>> fst.size_in_bits() == fst.size_breakdown()["dense"] + fst.size_breakdown()["sparse"]
True
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro import kernels
from repro.amq.bitarray import BitArray
from repro.trie.louds_dense import LoudsDenseTrie
from repro.trie.louds_sparse import LoudsSparseTrie
from repro.trie.node_trie import ByteTrie
from repro.trie.size_model import fst_prefix_cutoff, fst_size_estimate

__all__ = ["FastSuccinctTrie", "FSTPrefixIndex"]

_FANOUT = 256


def _byte_matrix(values: np.ndarray, num_bytes: int) -> np.ndarray:
    """Render int64 keys as an ``(n, num_bytes)`` big-endian byte matrix."""
    shifts = 8 * np.arange(num_bytes - 1, -1, -1, dtype=np.int64)
    return (values[:, None] >> shifts[None, :]) & np.int64(0xFF)


class FastSuccinctTrie:
    """A prefix-free byte-string set in the physical LOUDS-DS layout.

    Structural invariants:

    * node-levels ``0 .. cutoff - 1`` live in the dense half (level-order
      node ids, root = 0), node-levels ``cutoff ..`` in the sparse half
      (roots = the internal level-``cutoff`` nodes, in level order);
    * an edge from the bottom dense level into an internal child crosses
      halves: its dense child rank ``r`` re-bases to sparse root
      ``r - num_dense_nodes``;
    * leaves are *edges* (label bit set / has-child clear), never nodes, so
      the stored footprint is exactly the model's 512 bits per dense node
      plus 10 bits per sparse edge.
    """

    __slots__ = (
        "height",
        "num_leaves",
        "cutoff",
        "edges_per_level",
        "internal_per_level",
        "_dense",
        "_sparse",
    )

    def __init__(
        self,
        dense: LoudsDenseTrie | None,
        sparse: LoudsSparseTrie | None,
        cutoff: int,
        height: int,
        num_leaves: int,
        edges_per_level: list[int],
        internal_per_level: list[int],
    ):
        """Adopt prebuilt halves; use the ``from_*`` builders instead."""
        self._dense = dense
        self._sparse = sparse
        self.cutoff = cutoff
        self.height = height
        self.num_leaves = num_leaves
        self.edges_per_level = edges_per_level
        self.internal_per_level = internal_per_level

    # ------------------------------------------------------------------ #
    # Builders                                                           #
    # ------------------------------------------------------------------ #

    @classmethod
    def from_prefixes(
        cls, prefixes: Iterable[bytes], cutoff: int | None = None
    ) -> "FastSuccinctTrie":
        """Build from an iterable of byte-string prefixes (any order).

        Input is sorted and deduplicated, then routed through the
        kernel-backed bulk builder — structurally identical to the
        historical ``from_byte_trie(ByteTrie(prefixes))`` path without
        materialising a pointer trie.
        """
        return cls.from_sorted_prefix_bytes(
            sorted(set(bytes(p) for p in prefixes)), cutoff
        )

    @classmethod
    def from_sorted_prefix_bytes(
        cls, prefixes: Sequence[bytes], cutoff: int | None = None
    ) -> "FastSuccinctTrie":
        """Bulk-build from sorted byte-string prefixes, vectorised.

        Input must be in ascending lexicographic order with no duplicates
        (the layout SuRF's vectorised prefix extraction produces); a string
        extending an earlier, shorter one is dropped by the same covering
        rule as :meth:`ByteTrie.from_sorted_prefix_free`.  The whole trie
        shape — per-level edge labels, parent groups and leaf flags — then
        falls out of one :func:`repro.kernels.trie_levels` pass over the
        padded byte matrix, and both LOUDS halves are assembled with array
        arithmetic.  The result is bit-identical to
        ``from_byte_trie(ByteTrie(prefixes))`` on the same input, with no
        pointer trie and no per-node Python walk.
        """
        kept: list[bytes] = []
        previous = b""
        for prefix in prefixes:
            if not prefix:
                raise ValueError("cannot insert an empty prefix")
            if previous and prefix[: len(previous)] == previous:
                continue  # covered by the previously kept (shorter) prefix
            kept.append(prefix)
            previous = prefix
        if not kept:
            return cls(None, None, 0, 0, 0, [], [1])
        n = len(kept)
        lengths = np.fromiter((len(p) for p in kept), dtype=np.int64, count=n)
        height = int(lengths.max())
        offsets = np.concatenate(([0], np.cumsum(lengths)))
        flat = np.frombuffer(b"".join(kept), dtype=np.uint8)
        mat = np.zeros((n, height), dtype=np.uint8)
        rows = np.repeat(np.arange(n, dtype=np.int64), lengths)
        cols = np.arange(flat.size, dtype=np.int64) - np.repeat(
            offsets[:-1], lengths
        )
        mat[rows, cols] = flat
        labels, parents, leaves, edge_counts, group_counts = kernels.trie_levels(
            mat, lengths
        )
        edges = edge_counts.tolist()
        internal = group_counts.tolist()
        if cutoff is None:
            cutoff, _ = fst_prefix_cutoff(edges, internal)
        if not 0 <= cutoff <= height:
            raise ValueError(f"dense cutoff {cutoff} outside [0, {height}]")
        edge_offsets = np.concatenate(([0], np.cumsum(edge_counts)))
        node_offsets = np.concatenate(([0], np.cumsum(group_counts)))
        dense = None
        if cutoff > 0:
            end = int(edge_offsets[cutoff])
            level_of = np.repeat(
                np.arange(cutoff, dtype=np.int64), edge_counts[:cutoff]
            )
            pos = (node_offsets[level_of] + parents[:end]) * _FANOUT + labels[
                :end
            ].astype(np.int64)
            dense = LoudsDenseTrie.from_positions(
                pos, pos[~leaves[:end]], int(node_offsets[cutoff])
            )
        sparse = None
        if cutoff < height:
            start = int(edge_offsets[cutoff])
            flat_labels = labels[start:]
            par = parents[start:]
            level_of = np.repeat(
                np.arange(cutoff, height, dtype=np.int64), edge_counts[cutoff:]
            )
            # First edge of each node: parent ids restart per level, so a
            # node boundary is a parent change *or* a level change.
            first = np.empty(par.size, dtype=bool)
            first[0] = True
            first[1:] = (par[1:] != par[:-1]) | (level_of[1:] != level_of[:-1])
            child_bits = BitArray(flat_labels.size)
            child_bits.set_many(np.nonzero(~leaves[start:])[0])
            louds_bits = BitArray(flat_labels.size)
            louds_bits.set_many(np.nonzero(first)[0])
            sparse = LoudsSparseTrie(
                flat_labels, child_bits, louds_bits, int(group_counts[cutoff])
            )
        return cls(dense, sparse, cutoff, height, n, edges, internal)

    @classmethod
    def from_byte_trie(
        cls, trie: ByteTrie, cutoff: int | None = None
    ) -> "FastSuccinctTrie":
        """Encode a built :class:`ByteTrie`.

        ``cutoff`` (number of dense-encoded top levels) defaults to the
        footprint-minimising prefix cutoff; pass it explicitly to pin a
        layout (0 = all sparse, ``trie.height`` = all dense) in tests.
        """
        edges, internal = trie.level_counts()
        if cutoff is None:
            cutoff, _ = fst_prefix_cutoff(edges, internal)
        if not 0 <= cutoff <= len(edges):
            raise ValueError(f"dense cutoff {cutoff} outside [0, {len(edges)}]")
        levels = trie.level_slices()
        # Dense half: internal nodes of levels [0, cutoff), level order.
        label_positions: list[int] = []
        child_positions: list[int] = []
        node_id = 0
        for level in levels[:cutoff]:
            for node, _ in level:
                if node.is_leaf:
                    continue
                base = node_id * _FANOUT
                for label in node.sorted_labels():
                    label_positions.append(base + label)
                    if not node.children[label].is_leaf:
                        child_positions.append(base + label)
                node_id += 1
        dense = (
            LoudsDenseTrie.from_positions(label_positions, child_positions, node_id)
            if cutoff > 0
            else None
        )
        # Sparse half: internal nodes of levels [cutoff, height), level order.
        labels: list[int] = []
        has_child: list[int] = []
        louds: list[int] = []
        num_roots = 0
        for depth, level in enumerate(levels[cutoff:]):
            for node, _ in level:
                if node.is_leaf or not node.children:
                    continue
                if depth == 0:
                    num_roots += 1
                louds.append(len(labels))
                for label in node.sorted_labels():
                    if not node.children[label].is_leaf:
                        has_child.append(len(labels))
                    labels.append(label)
        sparse = None
        if labels:
            child_bits = BitArray(len(labels))
            child_bits.set_many(has_child)
            louds_bits = BitArray(len(labels))
            louds_bits.set_many(louds)
            sparse = LoudsSparseTrie(
                np.array(labels, dtype=np.uint8), child_bits, louds_bits, num_roots
            )
        return cls(
            dense, sparse, cutoff, trie.height, trie.num_leaves, edges, internal
        )

    @classmethod
    def from_uniform_prefixes(
        cls, prefixes: np.ndarray, num_bytes: int, cutoff: int | None = None
    ) -> "FastSuccinctTrie":
        """Bulk-build from sorted distinct equal-length prefixes, vectorised.

        ``prefixes`` is a sorted distinct int64 array, each value an
        unsigned ``num_bytes``-byte big-endian string (the layout
        ``EncodedKeySet.prefixes`` produces after padding to whole bytes).
        Uniform depth means every node above ``num_bytes`` is internal and
        every bottom edge is a leaf, so each level's label, LOUDS and
        has-child content falls out of a shift + ``np.unique`` per level —
        no pointer trie is materialised.  The result is structurally
        identical to ``from_byte_trie(ByteTrie(...))`` on the same input.
        """
        prefixes = np.asarray(prefixes, dtype=np.int64)
        if num_bytes <= 0:
            raise ValueError("prefix byte length must be positive")
        if prefixes.size == 0:
            return cls(None, None, 0, 0, 0, [], [1])
        # per_level[l] = sorted distinct l-byte prefixes, l in 1..num_bytes.
        per_level: list[np.ndarray] = [None] * (num_bytes + 1)  # type: ignore[list-item]
        per_level[num_bytes] = prefixes
        for depth in range(num_bytes - 1, 0, -1):
            parents = per_level[depth + 1] >> np.int64(8)
            keep = np.empty(parents.size, dtype=bool)
            keep[0] = True
            np.not_equal(parents[1:], parents[:-1], out=keep[1:])
            per_level[depth] = parents[keep]
        edges = [int(per_level[d].size) for d in range(1, num_bytes + 1)]
        internal = [1] + edges[:-1]
        if cutoff is None:
            cutoff, _ = fst_prefix_cutoff(edges, internal)
        if not 0 <= cutoff <= num_bytes:
            raise ValueError(f"dense cutoff {cutoff} outside [0, {num_bytes}]")
        node_offsets = np.concatenate(([0], np.cumsum(internal, dtype=np.int64)))
        dense = None
        if cutoff > 0:
            label_chunks = []
            child_chunks = []
            for depth in range(1, cutoff + 1):
                level = per_level[depth]
                parent_ids = (
                    np.searchsorted(per_level[depth - 1], level >> np.int64(8))
                    if depth > 1
                    else np.zeros(level.size, dtype=np.int64)
                )
                pos = (node_offsets[depth - 1] + parent_ids) * _FANOUT + (
                    level & np.int64(0xFF)
                )
                label_chunks.append(pos)
                if depth < num_bytes:
                    child_chunks.append(pos)
            dense = LoudsDenseTrie.from_positions(
                np.concatenate(label_chunks),
                np.concatenate(child_chunks)
                if child_chunks
                else np.zeros(0, dtype=np.int64),
                int(node_offsets[cutoff]),
            )
        sparse = None
        if cutoff < num_bytes:
            label_chunks = []
            louds_flags = []
            child_flags = []
            for depth in range(cutoff + 1, num_bytes + 1):
                level = per_level[depth]
                label_chunks.append(level & np.int64(0xFF))
                parents = level >> np.int64(8)
                first = np.empty(level.size, dtype=bool)
                first[0] = True
                np.not_equal(parents[1:], parents[:-1], out=first[1:])
                louds_flags.append(first)
                child_flags.append(
                    np.full(level.size, depth < num_bytes, dtype=bool)
                )
            flat_labels = np.concatenate(label_chunks).astype(np.uint8)
            louds_mask = np.concatenate(louds_flags)
            child_mask = np.concatenate(child_flags)
            child_bits = BitArray(flat_labels.size)
            child_bits.set_many(np.nonzero(child_mask)[0])
            louds_bits = BitArray(flat_labels.size)
            louds_bits.set_many(np.nonzero(louds_mask)[0])
            num_roots = internal[cutoff] if cutoff > 0 else 1
            sparse = LoudsSparseTrie(flat_labels, child_bits, louds_bits, num_roots)
        return cls(
            dense, sparse, cutoff, num_bytes, int(prefixes.size), edges, internal
        )

    # ------------------------------------------------------------------ #
    # Level dispatch                                                     #
    # ------------------------------------------------------------------ #

    def _part(self, level: int):
        """Return ``(half, rebase)`` for node-level ``level``.

        ``rebase`` is what to subtract from a returned child rank so it is
        a valid node id *at the next level*: the dense node count on the
        dense→sparse crossing level, 0 everywhere else.
        """
        if level < self.cutoff:
            assert self._dense is not None
            rebase = self._dense.num_nodes if level == self.cutoff - 1 else 0
            return self._dense, rebase
        assert self._sparse is not None
        return self._sparse, 0

    # ------------------------------------------------------------------ #
    # Point probes                                                       #
    # ------------------------------------------------------------------ #

    def match_prefix_of(self, key: bytes) -> bool:
        """Return whether a stored prefix is a prefix of ``key``.

        Same semantics as :meth:`ByteTrie.match_prefix_of` (truthiness):
        keys shorter than every stored prefix on their path are not
        covered.
        """
        if self.num_leaves == 0:
            return False
        node = 0
        for level in range(min(len(key), self.height)):
            half, rebase = self._part(level)
            exists, is_leaf, child = half.probe(node, key[level])
            if not exists:
                return False
            if is_leaf:
                return True
            node = child - rebase
        return False

    def may_contain_many(self, keys: np.ndarray, num_bytes: int) -> np.ndarray:
        """Vectorise :meth:`match_prefix_of` over an int64 key array.

        ``keys`` are unsigned ``num_bytes``-byte big-endian values
        (``num_bytes <= 8``); the walk is level-synchronous, one vectorised
        probe per level over the still-active queries.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if self.num_leaves == 0 or keys.size == 0:
            return np.zeros(keys.size, dtype=bool)
        return self.may_contain_matrix(_byte_matrix(keys, num_bytes))

    def may_contain_matrix(self, mat: np.ndarray) -> np.ndarray:
        """Vectorise :meth:`match_prefix_of` over an ``(n, L)`` byte matrix.

        Each row is one key rendered big-endian, one byte per column — the
        layout byte-string key sets store natively, and what the int64
        entry point expands its words into.  Any key length works: the
        walk runs ``min(L, height)`` levels.
        """
        mat = mat.astype(np.int64, copy=False)  # uint8 would wrap in c+1
        num_bytes = mat.shape[1]
        result = np.zeros(mat.shape[0], dtype=bool)
        if self.num_leaves == 0 or mat.shape[0] == 0:
            return result
        node = np.zeros(mat.shape[0], dtype=np.int64)
        active = np.ones(mat.shape[0], dtype=bool)
        for level in range(min(num_bytes, self.height)):
            idx = np.nonzero(active)[0]
            if idx.size == 0:
                break
            half, rebase = self._part(level)
            exists, is_leaf, child = half.probe_many(node[idx], mat[idx, level])
            result[idx[exists & is_leaf]] = True
            node[idx] = child - rebase
            active[idx] = exists & ~is_leaf
        return result

    # ------------------------------------------------------------------ #
    # Range probes                                                       #
    # ------------------------------------------------------------------ #
    #
    # The walk decomposes [lo, hi] at the first divergent byte d:
    #   * levels < d: both bounds share the byte — a joint, fully tight
    #     descent (leaf edge => the stored prefix covers lo => True);
    #   * level d: any edge label strictly inside (lo[d], hi[d]) subtends a
    #     subtree wholly inside the interval, and every node has a leaf
    #     descendant => True; otherwise spawn a lo-tight and a hi-tight
    #     walker at the divergence node, each consuming its own bound's
    #     byte d (edge-follow only — labels above lo[d] are in range only
    #     below hi[d], which the interior check already covered);
    #   * a lo-tight walker at level l > d: any label > lo[l] => True (the
    #     subtree sits strictly between the bounds), the leaf edge lo[l]
    #     => True (its interval contains lo), else follow lo[l]; hi-tight
    #     mirrors with labels < hi[l].
    # Walkers that outlive the key width sit at an internal node whose path
    # equals the (exhausted) bound — its subtree intersects [lo, hi], so
    # they resolve True, matching ByteTrie's depth >= len(lo) case.

    def range_overlaps(self, lo: bytes, hi: bytes) -> bool:
        """Return whether any stored prefix interval intersects ``[lo, hi]``.

        ``lo`` and ``hi`` must have equal length and satisfy ``lo <= hi``,
        exactly as :meth:`ByteTrie.range_overlaps`.
        """
        if len(lo) != len(hi):
            raise ValueError("range bounds must have the same byte length")
        if lo > hi:
            raise ValueError("empty query range")
        if self.num_leaves == 0:
            return False
        node = 0
        for level in range(min(len(lo), self.height)):
            half, rebase = self._part(level)
            a, b = lo[level], hi[level]
            if a != b:
                if half.any_label_between(node, a + 1, b - 1):
                    return True
                return self._tight_walk(node, level, lo, low_side=True) or (
                    self._tight_walk(node, level, hi, low_side=False)
                )
            exists, is_leaf, child = half.probe(node, a)
            if not exists:
                return False
            if is_leaf:
                return True
            node = child - rebase
        return True  # bounds exhausted at an internal node: subtree overlaps

    def _tight_walk(self, node: int, level: int, bound: bytes, low_side: bool) -> bool:
        """Walk one one-sided-tight bound from the divergence node.

        ``level`` is the divergence level: there the walker only follows
        its bound's edge (the interior check already covered the labels
        between the bounds); from the next level on, any label on the open
        side of the bound byte proves an overlap.
        """
        for depth in range(level, min(len(bound), self.height)):
            half, rebase = self._part(depth)
            c = bound[depth]
            if depth > level:
                if low_side:
                    if half.any_label_between(node, c + 1, _FANOUT - 1):
                        return True
                elif half.any_label_between(node, 0, c - 1):
                    return True
            exists, is_leaf, child = half.probe(node, c)
            if not exists:
                return False
            if is_leaf:
                return True
            node = child - rebase
        return True

    def may_intersect_many(
        self, los: np.ndarray, his: np.ndarray, num_bytes: int
    ) -> np.ndarray:
        """Vectorise :meth:`range_overlaps` over parallel int64 bound arrays.

        Level-synchronous: the joint descent and both spawned tight walkers
        advance one byte per iteration, so each level costs a handful of
        rank/searchsorted batch calls regardless of the query count.
        """
        los = np.asarray(los, dtype=np.int64)
        his = np.asarray(his, dtype=np.int64)
        if self.num_leaves == 0 or los.size == 0:
            return np.zeros(los.size, dtype=bool)
        return self.may_intersect_matrix(
            _byte_matrix(los, num_bytes), _byte_matrix(his, num_bytes)
        )

    def may_intersect_matrix(
        self, lo_m: np.ndarray, hi_m: np.ndarray
    ) -> np.ndarray:
        """Vectorise :meth:`range_overlaps` over parallel byte matrices.

        ``lo_m`` and ``hi_m`` are ``(n, L)`` big-endian byte matrices with
        ``lo <= hi`` rowwise (the :class:`~repro.workloads.ByteQueryBatch`
        layout); the same level-synchronous walk as the int64 entry point.
        """
        lo_m = lo_m.astype(np.int64, copy=False)  # uint8 would wrap in a+1
        hi_m = hi_m.astype(np.int64, copy=False)
        num_bytes = lo_m.shape[1]
        n = lo_m.shape[0]
        result = np.zeros(n, dtype=bool)
        if self.num_leaves == 0 or n == 0:
            return result
        jd_act = np.ones(n, dtype=bool)
        jd_node = np.zeros(n, dtype=np.int64)
        lo_act = np.zeros(n, dtype=bool)
        lo_node = np.zeros(n, dtype=np.int64)
        hi_act = np.zeros(n, dtype=bool)
        hi_node = np.zeros(n, dtype=np.int64)
        # Spawned-this-level walkers skip the open-side check (divergence
        # level: only the bound's own edge is followed).
        fresh = np.zeros(n, dtype=bool)
        for level in range(min(num_bytes, self.height)):
            if not (jd_act.any() or lo_act.any() or hi_act.any()):
                break
            half, rebase = self._part(level)
            idx = np.nonzero(jd_act)[0]
            if idx.size:
                a = lo_m[idx, level]
                b = hi_m[idx, level]
                same = a == b
                if same.any():
                    s = idx[same]
                    exists, is_leaf, child = half.probe_many(jd_node[s], a[same])
                    result[s[exists & is_leaf]] = True
                    jd_node[s] = child - rebase
                    jd_act[s] = exists & ~is_leaf
                diverged = ~same
                if diverged.any():
                    d = idx[diverged]
                    interior = half.any_label_between_many(
                        jd_node[d], a[diverged] + 1, b[diverged] - 1
                    )
                    result[d[interior]] = True
                    jd_act[d] = False
                    spawn = d[~interior]
                    lo_act[spawn] = True
                    lo_node[spawn] = jd_node[spawn]
                    hi_act[spawn] = True
                    hi_node[spawn] = jd_node[spawn]
                    fresh[spawn] = True
            for side_act, side_node, mat, low_side in (
                (lo_act, lo_node, lo_m, True),
                (hi_act, hi_node, hi_m, False),
            ):
                idx = np.nonzero(side_act & ~result)[0]
                side_act[result] = False
                if not idx.size:
                    continue
                c = mat[idx, level]
                if low_side:
                    open_side = half.any_label_between_many(
                        side_node[idx], c + 1, np.full(idx.size, _FANOUT - 1)
                    )
                else:
                    open_side = half.any_label_between_many(
                        side_node[idx], np.zeros(idx.size, dtype=np.int64), c - 1
                    )
                open_side &= ~fresh[idx]
                exists, is_leaf, child = half.probe_many(side_node[idx], c)
                result[idx[open_side | (exists & is_leaf)]] = True
                side_node[idx] = child - rebase
                side_act[idx] = exists & ~is_leaf & ~open_side
            fresh[:] = False
        # Walkers that outlive the bounds sit on overlapping subtrees.
        result |= jd_act | lo_act | hi_act
        return result

    # ------------------------------------------------------------------ #
    # Size accounting                                                    #
    # ------------------------------------------------------------------ #

    def size_in_bits(self) -> int:
        """Return the *measured* footprint: dense bitmaps + sparse arrays."""
        total = self._dense.size_in_bits() if self._dense is not None else 0
        if self._sparse is not None:
            total += self._sparse.size_in_bits()
        return total

    def size_breakdown(self) -> dict[str, int]:
        """Return measured bits per half; values sum to :meth:`size_in_bits`."""
        return {
            "dense": self._dense.size_in_bits() if self._dense is not None else 0,
            "sparse": self._sparse.size_in_bits() if self._sparse is not None else 0,
        }

    def modelled_size_in_bits(self) -> int:
        """Return the size model's per-level-minimum estimate (a lower bound)."""
        return fst_size_estimate(self.edges_per_level, self.internal_per_level)

    def __len__(self) -> int:
        """Return the number of stored prefixes (leaves)."""
        return self.num_leaves

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Return a debugging summary."""
        return (
            f"FastSuccinctTrie(leaves={self.num_leaves}, height={self.height}, "
            f"cutoff={self.cutoff}, bits={self.size_in_bits()})"
        )


class FSTPrefixIndex:
    """A drop-in succinct replacement for ``SortedPrefixIndex``.

    Proteus' trie layer stores every distinct ``length``-bit key prefix.
    This index realises that set as a uniform-depth
    :class:`FastSuccinctTrie` over the prefixes' ``ceil(length / 8)``-byte
    big-endian renderings (MSB-padded, which preserves order and prefix
    structure exactly as :func:`repro.filters.base.key_to_bytes` does for
    keys), and answers the same queries Proteus issues against
    :class:`~repro.trie.sorted_index.SortedPrefixIndex`: point membership,
    key-prefix membership and interval overlap, scalar and batched.

    ``size_in_bits`` is the trie's *measured* LOUDS-DS footprint.  Note the
    charged design-time cost in Algorithm 1 remains the bit-granular
    ``binary_trie_size_estimate`` — the paper's accounting — so the two
    will differ; this class is about realising the layer physically, not
    re-deriving the model.
    """

    __slots__ = ("length", "width", "num_bytes", "_fst")

    def __init__(self, prefixes: Iterable[int], length: int, width: int):
        """Index ``length``-bit prefixes of a ``width``-bit key space."""
        if not 0 < length <= width:
            raise ValueError(f"prefix length {length} outside [1, {width}]")
        self.length = length
        self.width = width
        self.num_bytes = (length + 7) // 8
        if isinstance(prefixes, np.ndarray) and prefixes.dtype.kind in "iu":
            distinct = np.unique(prefixes.astype(np.int64, copy=False))
            if distinct.size and not (
                0 <= int(distinct[0]) and int(distinct[-1]) < (1 << length)
            ):
                raise ValueError(f"prefix outside the {length}-bit space")
            self._fst = FastSuccinctTrie.from_uniform_prefixes(
                distinct, self.num_bytes
            )
        else:
            values = sorted({int(p) for p in prefixes})
            if values and not 0 <= values[0] <= values[-1] < (1 << length):
                raise ValueError(f"prefix outside the {length}-bit space")
            self._fst = FastSuccinctTrie.from_prefixes(
                value.to_bytes(self.num_bytes, "big") for value in values
            )

    @classmethod
    def from_keys(cls, keys: Iterable[int], length: int, width: int) -> "FSTPrefixIndex":
        """Index the ``length``-bit prefixes of ``width``-bit ``keys``."""
        shift = width - length
        if isinstance(keys, np.ndarray) and keys.dtype.kind in "iu":
            return cls(keys >> np.int64(shift), length, width)
        return cls((int(key) >> shift for key in keys), length, width)

    def __len__(self) -> int:
        """Return the number of stored prefixes."""
        return len(self._fst)

    @property
    def is_vector(self) -> bool:
        """Whether the batched query methods are available (word-sized)."""
        return self.num_bytes <= 8

    def contains(self, prefix: int) -> bool:
        """Return whether ``prefix`` (a ``length``-bit value) is stored."""
        return self._fst.match_prefix_of(int(prefix).to_bytes(self.num_bytes, "big"))

    def contains_prefix_of(self, key: int) -> bool:
        """Return whether the ``length``-bit prefix of ``key`` is stored."""
        return self.contains(int(key) >> (self.width - self.length))

    def overlaps(self, lo: int, hi: int) -> bool:
        """Return whether any stored prefix interval intersects ``[lo, hi]``.

        ``lo`` and ``hi`` are full ``width``-bit keys with ``lo <= hi``,
        the :meth:`SortedPrefixIndex.overlaps` contract.
        """
        if lo > hi:
            raise ValueError(f"empty query range [{lo}, {hi}]")
        shift = self.width - self.length
        return self._fst.range_overlaps(
            (int(lo) >> shift).to_bytes(self.num_bytes, "big"),
            (int(hi) >> shift).to_bytes(self.num_bytes, "big"),
        )

    def contains_many(self, prefixes: np.ndarray) -> np.ndarray:
        """Vectorise :meth:`contains` over an int64 array of prefixes."""
        return self._fst.may_contain_many(prefixes, self.num_bytes)

    def overlaps_many(self, los: np.ndarray, his: np.ndarray) -> np.ndarray:
        """Vectorise :meth:`overlaps` over parallel full-key arrays."""
        shift = np.int64(self.width - self.length)
        return self._fst.may_intersect_many(
            los >> shift, his >> shift, self.num_bytes
        )

    def size_in_bits(self) -> int:
        """Return the measured LOUDS-DS footprint of the prefix trie."""
        return self._fst.size_in_bits()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Return a debugging summary."""
        return (
            f"FSTPrefixIndex(n={len(self)}, length={self.length}, "
            f"width={self.width}, bits={self.size_in_bits()})"
        )
