"""Succinct trie substrate.

SuRF encodes its pruned trie as a Fast Succinct Trie (LOUDS-DS): the top
levels use the LOUDS-Dense bitmap encoding and the remaining levels use
LOUDS-Sparse.  Proteus reuses the same machinery for its uniform-depth trie.

The package provides:

* :class:`~repro.trie.bitvector.RankSelectBitVector` — plain bit vector with
  O(1) rank and O(log n) select.
* :class:`~repro.trie.node_trie.ByteTrie` — a pointer-based byte trie used as
  the builder input and as a correctness oracle in tests.
* :class:`~repro.trie.sorted_index.SortedPrefixIndex` — a sorted-array query
  engine for uniform-depth prefix sets; Proteus' trie layer.  The succinct
  layouts are *modelled* (for size accounting), not materialised, in this
  Python reproduction.
* :mod:`~repro.trie.size_model` — the ``trieMem(l)`` estimator from
  Algorithm 1 of the paper plus SuRF's LOUDS-DS size formulas.
* :class:`~repro.trie.louds_sparse.LoudsSparseTrie`,
  :class:`~repro.trie.louds_dense.LoudsDenseTrie` and
  :class:`~repro.trie.fst.FastSuccinctTrie` — the physical succinct
  encodings; not yet implemented.

Re-exports resolve lazily (PEP 562): importing :mod:`repro.trie` never fails
because one encoder is missing; only touching that encoder's name raises.
"""

from importlib import import_module

_LAZY_EXPORTS = {
    "RankSelectBitVector": "repro.trie.bitvector",
    "ByteTrie": "repro.trie.node_trie",
    "SortedPrefixIndex": "repro.trie.sorted_index",
    "fst_size_estimate": "repro.trie.size_model",
    "binary_trie_size_estimate": "repro.trie.size_model",
    "louds_dense_level_bits": "repro.trie.size_model",
    "louds_sparse_level_bits": "repro.trie.size_model",
    # Physical succinct encodings: planned, not yet implemented.  Reserved
    # here so attribute access raises a descriptive ImportError, but kept
    # out of __all__ so `from repro.trie import *` only pulls working names.
    "LoudsSparseTrie": "repro.trie.louds_sparse",
    "LoudsDenseTrie": "repro.trie.louds_dense",
    "FastSuccinctTrie": "repro.trie.fst",
}

_PLANNED = {"LoudsSparseTrie", "LoudsDenseTrie", "FastSuccinctTrie"}

__all__ = [name for name in _LAZY_EXPORTS if name not in _PLANNED]


def __getattr__(name: str):
    try:
        module_name = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    try:
        module = import_module(module_name)
    except ModuleNotFoundError as exc:
        raise ImportError(
            f"{name!r} requires {module_name!r}, which is not implemented yet"
        ) from exc
    value = getattr(module, name)
    globals()[name] = value  # cache so __getattr__ runs once per name
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
