"""Succinct trie substrate.

SuRF encodes its pruned trie as a Fast Succinct Trie (LOUDS-DS): the top
levels use the LOUDS-Dense bitmap encoding and the remaining levels use
LOUDS-Sparse.  Proteus reuses the same machinery for its uniform-depth trie.

The package provides:

* :class:`~repro.trie.bitvector.RankSelectBitVector` — plain bit vector with
  O(1) rank and O(log n) select.
* :class:`~repro.trie.node_trie.ByteTrie` — a pointer-based byte trie used as
  the builder input and as a correctness oracle in tests.
* :class:`~repro.trie.louds_sparse.LoudsSparseTrie` and
  :class:`~repro.trie.louds_dense.LoudsDenseTrie` — the two succinct
  encodings.
* :class:`~repro.trie.fst.FastSuccinctTrie` — the combined LOUDS-DS encoding
  (dense levels on top of sparse levels) with prefix-membership and
  range-overlap queries.
* :class:`~repro.trie.sorted_index.SortedPrefixIndex` — a semantically
  identical query engine backed by a sorted array of stored prefixes, used as
  the fast path for large benchmarks (see DESIGN.md, substitution 6).
* :mod:`~repro.trie.size_model` — the ``trieMem(l)`` estimator from
  Algorithm 1 of the paper.
"""

from repro.trie.bitvector import RankSelectBitVector
from repro.trie.fst import FastSuccinctTrie
from repro.trie.louds_dense import LoudsDenseTrie
from repro.trie.louds_sparse import LoudsSparseTrie
from repro.trie.node_trie import ByteTrie
from repro.trie.sorted_index import SortedPrefixIndex
from repro.trie.size_model import (
    fst_size_estimate,
    louds_dense_level_bits,
    louds_sparse_level_bits,
)

__all__ = [
    "RankSelectBitVector",
    "ByteTrie",
    "LoudsSparseTrie",
    "LoudsDenseTrie",
    "FastSuccinctTrie",
    "SortedPrefixIndex",
    "fst_size_estimate",
    "louds_dense_level_bits",
    "louds_sparse_level_bits",
]
