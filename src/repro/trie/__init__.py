"""Succinct trie substrate.

SuRF encodes its pruned trie as a Fast Succinct Trie (LOUDS-DS): the top
levels use the LOUDS-Dense bitmap encoding and the remaining levels use
LOUDS-Sparse.  Proteus reuses the same machinery for its uniform-depth trie.

The package provides:

* :class:`~repro.trie.bitvector.RankSelectBitVector` — plain bit vector with
  O(1) rank (scalar and batched) and O(log n) select.
* :class:`~repro.trie.node_trie.ByteTrie` — a pointer-based byte trie used as
  the builder input and as a correctness oracle in tests.
* :class:`~repro.trie.louds_dense.LoudsDenseTrie`,
  :class:`~repro.trie.louds_sparse.LoudsSparseTrie` and
  :class:`~repro.trie.fst.FastSuccinctTrie` — the physical succinct
  encodings, navigated purely by rank arithmetic, with measured
  ``size_in_bits``; ``SuRF(..., physical=True)`` stores its pruned trie
  this way.
* :class:`~repro.trie.sorted_index.SortedPrefixIndex` — a sorted-array query
  engine for uniform-depth prefix sets, Proteus' default trie layer — and
  :class:`~repro.trie.fst.FSTPrefixIndex`, its succinct drop-in
  replacement.
* :mod:`~repro.trie.size_model` — the ``trieMem(l)`` estimator from
  Algorithm 1 of the paper plus SuRF's LOUDS-DS size formulas, against
  which the physical encoders' measured sizes are pinned
  (:mod:`repro.evaluation.size_check`).

Re-exports resolve lazily (PEP 562): importing :mod:`repro.trie` never fails
because one submodule is missing; only touching that submodule's names
raises.
"""

from importlib import import_module

_LAZY_EXPORTS = {
    "RankSelectBitVector": "repro.trie.bitvector",
    "ByteTrie": "repro.trie.node_trie",
    "SortedPrefixIndex": "repro.trie.sorted_index",
    "fst_size_estimate": "repro.trie.size_model",
    "fst_prefix_cutoff": "repro.trie.size_model",
    "binary_trie_size_estimate": "repro.trie.size_model",
    "louds_dense_level_bits": "repro.trie.size_model",
    "louds_sparse_level_bits": "repro.trie.size_model",
    "LoudsSparseTrie": "repro.trie.louds_sparse",
    "LoudsDenseTrie": "repro.trie.louds_dense",
    "FastSuccinctTrie": "repro.trie.fst",
    "FSTPrefixIndex": "repro.trie.fst",
}

__all__ = list(_LAZY_EXPORTS)


def __getattr__(name: str):
    """Resolve a lazy re-export (PEP 562)."""
    try:
        module_name = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    try:
        module = import_module(module_name)
    except ModuleNotFoundError as exc:
        raise ImportError(
            f"{name!r} requires {module_name!r}, which is missing or incomplete"
        ) from exc
    value = getattr(module, name)
    globals()[name] = value  # cache so __getattr__ runs once per name
    return value


def __dir__() -> list[str]:
    """Expose the lazy exports to ``dir()``."""
    return sorted(set(globals()) | set(__all__))
