"""Sorted-array prefix index: Proteus' uniform-depth trie layer.

Proteus stores every distinct ``l1``-bit prefix of the key set in a trie of
uniform depth ``l1``.  Semantically that trie answers exactly two queries —
"is this key's ``l1``-prefix stored?" and "does any stored prefix fall inside
a prefix interval?" — both of which a sorted array of prefix integers answers
in ``O(log n)`` with :mod:`bisect`.  This module is that query engine; the
succinct LOUDS encodings are a storage-layout concern and their footprint is
modelled separately in :mod:`repro.trie.size_model` (see DESIGN notes in the
module docstring there).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Sequence

import numpy as np

from repro.keys.bytestr import mask_rows, prefix_item_bytes, rows_as_strings
from repro.keys.keyspace import sorted_distinct_keys
from repro.keys.lcp import MAX_VECTOR_WIDTH


class SortedPrefixIndex:
    """An immutable set of equal-length bit prefixes with interval queries.

    ``length`` is the prefix length in bits and ``width`` the full key width;
    stored prefixes are ``length``-bit unsigned integers.  Word-sized prefix
    sets additionally keep an ``int64`` array view so batch queries resolve
    with a couple of ``searchsorted`` calls.
    """

    __slots__ = ("prefixes", "length", "width", "_arr")

    def __init__(self, prefixes: Iterable[int], length: int, width: int):
        """Index ``length``-bit ``prefixes`` of a ``width``-bit key space."""
        if not 0 < length <= width:
            raise ValueError(f"prefix length {length} outside [1, {width}]")
        self.length = length
        self.width = width
        # A length-bit prefix set is just a key set in a length-bit space.
        self.prefixes: list[int] = sorted_distinct_keys(prefixes, length)
        self._arr: np.ndarray | None = (
            np.array(self.prefixes, dtype=np.int64)
            if length <= MAX_VECTOR_WIDTH
            else None
        )

    @classmethod
    def from_keys(cls, keys: Iterable[int], length: int, width: int) -> "SortedPrefixIndex":
        """Index the ``length``-bit prefixes of ``width``-bit ``keys``."""
        shift = width - length
        return cls((key >> shift for key in keys), length, width)

    def __len__(self) -> int:
        """Return the number of stored prefixes."""
        return len(self.prefixes)

    def contains(self, prefix: int) -> bool:
        """Return whether ``prefix`` (a ``length``-bit value) is stored."""
        i = bisect_left(self.prefixes, prefix)
        return i < len(self.prefixes) and self.prefixes[i] == prefix

    def contains_prefix_of(self, key: int) -> bool:
        """Return whether the ``length``-bit prefix of ``key`` is stored."""
        return self.contains(key >> (self.width - self.length))

    def count_in_range(self, lo_prefix: int, hi_prefix: int) -> int:
        """Return how many stored prefixes fall in ``[lo_prefix, hi_prefix]``."""
        if lo_prefix > hi_prefix:
            return 0
        i = bisect_left(self.prefixes, lo_prefix)
        j = bisect_right(self.prefixes, hi_prefix, lo=i)
        return j - i

    def range_in_range(self, lo_prefix: int, hi_prefix: int) -> Sequence[int]:
        """Return the stored prefixes inside ``[lo_prefix, hi_prefix]`` (sorted)."""
        i = bisect_left(self.prefixes, lo_prefix)
        j = bisect_right(self.prefixes, hi_prefix, lo=i)
        return self.prefixes[i:j]

    def overlaps(self, lo: int, hi: int) -> bool:
        """Return whether any stored prefix interval intersects ``[lo, hi]``.

        ``lo`` and ``hi`` are full ``width``-bit keys with ``lo <= hi``.
        """
        if lo > hi:
            raise ValueError(f"empty query range [{lo}, {hi}]")
        shift = self.width - self.length
        return self.count_in_range(lo >> shift, hi >> shift) > 0

    # ------------------------------------------------------------------ #
    # Batch queries (word-sized prefix sets only)                        #
    # ------------------------------------------------------------------ #

    @property
    def is_vector(self) -> bool:
        """Whether the batch query methods are available."""
        return self._arr is not None

    def contains_many(self, prefixes: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`contains` over an int64 array of prefixes."""
        arr = self._require_arr()
        idx = np.searchsorted(arr, prefixes, side="left")
        found = idx < arr.size
        safe = np.minimum(idx, max(arr.size - 1, 0))
        return found & (arr[safe] == prefixes) if arr.size else np.zeros(
            prefixes.shape, dtype=bool
        )

    def count_in_range_many(
        self, lo_prefixes: np.ndarray, hi_prefixes: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`count_in_range` over parallel prefix arrays."""
        arr = self._require_arr()
        i = np.searchsorted(arr, lo_prefixes, side="left")
        j = np.searchsorted(arr, hi_prefixes, side="right")
        return np.maximum(j - i, 0)

    def overlaps_many(self, los: np.ndarray, his: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`overlaps` over parallel full-key arrays."""
        shift = np.int64(self.width - self.length)
        return self.count_in_range_many(los >> shift, his >> shift) > 0

    def _require_arr(self) -> np.ndarray:
        if self._arr is None:
            raise ValueError(
                f"batch queries need a word-sized prefix length "
                f"(got {self.length} > {MAX_VECTOR_WIDTH})"
            )
        return self._arr

    def size_in_bits(self) -> int:
        """Raw footprint of the sorted array itself (``n * length`` bits).

        Callers that follow the paper's accounting should instead charge
        :func:`repro.trie.size_model.binary_trie_size_estimate`.
        """
        return len(self.prefixes) * self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Return a debugging summary."""
        return (
            f"SortedPrefixIndex(n={len(self.prefixes)}, length={self.length}, "
            f"width={self.width})"
        )


class SortedBytePrefixIndex:
    """Byte-mode twin of :class:`SortedPrefixIndex` over canonical prefix bytes.

    Stores the distinct ``length``-bit prefixes of a byte key set as a sorted
    ``S{nb}`` array of their canonical byte encodings
    (:func:`repro.keys.bytestr.prefix_item_bytes` for scalars,
    :func:`~repro.keys.bytestr.mask_rows` rows in bulk).  ``memcmp`` order on
    those fixed-width strings equals prefix-integer order, so every query is
    a ``searchsorted`` call or two — with no 63-bit width ceiling.  The
    scalar entry points keep :class:`SortedPrefixIndex`'s integer signatures
    (prefixes and keys as padded big-endian ints), so byte-mode Proteus can
    use either engine behind the same calls.
    """

    __slots__ = ("keys", "length", "width")

    def __init__(self, prefix_rows: np.ndarray, length: int, width: int):
        """Index canonical ``length``-bit prefix rows (sorted distinct uint8)."""
        if not 0 < length <= width:
            raise ValueError(f"prefix length {length} outside [1, {width}]")
        self.length = length
        self.width = width
        self.keys = rows_as_strings(prefix_rows)

    def __len__(self) -> int:
        """Return the number of stored prefixes."""
        return int(self.keys.size)

    def _item(self, prefix: int) -> np.bytes_:
        return np.bytes_(prefix_item_bytes(prefix, self.length))

    def contains(self, prefix: int) -> bool:
        """Return whether ``prefix`` (a ``length``-bit value) is stored."""
        item = self._item(prefix)
        i = int(np.searchsorted(self.keys, item, side="left"))
        return i < self.keys.size and self.keys[i] == item

    def contains_prefix_of(self, key: int) -> bool:
        """Return whether the ``length``-bit prefix of ``key`` is stored."""
        return self.contains(key >> (self.width - self.length))

    def overlaps(self, lo: int, hi: int) -> bool:
        """Return whether any stored prefix interval intersects ``[lo, hi]``."""
        if lo > hi:
            raise ValueError(f"empty query range [{lo}, {hi}]")
        shift = self.width - self.length
        i = np.searchsorted(self.keys, self._item(lo >> shift), side="left")
        j = np.searchsorted(self.keys, self._item(hi >> shift), side="right")
        return int(j) > int(i)

    def contains_rows(self, prefix_rows: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`contains` over canonical prefix rows."""
        probes = rows_as_strings(prefix_rows)
        if not self.keys.size:
            return np.zeros(probes.size, dtype=bool)
        idx = np.searchsorted(self.keys, probes, side="left")
        safe = np.minimum(idx, self.keys.size - 1)
        return (idx < self.keys.size) & (self.keys[safe] == probes)

    def overlaps_matrix(self, lo_mat: np.ndarray, hi_mat: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`overlaps` over full-width lo/hi uint8 matrices."""
        lo_s = rows_as_strings(mask_rows(lo_mat, self.length))
        hi_s = rows_as_strings(mask_rows(hi_mat, self.length))
        i = np.searchsorted(self.keys, lo_s, side="left")
        j = np.searchsorted(self.keys, hi_s, side="right")
        return j > i

    def size_in_bits(self) -> int:
        """Raw footprint of the prefix array (``n * length`` bits, as charged
        by :class:`SortedPrefixIndex`)."""
        return len(self) * self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Return a debugging summary."""
        return (
            f"SortedBytePrefixIndex(n={len(self)}, length={self.length}, "
            f"width={self.width})"
        )
