"""Succinct-trie size estimators: the ``trieMem(l)`` term of Algorithm 1.

Algorithm 1 needs the memory footprint of the trie layer for every candidate
depth *before* building anything, so the cost model works from the per-level
node/edge counts alone (which :func:`repro.keys.lcp.unique_prefix_counts`
derives in one pass over the sorted key set).

Two families of estimates are provided:

* :func:`fst_size_estimate` — the SuRF-style Fast Succinct Trie over *byte*
  labels.  The top levels use LOUDS-Dense (two 256-bit bitmaps per node) and
  the remaining levels LOUDS-Sparse (8-bit label + has-child bit + LOUDS bit
  per edge).  The dense/sparse cutoff is chosen greedily per level: a level
  is encoded dense only when that is no larger than its sparse encoding,
  which mirrors SuRF's size-ratio heuristic.
* :func:`binary_trie_size_estimate` — the *bit*-granular uniform-depth trie
  used by Proteus' trie layer, where every node stores a 2-bit child bitmap.
  This is the ``trieMem(l)`` that Algorithm 1 charges against the bit budget.

The Python reference structures in this repository (pointer tries, sorted
prefix arrays) do not themselves realise these footprints; the estimates
define the *size accounting convention*, exactly as the paper's model does.
"""

from __future__ import annotations

from typing import Sequence

#: LOUDS-Sparse cost per edge: 8-bit label + has-child bit + LOUDS bit.
SPARSE_BITS_PER_EDGE = 10

#: LOUDS-Dense cost per node: a 256-bit label bitmap + a 256-bit has-child bitmap.
DENSE_BITS_PER_NODE = 512


def louds_sparse_level_bits(num_edges: int) -> int:
    """Return the LOUDS-Sparse footprint of a level with ``num_edges`` edges."""
    if num_edges < 0:
        raise ValueError("edge count must be non-negative")
    return SPARSE_BITS_PER_EDGE * num_edges


def louds_dense_level_bits(num_nodes: int) -> int:
    """Return the LOUDS-Dense footprint of a level with ``num_nodes`` nodes."""
    if num_nodes < 0:
        raise ValueError("node count must be non-negative")
    return DENSE_BITS_PER_NODE * num_nodes


def fst_size_estimate(
    edges_per_level: Sequence[int], nodes_per_level: Sequence[int] | None = None
) -> int:
    """Estimate the LOUDS-DS footprint of a byte trie in bits.

    ``edges_per_level[i]`` is the number of edges entering level ``i + 1``
    (the layout produced by :meth:`repro.trie.node_trie.ByteTrie.edges_per_level`).
    ``nodes_per_level[i]``, when given, is the number of nodes *emitting*
    those edges (i.e. internal nodes at level ``i``); absent that, each
    level's node count is approximated by the edge count entering it, with
    a single root at level 0.
    """
    total = 0
    for index, edges in enumerate(edges_per_level):
        if nodes_per_level is not None:
            nodes = nodes_per_level[index]
        else:
            nodes = 1 if index == 0 else edges_per_level[index - 1]
        total += min(louds_dense_level_bits(nodes), louds_sparse_level_bits(edges))
    return total


def fst_prefix_cutoff(
    edges_per_level: Sequence[int], nodes_per_level: Sequence[int]
) -> tuple[int, int]:
    """Choose the dense/sparse cutoff for a *physical* Fast Succinct Trie.

    Unlike :func:`fst_size_estimate` — which takes the per-level minimum
    independently and is therefore a lower bound — a realisable LOUDS-DS
    layout must encode a contiguous *prefix* of levels dense and the rest
    sparse (SuRF's D-/S- split).  This helper returns ``(cutoff,
    total_bits)`` where ``cutoff`` is the number of top levels to encode
    dense (0 means all-sparse) minimising the total footprint over all
    prefix cutoffs, and ``total_bits`` is that minimal footprint.

    ``fst_size_estimate(edges, nodes) <= total_bits`` always, with equality
    exactly when the per-level winners already form a dense prefix — which
    they do whenever node counts grow with depth, the common case.

    >>> fst_prefix_cutoff([200, 120], [1, 100])
    (1, 1712)
    >>> fst_prefix_cutoff([], [1])
    (0, 0)
    """
    num_levels = len(edges_per_level)
    sparse_bits = [louds_sparse_level_bits(e) for e in edges_per_level]
    dense_bits = [louds_dense_level_bits(nodes_per_level[i]) for i in range(num_levels)]
    best_cutoff, best_total = 0, sum(sparse_bits)
    total = best_total
    for cutoff in range(1, num_levels + 1):
        total += dense_bits[cutoff - 1] - sparse_bits[cutoff - 1]
        if total < best_total:
            best_cutoff, best_total = cutoff, total
    return best_cutoff, best_total


def binary_trie_size_estimate(prefix_counts: Sequence[int], depth: int) -> int:
    """Return ``trieMem(depth)`` for the bit-granular uniform-depth trie.

    ``prefix_counts[l]`` must be ``|K_l|``, the number of distinct ``l``-bit
    key prefixes (see :func:`repro.keys.lcp.unique_prefix_counts`).  Every
    internal node at depths ``0 .. depth - 1`` stores a 2-bit child bitmap;
    the leaves at ``depth`` need no storage because the depth is uniform.
    ``trieMem(0)`` is 0 — a depth-0 trie accepts everything and stores
    nothing.
    """
    if depth < 0:
        raise ValueError("trie depth must be non-negative")
    if depth >= len(prefix_counts):
        raise ValueError(
            f"depth {depth} exceeds the modelled key width {len(prefix_counts) - 1}"
        )
    return 2 * sum(prefix_counts[level] for level in range(depth))
