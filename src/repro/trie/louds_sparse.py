"""LOUDS-Sparse: the per-edge encoding of the lower trie levels.

Below the dense cutoff, SuRF's Fast Succinct Trie switches to three
parallel per-edge arrays, laid out in level order with each node's edges
sorted by label:

* ``S-Labels`` — one byte per edge: the edge's label;
* ``S-HasChild`` — one bit per edge: set iff the edge leads to an
  *internal* node (clear means a leaf edge — the stored prefix ends here);
* ``S-LOUDS`` — one bit per edge: set iff the edge is the *first* edge of
  its node (the classic LOUDS unary node boundary).

Node numbering: the sparse half has ``num_roots`` subtree roots (the
internal nodes entered from the bottom dense level, in level order),
numbered ``0 .. num_roots - 1``; every other internal node is the target of
exactly one has-child edge, and level-order layout makes the ``r``-th set
``S-HasChild`` bit (1-indexed) point at node ``num_roots + r - 1``.  The
edges of node ``n`` occupy positions ``[select1(S-LOUDS, n + 1),
select1(S-LOUDS, n + 2))``.

For *lookup* the implementation keeps a derived ``node_id * 256 + label``
composite array, which level-order layout and per-node label sorting make
strictly increasing — so edge resolution is one ``searchsorted`` instead of
a select-then-scan, for scalar and batched probes alike.  The composite is
navigation acceleration, like the rank directories, and is excluded from
the charged footprint: 10 bits per edge (8 label + has-child + LOUDS),
matching :func:`repro.trie.size_model.louds_sparse_level_bits`.
"""

from __future__ import annotations

import numpy as np

from repro.amq.bitarray import BitArray
from repro.trie.bitvector import RankSelectBitVector
from repro.trie.size_model import SPARSE_BITS_PER_EDGE

__all__ = ["LoudsSparseTrie"]

_FANOUT = 256


class LoudsSparseTrie:
    """The sparse half of a Fast Succinct Trie: labels/has-child/LOUDS arrays.

    Instances are immutable.  Bit-layout invariants:

    * the three arrays are parallel, one entry per edge, level order;
    * within one node the labels are strictly increasing (so the composite
      ``node * 256 + label`` array is strictly increasing globally);
    * every node has at least one edge, hence exactly one set ``S-LOUDS``
      bit, and ``S-LOUDS[0]`` is set whenever any edge exists;
    * the ``r``-th set ``S-HasChild`` bit points at node
      ``num_roots + r - 1``.
    """

    __slots__ = ("num_roots", "num_nodes", "labels", "_has_child", "_louds", "_comp")

    def __init__(
        self,
        labels: np.ndarray,
        has_child: BitArray,
        louds: BitArray,
        num_roots: int,
    ):
        """Adopt prebuilt parallel edge arrays (see the class invariants).

        ``labels`` is a ``uint8`` array; ``has_child`` and ``louds`` are
        bit arrays of the same length; ``num_roots`` counts the sparse
        subtree roots (node ids ``0 .. num_roots - 1``).
        """
        labels = np.asarray(labels, dtype=np.uint8)
        if len(has_child) != labels.size or len(louds) != labels.size:
            raise ValueError("labels, has-child and LOUDS arrays must be parallel")
        if num_roots < 0:
            raise ValueError("root count must be non-negative")
        if labels.size and not louds.get(0):
            raise ValueError("the first edge must open a node (S-LOUDS[0] set)")
        self.num_roots = num_roots
        self.labels = labels
        self._has_child = RankSelectBitVector(has_child)
        self._louds = RankSelectBitVector(louds)
        self.num_nodes = self._louds.count_ones()
        # node id of each edge: cumulative LOUDS rank, 0-based.
        node_of_edge = self._louds.rank1_many(np.arange(1, labels.size + 1)) - 1
        self._comp = node_of_edge * _FANOUT + labels.astype(np.int64)
        if labels.size > 1 and not (self._comp[1:] > self._comp[:-1]).all():
            raise ValueError("labels must be strictly increasing within each node")

    def __len__(self) -> int:
        """Return the number of encoded edges."""
        return int(self.labels.size)

    def num_edges(self) -> int:
        """Return the number of encoded edges (same as ``len``)."""
        return int(self.labels.size)

    def probe(self, node: int, label: int) -> tuple[bool, bool, int]:
        """Resolve the edge ``label`` out of ``node``: ``(exists, is_leaf, child)``.

        ``child`` is the sparse node id ``num_roots + rank1(S-HasChild,
        pos + 1) - 1``, meaningful only when ``exists and not is_leaf``.
        """
        exists, is_leaf, child = self.probe_many(
            np.array([node], dtype=np.int64), np.array([label], dtype=np.int64)
        )
        return bool(exists[0]), bool(is_leaf[0]), int(child[0])

    def probe_many(
        self, nodes: np.ndarray, labels: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorise :meth:`probe` over parallel node/label int64 arrays.

        Entries whose edge does not exist return garbage in ``is_leaf`` /
        ``child``; callers mask with ``exists``.
        """
        targets = nodes * _FANOUT + labels
        pos = np.searchsorted(self._comp, targets, side="left")
        safe = np.minimum(pos, max(self._comp.size - 1, 0))
        if self._comp.size == 0:
            empty = np.zeros(nodes.shape, dtype=bool)
            return empty, empty, np.zeros(nodes.shape, dtype=np.int64)
        exists = (pos < self._comp.size) & (self._comp[safe] == targets)
        # One fused kernel pass over S-HasChild: the bit at the edge slot
        # decides leaf-ness and rank1(slot + 1) rebases to the child id.
        has_child, rank = self._has_child.get_and_rank1_many(safe)
        child = self.num_roots + rank - 1
        return exists, ~has_child, child

    def any_label_between(self, node: int, lo: int, hi: int) -> bool:
        """Return whether ``node`` has an edge labelled in ``[lo, hi]``.

        Empty intervals (``lo > hi``) are False; bounds are clipped to the
        byte alphabet.
        """
        return bool(
            self.any_label_between_many(
                np.array([node], dtype=np.int64),
                np.array([lo], dtype=np.int64),
                np.array([hi], dtype=np.int64),
            )[0]
        )

    def any_label_between_many(
        self, nodes: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        """Vectorise :meth:`any_label_between` over parallel int64 arrays."""
        valid = lo <= hi
        lo_c = np.clip(lo, 0, _FANOUT - 1)
        hi_c = np.clip(hi, 0, _FANOUT - 1)
        start = np.searchsorted(self._comp, nodes * _FANOUT + lo_c, side="left")
        end = np.searchsorted(self._comp, nodes * _FANOUT + hi_c, side="right")
        return valid & (end > start)

    def size_in_bits(self) -> int:
        """Return the charged footprint: 10 bits per edge.

        8-bit label + has-child bit + LOUDS bit; rank directories and the
        derived composite array are navigation acceleration and excluded,
        per the SuRF size convention.
        """
        return SPARSE_BITS_PER_EDGE * int(self.labels.size)

    def to_bytes(self) -> tuple[bytes, bytes, bytes]:
        """Serialise ``(S-Labels, S-HasChild, S-LOUDS)``."""
        return (
            self.labels.tobytes(),
            self._has_child.to_bytes(),
            self._louds.to_bytes(),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Return a debugging summary."""
        return (
            f"LoudsSparseTrie(nodes={self.num_nodes}, edges={len(self)}, "
            f"roots={self.num_roots})"
        )
