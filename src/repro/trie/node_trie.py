"""Pointer-based byte trie.

This is the builder input for the succinct encodings and the correctness
oracle used by the test suite.  The trie stores a *prefix-free* set of byte
strings (if one inserted string is a prefix of another, only the shorter one
is kept: it covers a superset of the key space, so keeping it preserves the
no-false-negative guarantee of every filter built on top).

Stored strings are interpreted as key-space *prefixes*: a stored prefix ``p``
covers the key interval ``[p·00…00, p·FF…FF]``.  The two queries every range
filter needs are therefore:

* :meth:`ByteTrie.match_prefix_of` — does a stored prefix cover a point key?
* :meth:`ByteTrie.range_overlaps` — does any stored prefix's interval
  intersect a query interval ``[lo, hi]``?
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional


class ByteTrieNode:
    """A single trie node: a sorted mapping from byte labels to children."""

    __slots__ = ("children", "is_leaf")

    def __init__(self):
        """Create a childless non-leaf node."""
        self.children: dict[int, "ByteTrieNode"] = {}
        self.is_leaf = False

    def sorted_labels(self) -> list[int]:
        """Return the child labels in ascending order."""
        return sorted(self.children)


class ByteTrie:
    """A byte trie over a prefix-free set of byte strings."""

    def __init__(self, prefixes: Iterable[bytes] = ()):
        """Build the trie by inserting ``prefixes`` (any order, pruned)."""
        self.root = ByteTrieNode()
        self.num_leaves = 0
        self.height = 0
        for prefix in sorted(set(bytes(p) for p in prefixes)):
            self._insert(prefix)

    @classmethod
    def from_sorted_prefix_free(cls, prefixes: Iterable[bytes]) -> "ByteTrie":
        """Bulk-build from prefixes that are sorted and (nearly) prefix-free.

        The streaming builder behind SuRF's vectorised construction: input
        must be in ascending lexicographic order with no duplicates; a
        string that extends an earlier (shorter) one is dropped, exactly as
        :meth:`insert`'s covering rule would — in sorted order every
        extension of ``p`` follows ``p`` before any string above ``p``'s
        subtree, so comparing against the last *kept* leaf suffices.  The
        result is structurally identical to ``ByteTrie(prefixes)`` at
        O(total bytes) cost with no per-level dict walks.

        When only the succinct encoding is wanted, skip this class
        entirely: :meth:`FastSuccinctTrie.from_sorted_prefix_bytes` derives
        the LOUDS halves from the same sorted input in one
        ``repro.kernels.trie_levels`` pass, without pointer nodes.
        """
        trie = cls()
        stack = [trie.root]  # stack[d] = node at depth d on the current path
        previous = b""
        for prefix in prefixes:
            if not prefix:
                raise ValueError("cannot insert an empty prefix")
            if previous and prefix[: len(previous)] == previous:
                continue  # covered by the previously kept (shorter) leaf
            common = 0
            limit = min(len(previous), len(prefix))
            while common < limit and previous[common] == prefix[common]:
                common += 1
            del stack[common + 1 :]
            for byte in prefix[common:]:
                node = ByteTrieNode()
                stack[-1].children[byte] = node
                stack.append(node)
            stack[-1].is_leaf = True
            trie.num_leaves += 1
            trie.height = max(trie.height, len(prefix))
            previous = prefix
        return trie

    def insert(self, prefix: bytes) -> None:
        """Insert ``prefix``, maintaining the prefix-free invariant.

        Insertion order does not matter: a prefix covered by an existing
        shorter one is dropped, and inserting a prefix *above* existing
        longer ones replaces them (their union is covered by the new leaf).
        """
        self._insert(bytes(prefix))

    def _insert(self, prefix: bytes) -> None:
        if not prefix:
            raise ValueError("cannot insert an empty prefix")
        node = self.root
        if node.is_leaf:
            # The empty-covering root already covers everything.
            return
        for depth, byte in enumerate(prefix):
            if node.is_leaf:
                # A shorter stored prefix already covers this one.
                return
            child = node.children.get(byte)
            if child is None:
                child = ByteTrieNode()
                node.children[byte] = child
            node = child
        if node.is_leaf:
            # Exact duplicate: already stored and counted.
            return
        node.is_leaf = True
        # A leaf must not retain children (prefix-free invariant).  With
        # unsorted input, longer strings may already live below this node;
        # they are now covered by the new leaf and must be pruned *and*
        # un-counted, otherwise num_leaves/height silently go stale.
        removed, pruned_depth = self._prune_subtree(node)
        self.num_leaves += 1 - removed
        if removed and len(prefix) + pruned_depth >= self.height:
            # The pruned subtree may have held the deepest leaf; rescan.
            # Shallower prunes cannot change the height, so bulk covering
            # inserts stay near-linear.
            self.height = max((len(leaf) for leaf in self.leaves()), default=0)
        else:
            self.height = max(self.height, len(prefix))

    @staticmethod
    def _prune_subtree(node: ByteTrieNode) -> tuple[int, int]:
        """Detach ``node``'s descendants.

        Returns ``(leaves_removed, max_depth_removed)`` with the depth
        relative to ``node``.
        """
        removed = 0
        max_depth = 0
        stack = [(child, 1) for child in node.children.values()]
        node.children.clear()
        while stack:
            child, depth = stack.pop()
            max_depth = max(max_depth, depth)
            if child.is_leaf:
                removed += 1
            stack.extend((grandchild, depth + 1) for grandchild in child.children.values())
        return removed, max_depth

    def __len__(self) -> int:
        """Return the number of stored prefixes (leaves)."""
        return self.num_leaves

    def leaves(self) -> Iterator[bytes]:
        """Yield the stored prefixes in lexicographic order."""

        def walk(node: ByteTrieNode, path: bytearray) -> Iterator[bytes]:
            """Yield the leaves below ``node`` in label order."""
            if node.is_leaf:
                yield bytes(path)
                return
            for label in node.sorted_labels():
                path.append(label)
                yield from walk(node.children[label], path)
                path.pop()

        yield from walk(self.root, bytearray())

    def match_prefix_of(self, key: bytes) -> Optional[bytes]:
        """Return the stored prefix covering ``key``, or None.

        A stored prefix ``p`` covers ``key`` when ``p`` is a prefix of
        ``key`` (keys shorter than every stored prefix are not covered).
        """
        node = self.root
        if node.is_leaf:
            return b""
        matched = bytearray()
        for byte in key:
            child = node.children.get(byte)
            if child is None:
                return None
            matched.append(byte)
            if child.is_leaf:
                return bytes(matched)
            node = child
        return None

    def range_overlaps(self, lo: bytes, hi: bytes) -> bool:
        """Return whether any stored prefix interval intersects ``[lo, hi]``.

        ``lo`` and ``hi`` must have equal length (the key-space width in
        bytes) and satisfy ``lo <= hi``.
        """
        if len(lo) != len(hi):
            raise ValueError("range bounds must have the same byte length")
        if lo > hi:
            raise ValueError("empty query range")
        if self.root.is_leaf:
            return True
        return self._overlaps(self.root, 0, lo, hi, True, True)

    def _overlaps(
        self,
        node: ByteTrieNode,
        depth: int,
        lo: bytes,
        hi: bytes,
        tight_lo: bool,
        tight_hi: bool,
    ) -> bool:
        if node.is_leaf:
            return True
        if depth >= len(lo):
            # The stored prefixes are longer than the key width; a node at
            # this depth covers at most a single key value, which is inside
            # the query interval by construction of the traversal.
            return True
        lo_byte = lo[depth] if tight_lo else 0x00
        hi_byte = hi[depth] if tight_hi else 0xFF
        for label in node.sorted_labels():
            if label < lo_byte or label > hi_byte:
                continue
            child = node.children[label]
            if self._overlaps(
                child,
                depth + 1,
                lo,
                hi,
                tight_lo and label == lo_byte,
                tight_hi and label == hi_byte,
            ):
                return True
        return False

    def level_slices(self) -> list[list[tuple[ByteTrieNode, bytes]]]:
        """Return nodes grouped by level (breadth-first), with their paths.

        Level 0 contains the root.  Used by the succinct encoders, which lay
        out nodes in level order.
        """
        levels: list[list[tuple[ByteTrieNode, bytes]]] = [[(self.root, b"")]]
        while True:
            next_level: list[tuple[ByteTrieNode, bytes]] = []
            for node, path in levels[-1]:
                for label in node.sorted_labels():
                    next_level.append((node.children[label], path + bytes([label])))
            if not next_level:
                break
            levels.append(next_level)
        return levels

    def edges_per_level(self) -> list[int]:
        """Return the number of edges entering each level (level 1 onwards)."""
        return self.level_counts()[0]

    def internal_nodes_per_level(self) -> list[int]:
        """Return the number of internal (non-leaf) nodes at each level."""
        return self.level_counts()[1]

    def level_counts(self) -> tuple[list[int], list[int]]:
        """Return ``(edges_per_level, internal_nodes_per_level)`` in one walk.

        Unlike :meth:`level_slices` this never materialises node paths, so
        size estimation stays cheap on large tries.
        """
        edges: list[int] = []
        internal: list[int] = []
        level = [self.root]
        while level:
            internal.append(sum(1 for node in level if not node.is_leaf))
            level = [
                child for node in level for child in node.children.values()
            ]
            if level:
                edges.append(len(level))
        return edges, internal
