"""LOUDS-Dense: the bitmap-per-node encoding of the top trie levels.

SuRF's Fast Succinct Trie encodes its uppermost (branchy) levels with two
256-bit bitmaps per node, laid out in level order:

* ``D-Labels`` — bit ``256 * n + c`` is set iff node ``n`` has an outgoing
  edge labelled byte ``c``;
* ``D-HasChild`` — bit ``256 * n + c`` is set iff that edge leads to an
  *internal* child (a node with its own bitmaps).  A set label bit with a
  clear has-child bit is a **leaf edge**: the stored prefix ends with that
  byte and, in this repository's prefix-free tries, covers its entire
  subtree of the key space.

Navigation is pure rank arithmetic on those bitmaps.  Nodes are numbered in
level order with the root as node 0; because every internal child is marked
by exactly one set ``D-HasChild`` bit and the layout is level order, the
child reached through the edge at bit position ``pos`` is node
``rank1(D-HasChild, pos + 1)``.  (:class:`~repro.trie.fst.FastSuccinctTrie`
re-bases that rank when the edge crosses into the LOUDS-Sparse half.)

The charged footprint is 512 bits per node — the two bitmap payloads,
excluding the rank directories, matching
:func:`repro.trie.size_model.louds_dense_level_bits` and the SuRF paper's
accounting.
"""

from __future__ import annotations

import numpy as np

from repro.amq.bitarray import BitArray
from repro.trie.bitvector import RankSelectBitVector
from repro.trie.size_model import DENSE_BITS_PER_NODE

__all__ = ["LoudsDenseTrie"]

#: Alphabet size: one bit per possible byte label in each per-node bitmap.
FANOUT = 256


class LoudsDenseTrie:
    """The dense half of a Fast Succinct Trie: two 256-bit bitmaps per node.

    Instances are immutable and hold *only* the encoding — which levels of
    the original trie they cover, and how edges leaving the bottom dense
    level connect to the sparse half, is the
    :class:`~repro.trie.fst.FastSuccinctTrie`'s concern.

    Bit-layout invariants:

    * both bitmaps are exactly ``256 * num_nodes`` bits long;
    * a set ``D-HasChild`` bit implies the same ``D-Labels`` bit is set;
    * node ids are dense level-order ranks: the ``j``-th set ``D-HasChild``
      bit (1-indexed, in position order) points at node ``j``.
    """

    __slots__ = ("num_nodes", "_labels", "_has_child")

    def __init__(self, label_bits: BitArray, child_bits: BitArray, num_nodes: int):
        """Adopt prebuilt bitmaps (``256 * num_nodes`` bits each).

        Use :meth:`from_positions` to build from set-bit index arrays; this
        constructor only wraps and validates the invariants above.
        """
        if num_nodes < 0:
            raise ValueError("node count must be non-negative")
        if len(label_bits) != FANOUT * num_nodes or len(child_bits) != FANOUT * num_nodes:
            raise ValueError(
                f"dense bitmaps must hold {FANOUT} bits per node "
                f"({FANOUT * num_nodes} total, got {len(label_bits)}/{len(child_bits)})"
            )
        self.num_nodes = num_nodes
        self._labels = RankSelectBitVector(label_bits)
        self._has_child = RankSelectBitVector(child_bits)

    @classmethod
    def from_positions(
        cls, label_positions, child_positions, num_nodes: int
    ) -> "LoudsDenseTrie":
        """Build from the set-bit positions of the two bitmaps.

        ``label_positions`` / ``child_positions`` are iterables (or numpy
        arrays) of bit indices ``256 * node + label``; ``child_positions``
        must be a subset of ``label_positions``.
        """
        labels = BitArray(FANOUT * num_nodes)
        labels.set_many(label_positions)
        children = BitArray(FANOUT * num_nodes)
        children.set_many(child_positions)
        return cls(labels, children, num_nodes)

    def __len__(self) -> int:
        """Return the number of encoded (internal) nodes."""
        return self.num_nodes

    def num_edges(self) -> int:
        """Return the total number of edges (set ``D-Labels`` bits)."""
        return self._labels.count_ones()

    def probe(self, node: int, label: int) -> tuple[bool, bool, int]:
        """Resolve the edge ``label`` out of ``node``: ``(exists, is_leaf, child)``.

        ``child`` is the level-order rank of the internal child
        (``rank1(D-HasChild, pos + 1)``); it is meaningful only when
        ``exists and not is_leaf``.
        """
        exists, is_leaf, child = self.probe_many(
            np.array([node], dtype=np.int64), np.array([label], dtype=np.int64)
        )
        return bool(exists[0]), bool(is_leaf[0]), int(child[0])

    def probe_many(
        self, nodes: np.ndarray, labels: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorise :meth:`probe` over parallel node/label int64 arrays.

        Entries whose edge does not exist return garbage in ``is_leaf`` /
        ``child``; callers mask with ``exists`` (exactly as the scalar
        protocol's "meaningful only when" clause).
        """
        pos = nodes * FANOUT + labels
        exists = self._labels.get_many(pos)
        # One fused kernel pass over D-HasChild: the bit at pos decides
        # leaf-ness and rank1(pos + 1) is the child id.
        has_child, child = self._has_child.get_and_rank1_many(pos)
        return exists, ~has_child, child

    def any_label_between(self, node: int, lo: int, hi: int) -> bool:
        """Return whether ``node`` has an edge labelled in ``[lo, hi]``.

        An empty interval (``lo > hi``) is False; bounds are clipped to the
        byte alphabet, so callers can pass ``lo = c + 1`` / ``hi = c - 1``
        without boundary checks.
        """
        return bool(
            self.any_label_between_many(
                np.array([node], dtype=np.int64),
                np.array([lo], dtype=np.int64),
                np.array([hi], dtype=np.int64),
            )[0]
        )

    def any_label_between_many(
        self, nodes: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        """Vectorise :meth:`any_label_between` over parallel int64 arrays."""
        valid = lo <= hi
        lo_c = np.clip(lo, 0, FANOUT - 1)
        hi_c = np.clip(hi, 0, FANOUT - 1)
        start = self._labels.rank1_many(nodes * FANOUT + lo_c)
        end = self._labels.rank1_many(nodes * FANOUT + hi_c + 1)
        return valid & (end > start)

    def size_in_bits(self) -> int:
        """Return the charged footprint: 512 bitmap bits per node.

        Rank directories are excluded, per the SuRF size convention shared
        with :meth:`RankSelectBitVector.size_in_bits`.
        """
        return DENSE_BITS_PER_NODE * self.num_nodes

    def to_bytes(self) -> tuple[bytes, bytes]:
        """Serialise the two bitmaps (``D-Labels``, ``D-HasChild``)."""
        return self._labels.to_bytes(), self._has_child.to_bytes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Return a debugging summary."""
        return f"LoudsDenseTrie(nodes={self.num_nodes}, edges={self.num_edges()})"
