"""Reproduction of "Proteus: A Self-Designing Range Filter" (SIGMOD 2022).

The package is organised as a set of small, focused subpackages:

``repro.keys``
    Key encoding: integer and string keys viewed as fixed-width bit strings,
    prefix extraction and longest-common-prefix machinery.
``repro.amq``
    Approximate membership query structures (Bloom filters and friends) and
    the hashing substrate they rely on.
``repro.trie``
    Trie substrate: rank/select bit vectors, the byte-trie oracle, the
    physical LOUDS-Dense/Sparse + Fast Succinct Trie encoders, the
    sorted/succinct prefix indexes behind Proteus' trie layer and the
    succinct size models used by SuRF and Algorithm 1.
``repro.filters``
    Range filters: the common interface, the exact trie oracle, prefix Bloom
    filters, SuRF and Rosetta.
``repro.core``
    The paper's contribution: the CPFPR model, Algorithm 1, and the protean
    range filters (1PBF, 2PBF and Proteus).
``repro.workloads``
    Array-backed workloads: ``EncodedKeySet``/``QueryBatch`` (the shared
    batch representation every vectorised path consumes) and the seeded
    synthetic generators (uniform/zipf/clustered keys, mixed query families).
``repro.api``
    The unified construction API: ``FilterSpec`` (declarative, JSON
    round-trippable build requests), the ``register_family`` registry, the
    ``build_filter(spec, keys, workload)`` protocol and the ``Workload``
    bundle.
``repro.lsm``
    The RocksDB-style LSM tree substrate: leveled geometry, per-SST range
    filters constructed via ``FilterSpec`` from one shared workload sample,
    the simulated I/O cost model (block reads charged only on filter
    positives), and the online write path (``MemTable`` → flush → leveled
    compaction in ``OnlineLSMTree``, with ``FilterLifecycle`` rebuilding
    drifted filters from a rolling query sample).
``repro.evaluation``
    Benchmark harness (``python -m repro.evaluation.bench``), the
    FPR-vs-bits-per-key sweep driver (``python -m repro.evaluation.sweep``)
    that regenerates the paper's core figure family, and the LSM end-to-end
    driver (``python -m repro.evaluation.lsm_bench``) that reproduces the
    Fig. 9-style I/O comparison.
``repro.kernels``
    Compiled hot kernels behind a pluggable backend registry: fused Bloom
    probe/insert, the fused LOUDS get+rank1 traversal step and the bulk
    trie-build level pass, served by the numpy reference backend or an
    optional compiled backend (numba JIT, on-demand C via the system
    compiler) selected with ``REPRO_KERNEL_BACKEND``; every backend is
    pinned bit-identical to numpy.
``repro.obs``
    Dependency-free observability: the ``MetricsRegistry`` of counters /
    gauges / histograms threaded through builds and probes (``metrics=``),
    the ``ProbeTrace`` per-(query, SST) event recorder that reconciles
    exactly against ``ProbeResult``, and the ``DriftMonitor`` comparing
    observed per-batch FPR against the frozen CPFPR prediction.
``repro.serve``
    The serving layer: ``MicroBatcher`` coalescing awaited lookups into
    query batches, key-space sharding over worker processes probing
    shared-memory tree snapshots, and ``ShardedLookupService`` tying
    route → dispatch → gather together (benchmarked by
    ``python -m repro.evaluation.serve_bench``).

The most common entry points are re-exported here.  Re-exports resolve
lazily (PEP 562): a missing or broken subpackage surfaces as an error when
its *name* is touched, never at ``import repro`` time, so one incomplete
corner of the package cannot take down the rest.
"""

from importlib import import_module

_LAZY_EXPORTS = {
    "Proteus": "repro.core.proteus",
    "FastSuccinctTrie": "repro.trie.fst",
    "OnePBF": "repro.core.prf",
    "TwoPBF": "repro.core.prf",
    "CPFPRModel": "repro.core.cpfpr",
    "FilterDesign": "repro.core.design",
    "RangeFilter": "repro.filters.base",
    "TrieOracle": "repro.filters.base",
    "PrefixBloomFilter": "repro.filters.prefix_bloom",
    "PointBloomFilter": "repro.filters.prefix_bloom",
    "Rosetta": "repro.filters.rosetta",
    "SuRF": "repro.filters.surf",
    "KeySpace": "repro.keys.keyspace",
    "IntegerKeySpace": "repro.keys.keyspace",
    "StringKeySpace": "repro.keys.keyspace",
    "EncodedKeySet": "repro.workloads.batch",
    "QueryBatch": "repro.workloads.batch",
    "generate_workload": "repro.workloads.generators",
    "FilterSpec": "repro.api",
    "Workload": "repro.api",
    "build_filter": "repro.api",
    "register_family": "repro.api",
    "registered_families": "repro.api",
    "allocate_sst_budgets": "repro.api",
    "derive_sst_specs": "repro.api",
    "LSMTree": "repro.lsm",
    "SSTable": "repro.lsm",
    "CostModel": "repro.lsm",
    "ProbeResult": "repro.lsm",
    "MemTable": "repro.lsm",
    "OnlineLSMTree": "repro.lsm",
    "FilterLifecycle": "repro.lsm",
    "MetricsRegistry": "repro.obs",
    "DriftMonitor": "repro.obs",
    "ProbeTrace": "repro.obs",
    "MicroBatcher": "repro.serve",
    "ServeError": "repro.serve",
    "ShardedLookupService": "repro.serve",
}

__all__ = list(_LAZY_EXPORTS)

__version__ = "1.10.0"


def __getattr__(name: str):
    try:
        module_name = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    try:
        module = import_module(module_name)
    except ModuleNotFoundError as exc:
        raise ImportError(
            f"{name!r} is exported by {__name__!r} but its home module "
            f"{module_name!r} is missing or incomplete"
        ) from exc
    value = getattr(module, name)
    globals()[name] = value  # cache so __getattr__ runs once per name
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
