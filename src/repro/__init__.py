"""Reproduction of "Proteus: A Self-Designing Range Filter" (SIGMOD 2022).

The package is organised as a set of small, focused subpackages:

``repro.keys``
    Key encoding: integer and string keys viewed as fixed-width bit strings,
    prefix extraction and longest-common-prefix machinery.
``repro.amq``
    Approximate membership query structures (Bloom filters and friends) and
    the hashing substrate they rely on.
``repro.trie``
    Succinct tries: rank/select bit vectors, LOUDS-Dense, LOUDS-Sparse and
    the combined Fast Succinct Trie used by SuRF and Proteus.
``repro.filters``
    Range filters: the common interface, prefix Bloom filters, SuRF, Rosetta
    and an ARF-style adaptive filter.
``repro.core``
    The paper's contribution: the CPFPR model, Algorithm 1, and the protean
    range filters (1PBF, 2PBF and Proteus).
``repro.workloads``
    Synthetic and SOSD-style datasets and YCSB-E-style query workloads.
``repro.lsm``
    A RocksDB-style LSM tree substrate with per-SST range filters and a
    simulated storage cost model.
``repro.evaluation``
    Drivers that regenerate each table and figure of the paper.

The most common entry points are re-exported here.
"""

from repro.core.proteus import Proteus
from repro.core.prf import OnePBF, TwoPBF
from repro.filters.base import RangeFilter
from repro.filters.prefix_bloom import PrefixBloomFilter
from repro.filters.rosetta import Rosetta
from repro.filters.surf import SuRF
from repro.keys.keyspace import IntegerKeySpace, KeySpace, StringKeySpace

__all__ = [
    "Proteus",
    "OnePBF",
    "TwoPBF",
    "RangeFilter",
    "PrefixBloomFilter",
    "Rosetta",
    "SuRF",
    "KeySpace",
    "IntegerKeySpace",
    "StringKeySpace",
]

__version__ = "1.0.0"
