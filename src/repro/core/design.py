"""Algorithm 1: enumerate candidate designs and pick the CPFPR-minimal one.

A *design* fixes the two prefix lengths of a protean filter — trie depth
``l1`` and Bloom prefix length ``l2`` — plus the split of the bit budget
between the layers.  Algorithm 1 walks the design space under a total bit
budget, charging the trie layer its modelled succinct footprint
(:func:`repro.trie.size_model.binary_trie_size_estimate`) and handing the
remainder to the Bloom layer, and keeps the design with the smallest
expected FPR under the CPFPR model.

Two prunes keep the walk cheap, both exact (no optimal design is skipped):

* **feasibility** — ``trieMem(l1)`` is non-decreasing in ``l1``, so the
  ``l1`` loop stops at the first depth that no longer fits the budget;
* **dominance** — every empty query with ``lcp(q, K) >= l2`` is a certain
  false positive regardless of how many bits the Bloom layer gets, so
  ``certain_fp_fraction(l2)`` lower-bounds the design's FPR; candidates
  whose bound already meets the incumbent's FPR are skipped without
  evaluating the model.

A third shortcut is unconditional: an incumbent with expected FPR 0 cannot
be improved, so the walk stops outright (common on workloads whose sample
queries are all far from the key set).

Each candidate evaluation is one call into the CPFPR model, which for
word-sized key spaces is a handful of numpy operations over *all* sample
queries (see :mod:`repro.core.cpfpr`) — the sweep is vectorised over
queries, and these prunes bound how many sweeps run.

Layer depths advance in ``model.design_step``-bit increments: 1 for
integer key spaces, 8 for byte-string ones (where the structures index at
byte granularity, so sub-byte depths add cost without adding resolution).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from repro.core.cpfpr import CPFPRModel
from repro.trie.size_model import binary_trie_size_estimate

#: A Bloom layer narrower than this is pointless; such candidates are skipped.
MIN_BLOOM_BITS = 8

#: Candidate budget splits between the two Bloom layers of a 2PBF.
TWO_PBF_SPLITS = (0.25, 0.5, 0.75)


@dataclass(frozen=True)
class FilterDesign:
    """One point of the protean design space, with its predicted FPR.

    ``trie_depth == 0`` means no trie layer; ``bloom_prefix_len == 0`` means
    no (second) Bloom layer.  For 2PBF designs ``trie_depth``/``trie_bits``
    describe the *first Bloom layer* instead of a trie — ``kind`` says which.
    """

    kind: str  # "proteus" | "1pbf" | "2pbf"
    trie_depth: int
    bloom_prefix_len: int
    trie_bits: int
    bloom_bits: int
    expected_fpr: float

    def total_bits(self) -> int:
        return self.trie_bits + self.bloom_bits


def _emit_design_metrics(
    metrics,
    kind: str,
    best: FilterDesign,
    candidates: int,
    pruned: int,
    start: float,
) -> None:
    """Record one Algorithm 1 search: counts, timing, and the winner's shape."""
    metrics.inc("design.searches")
    metrics.inc("design.candidates", candidates)
    metrics.inc("design.pruned_dominated", pruned)
    metrics.inc(f"design.{kind}.searches")
    metrics.observe("design.seconds", perf_counter() - start)
    metrics.set_gauge("design.last_expected_fpr", best.expected_fpr)
    metrics.set_gauge("design.last_trie_depth", best.trie_depth)
    metrics.set_gauge("design.last_bloom_prefix_len", best.bloom_prefix_len)
    metrics.set_gauge("design.last_total_bits", best.total_bits())


def design_proteus(
    model: CPFPRModel, total_bits: int, metrics=None
) -> FilterDesign:
    """Run Algorithm 1 over the full trie + Bloom design space.

    ``metrics`` optionally records the search: candidate evaluations,
    dominance prunes, wall-clock seconds, and the winning design's shape.
    """
    if total_bits <= 0:
        raise ValueError("the bit budget must be positive")
    start = perf_counter() if metrics is not None else 0.0
    width = model.width
    if not model.num_empty_queries:
        # No empty sample query carries any signal; default to the finest
        # Bloom-only design, which maximises discrimination for point lookups.
        fallback = FilterDesign("proteus", 0, width, 0, total_bits, 0.0)
        if metrics is not None:
            _emit_design_metrics(metrics, "proteus", fallback, 0, 0, start)
        return fallback
    candidates = pruned = 0
    best: FilterDesign | None = None
    step = getattr(model, "design_step", 1)
    for trie_depth in range(0, width + 1, step):
        if best is not None and best.expected_fpr == 0.0:
            break  # nothing can beat a zero-FPR incumbent
        trie_bits = binary_trie_size_estimate(model.prefix_counts, trie_depth)
        if trie_depth > 0 and trie_bits > total_bits:
            break  # trieMem is non-decreasing in the depth: nothing deeper fits
        bloom_budget = total_bits - trie_bits
        # Trie-only candidate (l2 = 0): deterministic, certain_fp_fraction(l1).
        trie_only_fpr = model.certain_fp_fraction(trie_depth)
        candidates += 1
        if best is None or trie_only_fpr < best.expected_fpr:
            best = FilterDesign(
                "proteus", trie_depth, 0, trie_bits, 0, trie_only_fpr
            )
        if bloom_budget < MIN_BLOOM_BITS:
            continue
        for bloom_len in range(trie_depth + step, width + 1, step):
            if best.expected_fpr == 0.0:
                break
            if model.certain_fp_fraction(bloom_len) >= best.expected_fpr:
                pruned += 1
                continue  # dominated: the certain-FP floor alone is no better
            candidates += 1
            fpr = model.proteus_fpr(trie_depth, bloom_len, bloom_budget)
            if fpr < best.expected_fpr:
                best = FilterDesign(
                    "proteus", trie_depth, bloom_len, trie_bits, bloom_budget, fpr
                )
    assert best is not None
    if metrics is not None:
        _emit_design_metrics(metrics, "proteus", best, candidates, pruned, start)
    return best


def design_one_pbf(
    model: CPFPRModel, total_bits: int, metrics=None
) -> FilterDesign:
    """Algorithm 1 restricted to single-Bloom-layer (1PBF) designs."""
    if total_bits <= 0:
        raise ValueError("the bit budget must be positive")
    start = perf_counter() if metrics is not None else 0.0
    width = model.width
    if not model.num_empty_queries:
        fallback = FilterDesign("1pbf", 0, width, 0, total_bits, 0.0)
        if metrics is not None:
            _emit_design_metrics(metrics, "1pbf", fallback, 0, 0, start)
        return fallback
    candidates = pruned = 0
    best: FilterDesign | None = None
    step = getattr(model, "design_step", 1)
    for bloom_len in range(step, width + 1, step):
        if best is not None and model.certain_fp_fraction(bloom_len) >= best.expected_fpr:
            pruned += 1
            continue
        candidates += 1
        fpr = model.one_pbf_fpr(bloom_len, total_bits)
        if best is None or fpr < best.expected_fpr:
            best = FilterDesign("1pbf", 0, bloom_len, 0, total_bits, fpr)
    assert best is not None
    if metrics is not None:
        _emit_design_metrics(metrics, "1pbf", best, candidates, pruned, start)
    return best


def design_two_pbf(
    model: CPFPRModel, total_bits: int, metrics=None
) -> FilterDesign:
    """Algorithm 1 restricted to two-Bloom-layer (2PBF) designs."""
    if total_bits <= 0:
        raise ValueError("the bit budget must be positive")
    start = perf_counter() if metrics is not None else 0.0
    width = model.width
    if not model.num_empty_queries:
        fallback = FilterDesign(
            "2pbf",
            1,
            width,
            max(1, total_bits // 2),
            max(1, total_bits - total_bits // 2),
            0.0,
        )
        if metrics is not None:
            _emit_design_metrics(metrics, "2pbf", fallback, 0, 0, start)
        return fallback
    candidates = pruned = 0
    best: FilterDesign | None = None
    step = getattr(model, "design_step", 1)
    for first_len in range(step, width, step):
        for second_len in range(first_len + step, width + 1, step):
            if (
                best is not None
                and model.certain_fp_fraction(second_len) >= best.expected_fpr
            ):
                pruned += 1
                continue
            for split in TWO_PBF_SPLITS:
                first_bits = int(total_bits * split)
                second_bits = total_bits - first_bits
                if first_bits < MIN_BLOOM_BITS or second_bits < MIN_BLOOM_BITS:
                    continue
                candidates += 1
                fpr = model.two_pbf_fpr(first_len, second_len, first_bits, second_bits)
                if best is None or fpr < best.expected_fpr:
                    best = FilterDesign(
                        "2pbf", first_len, second_len, first_bits, second_bits, fpr
                    )
    if best is None:
        # Budget too small for two layers: fall back to the finest 1PBF shape.
        return design_one_pbf(model, total_bits, metrics)
    if metrics is not None:
        _emit_design_metrics(metrics, "2pbf", best, candidates, pruned, start)
    return best


def design_all(
    model: CPFPRModel, total_bits: int, metrics=None
) -> dict[str, FilterDesign]:
    """Run Algorithm 1 once per design family under the same budget.

    Returns ``{"proteus": ..., "1pbf": ..., "2pbf": ...}`` — the benchmark
    harness and evaluation drivers use this to compare the families' chosen
    designs on one workload without re-deriving the model.
    """
    return {
        "proteus": design_proteus(model, total_bits, metrics),
        "1pbf": design_one_pbf(model, total_bits, metrics),
        "2pbf": design_two_pbf(model, total_bits, metrics),
    }
