"""Protean range filters: 1PBF and 2PBF (Section 4 of the paper).

A *protean* filter is an ordinary prefix-Bloom structure whose prefix
lengths are not fixed a priori but chosen by Algorithm 1 from a sample of
the query workload.  1PBF is a single prefix Bloom layer; 2PBF stacks two
layers with independent seeds — a coarse one that rejects wide misses
cheaply and a fine one that discriminates near-miss queries — and answers
positively only when *both* layers do.  Proteus (in
:mod:`repro.core.proteus`) replaces the coarse Bloom layer with a trie,
completing the design space.

Both classes can be constructed directly from an explicit design point, or
self-designed via :meth:`~OnePBF.build` /`` TwoPBF.build`` which runs the
CPFPR model + Algorithm 1 first.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Sequence

import numpy as np

from repro.core.cpfpr import DEFAULT_MAX_PROBES, CPFPRModel
from repro.core.design import FilterDesign, design_one_pbf, design_two_pbf
from repro.filters.base import RangeFilter, check_spec_params, resolve_spec_inputs
from repro.filters.prefix_bloom import PrefixBloomFilter
from repro.keys.keyspace import IntegerKeySpace, KeySpace, StringKeySpace
from repro.obs.metrics import timed
from repro.workloads.batch import (
    EncodedKeySet,
    QueryBatch,
    as_key_array,
    coerce_keys,
    coerce_query_batch,
)
from repro.workloads.keyset import KeySet


def prepare_workload(
    keys: Sequence,
    sample_queries: Iterable[tuple],
    key_space: KeySpace | None,
    bits_per_key: float,
) -> tuple[KeySpace, EncodedKeySet, QueryBatch, int]:
    """Encode a raw workload into a shared key space, shared by every builder.

    Returns ``(space, key_set, query_batch, total_bits)`` where the bit
    budget is ``bits_per_key`` times the number of *distinct* keys.  A
    :class:`~repro.workloads.keyset.KeySet` / :class:`QueryBatch` passed in
    is adopted as-is (already encoded — ``key_space`` then defaults to an
    integer or string space of the matching width); raw iterables dispatch
    on their first element: byte/str keys become a
    :class:`~repro.workloads.ByteKeySet` under a
    :class:`~repro.keys.keyspace.StringKeySpace`, integers are encoded
    through ``key_space``.
    """
    if isinstance(keys, KeySet):
        if key_space is not None:
            space = key_space
        elif keys.is_bytes:
            space = StringKeySpace((keys.width + 7) // 8)
        else:
            space = IntegerKeySpace(keys.width)
        if space.width != keys.width:
            raise ValueError(
                f"key set width {keys.width} does not match key space width {space.width}"
            )
        key_set = keys
    else:
        concrete = keys if isinstance(keys, np.ndarray) else list(keys)
        sample = concrete[0] if len(concrete) else None
        if isinstance(sample, (bytes, str, np.bytes_)):
            space = (
                key_space
                if key_space is not None
                else StringKeySpace.for_keys(list(concrete))
            )
            key_set = coerce_keys(concrete, space.width)
        else:
            space = key_space if key_space is not None else IntegerKeySpace(64)
            key_set = EncodedKeySet(space.encode_many(concrete), space.width)
    if isinstance(sample_queries, QueryBatch):
        if sample_queries.width != space.width:
            raise ValueError(
                f"query batch width {sample_queries.width} does not match "
                f"key space width {space.width}"
            )
        query_batch = sample_queries
    elif key_set.is_bytes:
        # Raw byte/str pairs become a ByteQueryBatch; padded-integer pairs
        # stay a scalar-contract QueryBatch — coerce_query_batch dispatches.
        query_batch = coerce_query_batch(list(sample_queries), space.width)
    else:
        query_batch = QueryBatch.from_pairs(
            [(space.encode(lo), space.encode(hi)) for lo, hi in sample_queries],
            space.width,
        )
    total_bits = max(1, int(bits_per_key * len(key_set)))
    return space, key_set, query_batch, total_bits


def _build_via_spec(
    cls,
    family: str,
    keys: Sequence,
    sample_queries: Iterable[tuple],
    bits_per_key: float,
    key_space: KeySpace | None,
    max_probes: int,
    seed: int,
):
    """Shared body of the legacy ``build`` classmethods: encode the raw
    workload once and delegate to the registry protocol's ``from_spec``."""
    from repro.api import FilterSpec, Workload  # api sits above core

    warnings.warn(
        f"{cls.__name__}.build is deprecated; construct through "
        f"repro.api.build_filter or {cls.__name__}.from_spec instead",
        DeprecationWarning,
        stacklevel=3,
    )
    space, key_set, query_batch, _ = prepare_workload(
        keys, sample_queries, key_space, bits_per_key
    )
    spec = FilterSpec(family, bits_per_key, {"max_probes": max_probes, "seed": seed})
    return cls.from_spec(spec, key_set, Workload(key_set, query_batch, key_space=space))


class OnePBF(PrefixBloomFilter):
    """A one-layer protean Bloom filter: a PrefixBloomFilter that chose its
    own prefix length."""

    #: The design point Algorithm 1 selected (None when constructed directly).
    design: FilterDesign | None = None

    @classmethod
    def from_spec(cls, spec, keys=None, workload=None, metrics=None) -> "OnePBF":
        """Registry protocol: self-design the prefix length over the workload."""
        if workload is None:
            raise ValueError(
                "the self-designing '1pbf' family needs a workload (query sample)"
            )
        params = check_spec_params(spec, ("max_probes", "seed"))
        max_probes = int(params.get("max_probes", DEFAULT_MAX_PROBES))
        key_set, total_bits = resolve_spec_inputs(spec, keys, workload)
        with timed(metrics, "build.model_seconds"):
            model = CPFPRModel(
                key_set, key_set.width, workload.queries, max_probes, metrics=metrics
            )
        with timed(metrics, "build.design_seconds"):
            design = design_one_pbf(model, total_bits, metrics)
        instance = cls(
            key_set,
            key_set.width,
            design.bloom_prefix_len,
            design.bloom_bits,
            max_probes=max_probes,
            seed=int(params.get("seed", 0)),
        )
        instance.design = design
        instance.key_space = workload.key_space
        return instance

    @classmethod
    def build(
        cls,
        keys: Sequence,
        sample_queries: Iterable[tuple],
        bits_per_key: float = 16.0,
        key_space: KeySpace | None = None,
        max_probes: int = DEFAULT_MAX_PROBES,
        seed: int = 0,
    ) -> "OnePBF":
        """Self-design over a query sample and instantiate the chosen 1PBF.

        A shim over :meth:`from_spec` (see :meth:`Proteus.build
        <repro.core.proteus.Proteus.build>`)."""
        return _build_via_spec(
            cls, "1pbf", keys, sample_queries, bits_per_key, key_space,
            max_probes, seed,
        )

    @property
    def expected_fpr(self) -> float:
        """CPFPR prediction for the chosen design (requires :meth:`build`)."""
        if self.design is None:
            raise AttributeError("expected_fpr is only available on built filters")
        return self.design.expected_fpr

    def may_contain(self, key) -> bool:
        return super().may_contain(self._encode(key))

    def may_intersect(self, lo, hi) -> bool:
        return super().may_intersect(self._encode(lo), self._encode(hi))


class TwoPBF(RangeFilter):
    """A two-layer protean Bloom filter with independent per-layer seeds."""

    design: FilterDesign | None = None

    def __init__(
        self,
        keys: Iterable[int],
        width: int,
        first_prefix_len: int,
        second_prefix_len: int,
        first_bits: int,
        second_bits: int,
        max_probes: int = DEFAULT_MAX_PROBES,
        seed: int = 0,
    ):
        if not 0 < first_prefix_len < second_prefix_len <= width:
            raise ValueError(
                f"need 0 < l1 < l2 <= width, got "
                f"({first_prefix_len}, {second_prefix_len})"
            )
        self.width = width
        key_set = coerce_keys(keys, width)
        self.num_keys = len(key_set)
        self.is_bytes = key_set.is_bytes
        # Both layers share one key set (and its prefix cache); each hashes
        # the representation-correct items — prefix ints or canonical
        # prefix bytes — through its own independent seed.
        self._first = PrefixBloomFilter(
            key_set, width, first_prefix_len, first_bits,
            max_probes=max_probes, seed=seed,
        )
        self._second = PrefixBloomFilter(
            key_set, width, second_prefix_len, second_bits,
            max_probes=max_probes, seed=seed ^ 0x5DEECE66D,
        )

    @classmethod
    def from_spec(cls, spec, keys=None, workload=None, metrics=None) -> "TwoPBF":
        """Registry protocol: self-design both layers over the workload."""
        if workload is None:
            raise ValueError(
                "the self-designing '2pbf' family needs a workload (query sample)"
            )
        params = check_spec_params(spec, ("max_probes", "seed"))
        max_probes = int(params.get("max_probes", DEFAULT_MAX_PROBES))
        key_set, total_bits = resolve_spec_inputs(spec, keys, workload)
        if key_set.width < 2:
            raise ValueError("a 2PBF needs a key space of at least 2 bits")
        with timed(metrics, "build.model_seconds"):
            model = CPFPRModel(
                key_set, key_set.width, workload.queries, max_probes, metrics=metrics
            )
        with timed(metrics, "build.design_seconds"):
            design = design_two_pbf(model, total_bits, metrics)
        if design.kind == "1pbf":
            # Budget admitted only one layer: widen it into a degenerate 2PBF
            # by splitting off a minimal coarse layer just above the root.
            # Each layer needs at least one bit, and the CPFPR prediction is
            # re-evaluated at the synthesized design point — the 1PBF figure
            # describes a different structure.
            second_len = min(key_set.width, max(design.bloom_prefix_len, 2))
            first_len = second_len // 2
            first_bits = max(1, design.bloom_bits // 2)
            second_bits = max(1, design.bloom_bits - design.bloom_bits // 2)
            design = FilterDesign(
                "2pbf",
                first_len,
                second_len,
                first_bits,
                second_bits,
                model.two_pbf_fpr(first_len, second_len, first_bits, second_bits),
            )
        instance = cls(
            key_set,
            key_set.width,
            design.trie_depth,
            design.bloom_prefix_len,
            design.trie_bits,
            design.bloom_bits,
            max_probes=max_probes,
            seed=int(params.get("seed", 0)),
        )
        instance.design = design
        instance.key_space = workload.key_space
        return instance

    @classmethod
    def build(
        cls,
        keys: Sequence,
        sample_queries: Iterable[tuple],
        bits_per_key: float = 16.0,
        key_space: KeySpace | None = None,
        max_probes: int = DEFAULT_MAX_PROBES,
        seed: int = 0,
    ) -> "TwoPBF":
        """Self-design over a query sample and instantiate the chosen 2PBF.

        A shim over :meth:`from_spec` (see :meth:`Proteus.build
        <repro.core.proteus.Proteus.build>`)."""
        return _build_via_spec(
            cls, "2pbf", keys, sample_queries, bits_per_key, key_space,
            max_probes, seed,
        )

    @property
    def expected_fpr(self) -> float:
        """CPFPR prediction for the chosen design (requires :meth:`build`)."""
        if self.design is None:
            raise AttributeError("expected_fpr is only available on built filters")
        return self.design.expected_fpr

    def may_contain(self, key) -> bool:
        encoded = self._encode(key)
        return self._first.may_contain(encoded) and self._second.may_contain(encoded)

    def may_intersect(self, lo, hi) -> bool:
        lo, hi = self._encode(lo), self._encode(hi)
        self._check_range(lo, hi)
        return self._first.may_intersect(lo, hi) and self._second.may_intersect(lo, hi)

    def may_contain_many(self, keys) -> np.ndarray:
        if self.is_bytes:
            # Keep the byte representation: each layer resolves its own
            # probe matrix (as_key_array would detour through padded ints).
            if not isinstance(keys, (KeySet, np.ndarray)):
                keys = list(keys)  # materialise once: both layers consume it
            return self._first.may_contain_many(keys) & self._second.may_contain_many(
                keys
            )
        arr = as_key_array(keys)  # materialise once: both layers consume it
        return self._first.may_contain_many(arr) & self._second.may_contain_many(arr)

    def may_intersect_many(self, queries) -> np.ndarray:
        batch = coerce_query_batch(queries, self.width)
        return self._first.may_intersect_many(batch) & self._second.may_intersect_many(
            batch
        )

    def size_in_bits(self) -> int:
        return self._first.size_in_bits() + self._second.size_in_bits()

    def size_breakdown(self) -> dict[str, int]:
        """Per-layer charged footprint: the coarse and fine Bloom layers."""
        return {
            "first": self._first.size_in_bits(),
            "second": self._second.size_in_bits(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TwoPBF(l1={self._first.prefix_len}, l2={self._second.prefix_len}, "
            f"keys={self.num_keys})"
        )
