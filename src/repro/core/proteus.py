"""Proteus: the self-designing trie + Bloom hybrid range filter.

The paper's headline structure.  :meth:`Proteus.build` samples the query
workload, evaluates the CPFPR model over the full (trie depth ``l1``, Bloom
prefix length ``l2``) design space under a bits-per-key budget (Algorithm 1),
and instantiates the winning hybrid:

* a uniform-depth trie holding every distinct ``l1``-bit key prefix — by
  default a :class:`~repro.trie.sorted_index.SortedPrefixIndex` query
  engine, swappable for the physical succinct
  :class:`~repro.trie.fst.FSTPrefixIndex` via ``trie_impl="fst"``; either
  way the footprint is *charged* at the modelled succinct size
  (:func:`repro.trie.size_model.binary_trie_size_estimate`), the quantity
  Algorithm 1 optimised, while the FST realisation also exposes its
  measured byte-granular LOUDS-DS bits through
  :meth:`Proteus.trie_layer_measured_bits` — and
* a Bloom filter over the distinct ``l2``-bit key prefixes, holding the rest
  of the budget.

A range query first consults the trie; only the ``l2``-prefixes of the query
interval that extend a *stored* ``l1``-prefix are probed in the Bloom filter
(prefixes under an absent ``l1``-prefix cannot contain a key, so skipping
them is exact).  Queries spanning more than ``max_probes`` ``l2``-prefixes
return a conservative ``True``.  Every positive produced this way either
reflects a real key prefix or a Bloom/trie over-approximation — never a
dropped key — so the filter has **zero false negatives** by construction.

Byte-string key sets (:class:`~repro.workloads.ByteKeySet`) build the same
two layers over canonical prefix *bytes*: the trie becomes a
:class:`~repro.trie.sorted_index.SortedBytePrefixIndex` (so
``trie_impl="sorted"`` only) and the Bloom layer hashes
:func:`~repro.keys.bytestr.prefix_item_bytes` items.  One semantic
difference: the byte range path probes every covered ``l2``-slot once the
trie gate passes, with no per-slot ``l1`` pruning — the CPFPR byte
evaluator charges precisely that probe set, so the model still predicts
the filter it designs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.amq.bloom import BloomFilter
from repro.core.cpfpr import DEFAULT_MAX_PROBES, CPFPRModel
from repro.core.design import FilterDesign, design_proteus
from repro.core.prf import _build_via_spec
from repro.filters.base import (
    RangeFilter,
    check_spec_params,
    ragged_ranges,
    resolve_spec_inputs,
)
from repro.keys.bytestr import (
    byte_slot_bounds,
    expand_slot_rows,
    mask_rows,
    prefix_item_bytes,
    scalar_slot_clamped,
)
from repro.keys.keyspace import KeySpace
from repro.keys.lcp import MAX_VECTOR_WIDTH
from repro.obs.metrics import timed
from repro.trie.fst import FSTPrefixIndex
from repro.trie.sorted_index import SortedBytePrefixIndex, SortedPrefixIndex
from repro.workloads.batch import (
    as_key_array,
    coerce_keys,
    coerce_query_batch,
    slot_bounds,
)
from repro.workloads.bytekeys import ByteQueryBatch, byte_probe_matrix


class Proteus(RangeFilter):
    """The self-designing range filter (trie layer + Bloom layer)."""

    #: The trie-layer implementations ``trie_impl`` can name: the sorted
    #: prefix array (query engine, modelled footprint) or the physical
    #: succinct FST (measured footprint, same answers).
    TRIE_IMPLS = {"sorted": SortedPrefixIndex, "fst": FSTPrefixIndex}

    def __init__(
        self,
        keys: Iterable[int],
        width: int,
        design: FilterDesign,
        max_probes: int = DEFAULT_MAX_PROBES,
        seed: int = 0,
        trie_impl: str = "sorted",
    ):
        if design.bloom_prefix_len and design.trie_depth >= design.bloom_prefix_len:
            raise ValueError(
                f"trie depth {design.trie_depth} must be shorter than the Bloom "
                f"prefix length {design.bloom_prefix_len}"
            )
        if max_probes < 1:
            raise ValueError("max_probes must be at least 1")
        if trie_impl not in self.TRIE_IMPLS:
            raise ValueError(
                f"unknown trie_impl {trie_impl!r}; "
                f"choose from {sorted(self.TRIE_IMPLS)}"
            )
        self.width = width
        self.design = design
        self.max_probes = max_probes
        self.trie_impl = trie_impl
        key_set = coerce_keys(keys, width)
        self.num_keys = len(key_set)
        self.is_bytes = key_set.is_bytes
        if self.is_bytes and trie_impl != "sorted":
            raise ValueError(
                "byte-string key sets support trie_impl='sorted' only"
            )
        l1, l2 = design.trie_depth, design.bloom_prefix_len
        self._trie: SortedPrefixIndex | SortedBytePrefixIndex | FSTPrefixIndex | None
        self._trie = None
        self._bloom: BloomFilter | None = None
        if self.is_bytes:
            if l1 > 0:
                self._trie = SortedBytePrefixIndex(key_set.prefixes(l1), l1, width)
            if l2 > 0:
                rows = key_set.prefixes(l2)
                self._bloom = BloomFilter(
                    max(1, design.bloom_bits), max(1, int(rows.shape[0])), seed=seed
                )
                self._bloom.add_bytes_rows(rows)
            return
        distinct_keys = key_set.as_list()
        if l1 > 0:
            self._trie = self.TRIE_IMPLS[trie_impl].from_keys(distinct_keys, l1, width)
        if l2 > 0:
            prefixes = key_set.prefixes(l2)
            self._bloom = BloomFilter(
                max(1, design.bloom_bits), max(1, int(prefixes.size)), seed=seed
            )
            self._bloom.add_many(prefixes)

    @classmethod
    def from_spec(cls, spec, keys=None, workload=None, metrics=None) -> "Proteus":
        """Registry protocol: CPFPR model → Algorithm 1 → instantiate the winner.

        A self-designing family: the workload's query sample *is* the input
        Algorithm 1 optimises against, so ``workload`` is required.  ``keys``
        defaults to the workload's key set; passing a subset (an LSM
        per-SST slice, say) designs against the shared sample but builds
        over just those keys.  ``metrics`` optionally records the build's
        phases (model derivation, design search, instantiation) and the
        final size/budget figures.
        """
        if workload is None:
            raise ValueError(
                "the self-designing 'proteus' family needs a workload (query sample)"
            )
        params = check_spec_params(spec, ("max_probes", "seed", "trie_impl"))
        max_probes = int(params.get("max_probes", DEFAULT_MAX_PROBES))
        key_set, total_bits = resolve_spec_inputs(spec, keys, workload)
        with timed(metrics, "build.model_seconds"):
            model = CPFPRModel(
                key_set, key_set.width, workload.queries, max_probes, metrics=metrics
            )
        with timed(metrics, "build.design_seconds"):
            design = design_proteus(model, total_bits, metrics)
        with timed(metrics, "build.instantiate_seconds"):
            instance = cls(
                key_set, key_set.width, design,
                max_probes=max_probes, seed=int(params.get("seed", 0)),
                trie_impl=str(params.get("trie_impl", "sorted")),
            )
        instance.key_space = workload.key_space
        return instance

    @classmethod
    def build(
        cls,
        keys: Sequence,
        sample_queries: Iterable[tuple],
        bits_per_key: float = 16.0,
        key_space: KeySpace | None = None,
        max_probes: int = DEFAULT_MAX_PROBES,
        seed: int = 0,
    ) -> "Proteus":
        """Sample queries → CPFPR model → Algorithm 1 → instantiate the winner.

        ``keys`` are raw keys for ``key_space`` (defaults to 64-bit
        integers); ``sample_queries`` is an iterable of inclusive ``(lo,
        hi)`` pairs in the same raw domain — use ``(k, k)`` for a point
        query.  ``bits_per_key`` bounds the total filter footprint.

        A shim over :meth:`from_spec`: the raw workload is encoded once and
        handed to the registry protocol, so both entry points share one
        build path.
        """
        return _build_via_spec(
            cls, "proteus", keys, sample_queries, bits_per_key, key_space,
            max_probes, seed,
        )

    @property
    def expected_fpr(self) -> float:
        """The CPFPR model's prediction for the instantiated design."""
        return self.design.expected_fpr

    def may_contain(self, key) -> bool:
        return self._may_contain_encoded(self._encode(key))

    def _may_contain_encoded(self, encoded: int) -> bool:
        if self.num_keys == 0:
            return False
        if self._trie is not None and not self._trie.contains_prefix_of(encoded):
            return False
        if self._bloom is not None:
            l2 = self.design.bloom_prefix_len
            prefix = encoded >> (self.width - l2)
            if self.is_bytes:
                return self._bloom.contains_bytes(prefix_item_bytes(prefix, l2))
            return self._bloom.contains(prefix)
        return True

    def may_intersect(self, lo, hi) -> bool:
        lo, hi = self._encode(lo), self._encode(hi)
        self._check_range(lo, hi)
        return self._may_intersect_encoded(lo, hi)

    def _may_intersect_encoded(self, lo: int, hi: int) -> bool:
        if self.num_keys == 0:
            return False
        trie = self._trie
        if trie is not None and not trie.overlaps(lo, hi):
            return False
        bloom = self._bloom
        if bloom is None:
            return True
        l1, l2 = self.design.trie_depth, self.design.bloom_prefix_len
        shift = self.width - l2
        plo, phi = lo >> shift, hi >> shift
        if self.is_bytes:
            # Byte mode probes every covered slot once the trie gate passes —
            # no per-slot l1 pruning — exactly the behaviour the CPFPR byte
            # evaluator charges, so the model predicts this filter, not the
            # integer one.
            if scalar_slot_clamped(plo, phi, l2, self.max_probes):
                return True  # probe clamp: conservative positive
            return any(
                bloom.contains_bytes(prefix_item_bytes(prefix, l2))
                for prefix in range(plo, phi + 1)
            )
        if phi - plo + 1 > self.max_probes:
            return True  # probe clamp: conservative positive (modelled as such)
        gap = l2 - l1
        for prefix in range(plo, phi + 1):
            if trie is not None and not trie.contains(prefix >> gap):
                continue  # no key below this l1-prefix: skipping is exact
            if bloom.contains(prefix):
                return True
        return False

    def may_contain_many(self, keys) -> np.ndarray:
        """Batched :meth:`may_contain` over *encoded* keys."""
        if self.is_bytes:
            mat = byte_probe_matrix(keys, self.width)
            if mat is not None:
                if self.num_keys == 0:
                    return np.zeros(mat.shape[0], dtype=bool)
                out = np.ones(mat.shape[0], dtype=bool)
                if self._trie is not None:
                    out &= self._trie.contains_rows(
                        mask_rows(mat, self.design.trie_depth)
                    )
                if self._bloom is not None:
                    out &= self._bloom.contains_bytes_rows(
                        mask_rows(mat, self.design.bloom_prefix_len)
                    )
                return out
            # Non-matrix probes against a byte filter take the scalar loop:
            # the int64 fast path below hashes integer items, not prefix
            # bytes, and would disagree with the byte-built Bloom layer.
            arr = as_key_array(keys)
            return np.fromiter(
                (self._may_contain_encoded(key) for key in arr.tolist()),
                dtype=bool,
                count=arr.size,
            )
        arr = as_key_array(keys)
        if arr.dtype == object or self.width > MAX_VECTOR_WIDTH:
            return np.fromiter(
                (self._may_contain_encoded(key) for key in arr.tolist()),
                dtype=bool,
                count=arr.size,
            )
        if self.num_keys == 0:
            return np.zeros(arr.size, dtype=bool)
        out = np.ones(arr.size, dtype=bool)
        if self._trie is not None:
            shift1 = np.int64(self.width - self.design.trie_depth)
            out &= self._trie.contains_many(arr >> shift1)
        if self._bloom is not None:
            shift2 = np.int64(self.width - self.design.bloom_prefix_len)
            out &= self._bloom.contains_many(arr >> shift2)
        return out

    def _may_intersect_bytes(self, batch: ByteQueryBatch) -> np.ndarray:
        """Byte-mode batch ranges: trie gate, then slot-window Bloom probes.

        The gate is interval-level only; every covered ``l2``-slot of a gated
        unclamped query is probed (no per-slot ``l1`` pruning), mirroring the
        scalar byte path and the CPFPR byte evaluator's probe accounting.
        """
        n = len(batch)
        if self.num_keys == 0:
            return np.zeros(n, dtype=bool)
        lo_m, hi_m = batch.lo_matrix, batch.hi_matrix
        gate = (
            self._trie.overlaps_matrix(lo_m, hi_m)
            if self._trie is not None
            else np.ones(n, dtype=bool)
        )
        if self._bloom is None:
            return gate
        l2 = self.design.bloom_prefix_len
        plo_rows, base, span, clamped = byte_slot_bounds(
            lo_m, hi_m, l2, self.max_probes
        )
        out = gate & clamped  # clamped gated queries: conservative positive
        rows = np.flatnonzero(gate & ~clamped)
        if rows.size:
            slot_rows, offsets = expand_slot_rows(plo_rows, base, span, l2, rows)
            hits = self._bloom.contains_bytes_rows(slot_rows)
            out[rows] = np.logical_or.reduceat(hits, offsets[:-1])
        return out

    def may_intersect_many(self, queries) -> np.ndarray:
        """Batched :meth:`may_intersect` over *encoded* range queries."""
        batch = coerce_query_batch(queries, self.width)
        if self.is_bytes:
            if isinstance(batch, ByteQueryBatch):
                return self._may_intersect_bytes(batch)
            return np.fromiter(
                (self._may_intersect_encoded(lo, hi) for lo, hi in batch.pairs()),
                dtype=bool,
                count=len(batch),
            )
        if not batch.is_vector:
            return np.fromiter(
                (self._may_intersect_encoded(lo, hi) for lo, hi in batch.pairs()),
                dtype=bool,
                count=len(batch),
            )
        if self.num_keys == 0:
            return np.zeros(len(batch), dtype=bool)
        trie, bloom = self._trie, self._bloom
        gate = (
            trie.overlaps_many(batch.los, batch.his)
            if trie is not None
            else np.ones(len(batch), dtype=bool)
        )
        if bloom is None:
            return gate
        l1, l2 = self.design.trie_depth, self.design.bloom_prefix_len
        plo, phi, clamped = slot_bounds(
            batch.los, batch.his, self.width, l2, self.max_probes
        )
        out = gate & clamped  # clamped gated queries: conservative positive
        todo = gate & ~clamped
        if todo.any():
            flat, seg_starts = ragged_ranges(plo[todo], phi[todo] - plo[todo] + 1)
            hits = bloom.contains_many(flat)
            if trie is not None:
                # Only l2-slots extending a stored l1-prefix count; a Bloom
                # positive on an uncovered slot is discarded, exactly as the
                # scalar path never probes it.
                hits &= trie.contains_many(flat >> np.int64(l2 - l1))
            out[todo] = np.logical_or.reduceat(hits, seg_starts)
        return out

    def trie_layer_measured_bits(self) -> int | None:
        """Return the trie layer's own ``size_in_bits`` (None without a trie).

        For ``trie_impl="fst"`` this is the measured LOUDS-DS footprint of
        the realised byte-granular trie; for the sorted-array engine it is
        the raw array bits.  Distinct from ``design.trie_bits``, the
        bit-granular modelled cost the budget charged.
        """
        return self._trie.size_in_bits() if self._trie is not None else None

    def size_in_bits(self) -> int:
        """Modelled trie footprint + actual Bloom bits (paper accounting)."""
        total = self.design.trie_bits if self._trie is not None else 0
        if self._bloom is not None:
            total += self._bloom.size_in_bits()
        return total

    def size_breakdown(self) -> dict[str, int]:
        """Per-layer charged footprint: modelled trie bits + actual Bloom bits."""
        breakdown = {}
        if self._trie is not None:
            breakdown["trie"] = self.design.trie_bits
        if self._bloom is not None:
            breakdown["bloom"] = self._bloom.size_in_bits()
        return breakdown or {"total": 0}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Proteus(l1={self.design.trie_depth}, l2={self.design.bloom_prefix_len}, "
            f"keys={self.num_keys}, bits={self.size_in_bits()}, "
            f"expected_fpr={self.design.expected_fpr:.4g})"
        )
