"""The Contextual Prefix FPR (CPFPR) model — Sections 3-4 of the paper.

The model predicts the expected false positive rate of a candidate filter
design *before building it*, from two inputs it derives once:

* the key set, reduced to its prefix-count profile ``|K_l|`` (distinct
  ``l``-bit prefixes, one sorted pass — :func:`repro.keys.lcp.unique_prefix_counts`)
  and, lazily, the sorted set of ``l``-prefixes for trie-gated designs;
* a sample of the query workload, reduced per *empty* query ``q = [lo, hi]``
  to the triple ``(lo, hi, L(q))`` where ``L(q) = lcp(q, K)`` is the longest
  prefix the query shares with any key.

The central observation ("contextual" in CPFPR) is that ``L(q)`` makes a
layer's behaviour on an empty query deterministic or probabilistic:

* a trie of depth ``l1`` accepts ``q`` **iff** ``L(q) >= l1`` — equivalently
  iff a stored ``l1``-prefix falls inside ``Q_{l1}(q)``;
* a Bloom filter over ``l2``-prefixes is *certainly* positive when
  ``L(q) >= l2`` (a truly stored prefix is probed), and otherwise each of
  the ``n`` probed absent prefixes collides independently with probability
  ``p = bloom_fpr(m, |K_{l2}|)``, giving ``1 - (1 - p)^n``.

The filters clamp range probes at ``max_probes`` (returning a conservative
positive beyond it); the model mirrors the clamp exactly, which is what lets
the model-vs-empirical agreement test hold to within small constants.

FPR here is defined over the *empty* sample queries only — non-empty queries
are true positives for every zero-false-negative filter and carry no design
signal.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable

from repro.amq.bloom import bloom_fpr
from repro.filters.prefix_bloom import DEFAULT_MAX_PROBES
from repro.keys.keyspace import sorted_distinct_keys
from repro.keys.lcp import query_set_lcp, unique_prefix_counts

__all__ = ["CPFPRModel", "DEFAULT_MAX_PROBES"]


class CPFPRModel:
    """Expected-FPR evaluator for trie/Bloom prefix-filter designs."""

    def __init__(
        self,
        keys: Iterable[int],
        width: int,
        queries: Iterable[tuple[int, int]],
        max_probes: int = DEFAULT_MAX_PROBES,
    ):
        if width <= 0:
            raise ValueError("key width must be positive")
        if max_probes < 1:
            raise ValueError("max_probes must be at least 1")
        self.width = width
        self.max_probes = max_probes
        self.sorted_keys: list[int] = sorted_distinct_keys(keys, width)
        #: ``prefix_counts[l] == |K_l|``, the number of distinct l-bit prefixes.
        self.prefix_counts = unique_prefix_counts(self.sorted_keys, width)
        self.num_queries = 0
        #: Per empty query: ``(lo, hi, L)`` with ``L = lcp(q, K)``.
        self.empty_queries: list[tuple[int, int, int]] = []
        top = (1 << width) - 1
        for lo, hi in queries:
            if lo > hi:
                raise ValueError(f"empty query range [{lo}, {hi}]")
            if lo < 0 or hi > top:
                raise ValueError(
                    f"query range [{lo}, {hi}] outside the {width}-bit key space"
                )
            self.num_queries += 1
            lcp = query_set_lcp(self.sorted_keys, lo, hi, width)
            if lcp < width:
                self.empty_queries.append((lo, hi, lcp))
        # Suffix counts over L: _lcp_at_least[l] = #empty queries with L >= l.
        histogram = [0] * (width + 1)
        for _, _, lcp in self.empty_queries:
            histogram[lcp] += 1
        self._lcp_at_least = [0] * (width + 2)
        for length in range(width, -1, -1):
            self._lcp_at_least[length] = self._lcp_at_least[length + 1] + histogram[length]
        self._prefix_cache: dict[int, list[int]] = {}

    @property
    def num_empty_queries(self) -> int:
        return len(self.empty_queries)

    def certain_fp_fraction(self, length: int) -> float:
        """Fraction of empty queries with ``lcp(q, K) >= length``.

        These queries are guaranteed false positives for any design whose
        finest layer is ``length`` bits — the lower bound Algorithm 1 prunes
        dominated candidates with.
        """
        if not self.empty_queries:
            return 0.0
        return self._lcp_at_least[min(length, self.width + 1)] / len(self.empty_queries)

    def prefixes(self, length: int) -> list[int]:
        """Return the sorted distinct ``length``-bit key prefixes (cached)."""
        cached = self._prefix_cache.get(length)
        if cached is None:
            shift = self.width - length
            cached = sorted({key >> shift for key in self.sorted_keys})
            self._prefix_cache[length] = cached
        return cached

    def bloom_probe_fpr(self, num_bits: int, length: int) -> float:
        """Single-probe FPR of a Bloom filter over the ``length``-prefix set."""
        return bloom_fpr(num_bits, self.prefix_counts[length])

    # ------------------------------------------------------------------ #
    # Design evaluators                                                  #
    # ------------------------------------------------------------------ #

    def proteus_fpr(self, trie_depth: int, bloom_prefix_len: int, bloom_bits: int) -> float:
        """Expected FPR of a Proteus design (trie at ``l1``, Bloom at ``l2``).

        ``trie_depth == 0`` degenerates to a pure prefix Bloom filter (1PBF);
        ``bloom_prefix_len == 0`` to a trie-only filter.  The two layers must
        satisfy ``l1 < l2`` when both are present.
        """
        l1, l2 = trie_depth, bloom_prefix_len
        self._validate_layers(l1, l2)
        if not self.empty_queries:
            return 0.0
        width = self.width
        cap = self.max_probes
        probe_fpr = self.bloom_probe_fpr(bloom_bits, l2) if l2 else 0.0
        trie_prefixes = self.prefixes(l1) if l1 else None
        total = 0.0
        for lo, hi, lcp in self.empty_queries:
            i = j = 0
            if trie_prefixes is not None:
                shift1 = width - l1
                i = bisect_left(trie_prefixes, lo >> shift1)
                j = bisect_right(trie_prefixes, hi >> shift1, lo=i)
                if i == j:
                    continue  # trie gate rejects: no stored l1-prefix in Q_l1
            if l2 == 0 or lcp >= l2:
                total += 1.0
                continue
            shift2 = width - l2
            plo, phi = lo >> shift2, hi >> shift2
            num_slots = phi - plo + 1
            if num_slots > cap:
                total += 1.0  # the filter gives up and answers True
                continue
            if trie_prefixes is None:
                probes = num_slots
            else:
                # Only l2-prefixes under a stored l1-prefix are probed.
                gap = l2 - l1
                probes = 0
                for index in range(i, j):
                    child_lo = trie_prefixes[index] << gap
                    child_hi = child_lo + (1 << gap) - 1
                    probes += min(phi, child_hi) - max(plo, child_lo) + 1
            total += 1.0 - (1.0 - probe_fpr) ** probes
        return total / len(self.empty_queries)

    def one_pbf_fpr(self, bloom_prefix_len: int, bloom_bits: int) -> float:
        """Expected FPR of a single-layer prefix Bloom filter (1PBF)."""
        return self.proteus_fpr(0, bloom_prefix_len, bloom_bits)

    def two_pbf_fpr(
        self,
        first_prefix_len: int,
        second_prefix_len: int,
        first_bits: int,
        second_bits: int,
    ) -> float:
        """Expected FPR of a two-layer prefix Bloom filter (2PBF).

        The layers use independent hash seeds, so on a query that neither
        layer certainly accepts the two false-positive events multiply.
        """
        l1, l2 = first_prefix_len, second_prefix_len
        if not 0 < l1 < l2 <= self.width:
            raise ValueError(f"need 0 < l1 < l2 <= width, got ({l1}, {l2})")
        if not self.empty_queries:
            return 0.0
        width = self.width
        cap = self.max_probes
        p1 = self.bloom_probe_fpr(first_bits, l1)
        p2 = self.bloom_probe_fpr(second_bits, l2)
        shift1, shift2 = width - l1, width - l2
        total = 0.0
        for lo, hi, lcp in self.empty_queries:
            if lcp >= l1:
                pass_first = 1.0
            else:
                n1 = (hi >> shift1) - (lo >> shift1) + 1
                pass_first = 1.0 if n1 > cap else 1.0 - (1.0 - p1) ** n1
            if lcp >= l2:
                pass_second = 1.0
            else:
                n2 = (hi >> shift2) - (lo >> shift2) + 1
                pass_second = 1.0 if n2 > cap else 1.0 - (1.0 - p2) ** n2
            total += pass_first * pass_second
        return total / len(self.empty_queries)

    def _validate_layers(self, trie_depth: int, bloom_prefix_len: int) -> None:
        if not 0 <= trie_depth <= self.width:
            raise ValueError(f"trie depth {trie_depth} outside [0, {self.width}]")
        if not 0 <= bloom_prefix_len <= self.width:
            raise ValueError(
                f"Bloom prefix length {bloom_prefix_len} outside [0, {self.width}]"
            )
        if bloom_prefix_len and trie_depth >= bloom_prefix_len:
            raise ValueError(
                f"trie depth {trie_depth} must be shorter than the Bloom prefix "
                f"length {bloom_prefix_len}"
            )
