"""The Contextual Prefix FPR (CPFPR) model — Sections 3-4 of the paper.

The model predicts the expected false positive rate of a candidate filter
design *before building it*, from two inputs it derives once:

* the key set, reduced to its prefix-count profile ``|K_l|`` (distinct
  ``l``-bit prefixes, one sorted pass — :func:`repro.keys.lcp.unique_prefix_counts`)
  and, lazily, the sorted set of ``l``-prefixes for trie-gated designs;
* a sample of the query workload, reduced per *empty* query ``q = [lo, hi]``
  to the triple ``(lo, hi, L(q))`` where ``L(q) = lcp(q, K)`` is the longest
  prefix the query shares with any key.

The central observation ("contextual" in CPFPR) is that ``L(q)`` makes a
layer's behaviour on an empty query deterministic or probabilistic:

* a trie of depth ``l1`` accepts ``q`` **iff** ``L(q) >= l1`` — equivalently
  iff a stored ``l1``-prefix falls inside ``Q_{l1}(q)``;
* a Bloom filter over ``l2``-prefixes is *certainly* positive when
  ``L(q) >= l2`` (a truly stored prefix is probed), and otherwise each of
  the ``n`` probed absent prefixes collides independently with probability
  ``p = bloom_fpr(m, |K_{l2}|)``, giving ``1 - (1 - p)^n``.

The filters clamp range probes at ``max_probes`` (returning a conservative
positive beyond it); the model mirrors the clamp exactly, which is what lets
the model-vs-empirical agreement test hold to within small constants.

FPR here is defined over the *empty* sample queries only — non-empty queries
are true positives for every zero-false-negative filter and carry no design
signal.

Execution model
    For word-sized key spaces (width <= 63) the per-query ``(lo, hi, L)``
    triples live in numpy ``int64`` arrays and every design evaluator runs a
    handful of array operations over *all* sample queries at once — this is
    what makes Algorithm 1's sweep over ~10^3 candidate designs tractable.
    Wider key spaces (or ``vectorize=False``) use the scalar per-query
    reference paths; both paths are held equal by the parity test-suite.
    The trie-gated probe count is the one subtle vector step: the number of
    ``l2``-slots of a query that extend a *stored* ``l1``-prefix is computed
    as a difference of two "covered slots below x" prefix sums, each a
    single ``searchsorted`` over the ``l1``-prefix array.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from time import perf_counter
from typing import Iterable

import numpy as np

from repro.amq.bloom import bloom_fpr
from repro.filters.prefix_bloom import DEFAULT_MAX_PROBES
from repro.keys.bytestr import (
    byte_slot_bounds,
    lcp_bits_rows,
    mask_rows,
    rows_as_strings,
)
from repro.keys.lcp import MAX_VECTOR_WIDTH, query_set_lcp_many
from repro.workloads.batch import (
    EncodedKeySet,
    QueryBatch,
    coerce_keys,
    coerce_query_batch,
    slot_bounds,
)
from repro.workloads.bytekeys import ByteQueryBatch

__all__ = ["CPFPRModel", "DEFAULT_MAX_PROBES"]


class CPFPRModel:
    """Expected-FPR evaluator for trie/Bloom prefix-filter designs.

    ``keys`` may be any iterable of encoded integers or an
    :class:`~repro.workloads.batch.EncodedKeySet`; ``queries`` any iterable
    of inclusive ``(lo, hi)`` pairs or a
    :class:`~repro.workloads.batch.QueryBatch`.  ``vectorize=False`` forces
    the scalar reference paths even for word-sized key spaces (used by the
    benchmark harness and the parity tests).  ``metrics`` optionally names
    a :class:`~repro.obs.metrics.MetricsRegistry` that counts model
    constructions and per-candidate design evaluations (one ``is not
    None`` check per evaluation when disabled).
    """

    def __init__(
        self,
        keys: Iterable[int] | EncodedKeySet,
        width: int,
        queries: Iterable[tuple[int, int]] | QueryBatch,
        max_probes: int = DEFAULT_MAX_PROBES,
        vectorize: bool = True,
        metrics=None,
    ):
        if width <= 0:
            raise ValueError("key width must be positive")
        if max_probes < 1:
            raise ValueError("max_probes must be at least 1")
        self.metrics = metrics
        setup_start = perf_counter() if metrics is not None else 0.0
        self.width = width
        self.max_probes = max_probes
        keyset = coerce_keys(keys, width)
        self._keyset = keyset
        self.is_bytes = keyset.is_bytes
        #: Bit granularity Algorithm 1 should sweep layer depths at: byte
        #: keys index and mask at byte boundaries, so sub-byte depths add
        #: cost without adding resolution; the design loops read this.
        self.design_step = 8 if keyset.is_bytes else 1
        self.sorted_keys = keyset.as_list()
        #: ``prefix_counts[l] == |K_l|``, the number of distinct l-bit prefixes.
        self.prefix_counts = keyset.prefix_counts()
        batch = coerce_query_batch(queries, width)
        self.num_queries = len(batch)
        self._vector = bool(
            vectorize
            and width <= MAX_VECTOR_WIDTH
            and keyset.is_vector
            and batch.is_vector
        )
        self._empty_list: list[tuple[int, int, int]] | None = None
        if self.is_bytes:
            self._setup_bytes(keyset, batch)
        elif self._vector:
            lcps = query_set_lcp_many(keyset.keys, batch.los, batch.his, width)
            empty = lcps < width
            self._empty_lo = batch.los[empty]
            self._empty_hi = batch.his[empty]
            self._empty_lcp = lcps[empty]
            histogram = np.bincount(self._empty_lcp, minlength=width + 1) if (
                self._empty_lcp.size
            ) else np.zeros(width + 1, dtype=np.int64)
            suffix = np.zeros(width + 2, dtype=np.int64)
            suffix[: width + 1] = np.cumsum(histogram[::-1])[::-1]
            self._lcp_at_least = suffix.tolist()
        else:
            from repro.keys.lcp import query_set_lcp

            empty_queries: list[tuple[int, int, int]] = []
            for lo, hi in batch.pairs():
                lcp = query_set_lcp(self.sorted_keys, lo, hi, width)
                if lcp < width:
                    empty_queries.append((lo, hi, lcp))
            self._empty_list = empty_queries
            histogram_list = [0] * (width + 1)
            for _, _, lcp in empty_queries:
                histogram_list[lcp] += 1
            self._lcp_at_least = [0] * (width + 2)
            for length in range(width, -1, -1):
                self._lcp_at_least[length] = (
                    self._lcp_at_least[length + 1] + histogram_list[length]
                )
        if metrics is not None:
            metrics.inc("cpfpr.models")
            metrics.inc("cpfpr.sample_queries", self.num_queries)
            metrics.inc("cpfpr.empty_queries", self.num_empty_queries)
            metrics.observe("cpfpr.setup_seconds", perf_counter() - setup_start)
        self._prefix_cache: dict[int, list[int]] = {}
        # Per-layer masks the design sweep re-uses across candidates: the
        # trie gate depends only on l1, the slot interval and the certainty
        # mask only on l2 — Algorithm 1 revisits each dozens of times.
        self._gate_cache: dict[int, tuple] = {}
        self._slot_cache: dict[int, tuple] = {}
        self._certain_cache: dict[int, np.ndarray] = {}

    def _setup_bytes(self, keyset, batch) -> None:
        """Byte-mode setup: exact emptiness and LCPs over the S-dtype views.

        The padded S-dtype key array searchsorts in key order, so emptiness
        is two searchsorted passes and ``lcp(q, K)`` is the rowwise byte-XOR
        LCP against the predecessor of ``lo`` / successor of ``hi`` — the
        same neighbour argument :func:`repro.keys.lcp.query_set_lcp` uses.
        Byte mode always runs its own vectorised evaluators; ``vectorize``
        has no scalar reference twin here.
        """
        width = self.width
        if not isinstance(batch, ByteQueryBatch):
            length = (width + 7) // 8
            batch = ByteQueryBatch.from_pairs(
                [
                    (int(lo).to_bytes(length, "big"), int(hi).to_bytes(length, "big"))
                    for lo, hi in batch.pairs()
                ],
                length,
            )
        keys_s = keyset.keys
        matrix = keyset.matrix
        lo_m, hi_m = batch.lo_matrix, batch.hi_matrix
        lcps = np.full(len(batch), width, dtype=np.int64)
        n = len(keyset)
        if n and len(batch):
            left = np.searchsorted(keys_s, batch.los, side="left")
            right = np.searchsorted(keys_s, batch.his, side="right")
            empty_rows = np.nonzero(right <= left)[0]
            values = np.zeros(empty_rows.size, dtype=np.int64)
            l_e, r_e = left[empty_rows], right[empty_rows]
            has_left = l_e > 0
            if has_left.any():
                values[has_left] = lcp_bits_rows(
                    matrix[l_e[has_left] - 1], lo_m[empty_rows[has_left]]
                )
            has_right = r_e < n
            if has_right.any():
                candidate = lcp_bits_rows(
                    matrix[r_e[has_right]], hi_m[empty_rows[has_right]]
                )
                values[has_right] = np.maximum(values[has_right], candidate)
            lcps[empty_rows] = values
        else:
            lcps[:] = 0 if len(batch) else width
        empty = lcps < width
        self._empty_lo_m = lo_m[empty]
        self._empty_hi_m = hi_m[empty]
        self._empty_lcp = lcps[empty]
        histogram = np.bincount(self._empty_lcp, minlength=width + 1) if (
            self._empty_lcp.size
        ) else np.zeros(width + 1, dtype=np.int64)
        suffix = np.zeros(width + 2, dtype=np.int64)
        suffix[: width + 1] = np.cumsum(histogram[::-1])[::-1]
        self._lcp_at_least = suffix.tolist()

    @property
    def empty_queries(self) -> list[tuple[int, int, int]]:
        """Per empty query: ``(lo, hi, L)`` with ``L = lcp(q, K)`` (lazy list).

        Byte mode renders the bounds as padded big-endian integers — the
        scalar-loop convention for byte keys throughout the repo.
        """
        if self._empty_list is None:
            if self.is_bytes:
                self._empty_list = [
                    (
                        int.from_bytes(lo.tobytes(), "big"),
                        int.from_bytes(hi.tobytes(), "big"),
                        lcp,
                    )
                    for lo, hi, lcp in zip(
                        self._empty_lo_m, self._empty_hi_m, self._empty_lcp.tolist()
                    )
                ]
            else:
                self._empty_list = list(
                    zip(
                        self._empty_lo.tolist(),
                        self._empty_hi.tolist(),
                        self._empty_lcp.tolist(),
                    )
                )
        return self._empty_list

    @property
    def num_empty_queries(self) -> int:
        if self._vector or self.is_bytes:
            return int(self._empty_lcp.size)
        return len(self._empty_list)

    def certain_fp_fraction(self, length: int) -> float:
        """Fraction of empty queries with ``lcp(q, K) >= length``.

        These queries are guaranteed false positives for any design whose
        finest layer is ``length`` bits — the lower bound Algorithm 1 prunes
        dominated candidates with.
        """
        total = self.num_empty_queries
        if not total:
            return 0.0
        return self._lcp_at_least[min(length, self.width + 1)] / total

    def prefixes(self, length: int) -> list[int]:
        """Return the sorted distinct ``length``-bit key prefixes (cached)."""
        cached = self._prefix_cache.get(length)
        if cached is None:
            cached = self._keyset.prefixes(length).tolist()
            self._prefix_cache[length] = cached
        return cached

    def _prefix_arr(self, length: int) -> np.ndarray:
        return self._keyset.prefixes(length)

    def bloom_probe_fpr(self, num_bits: int, length: int) -> float:
        """Single-probe FPR of a Bloom filter over the ``length``-prefix set."""
        return bloom_fpr(num_bits, self.prefix_counts[length])

    # ------------------------------------------------------------------ #
    # Design evaluators                                                  #
    # ------------------------------------------------------------------ #

    def proteus_fpr(self, trie_depth: int, bloom_prefix_len: int, bloom_bits: int) -> float:
        """Expected FPR of a Proteus design (trie at ``l1``, Bloom at ``l2``).

        ``trie_depth == 0`` degenerates to a pure prefix Bloom filter (1PBF);
        ``bloom_prefix_len == 0`` to a trie-only filter.  The two layers must
        satisfy ``l1 < l2`` when both are present.
        """
        l1, l2 = trie_depth, bloom_prefix_len
        self._validate_layers(l1, l2)
        if self.metrics is not None:
            self.metrics.inc("cpfpr.evaluations")
        if not self.num_empty_queries:
            return 0.0
        if self.is_bytes:
            return self._proteus_fpr_bytes(l1, l2, bloom_bits)
        if self._vector:
            return self._proteus_fpr_vector(l1, l2, bloom_bits)
        return self._proteus_fpr_scalar(l1, l2, bloom_bits)

    def _proteus_fpr_scalar(self, l1: int, l2: int, bloom_bits: int) -> float:
        width = self.width
        cap = self.max_probes
        probe_fpr = self.bloom_probe_fpr(bloom_bits, l2) if l2 else 0.0
        trie_prefixes = self.prefixes(l1) if l1 else None
        total = 0.0
        for lo, hi, lcp in self.empty_queries:
            i = j = 0
            if trie_prefixes is not None:
                shift1 = width - l1
                i = bisect_left(trie_prefixes, lo >> shift1)
                j = bisect_right(trie_prefixes, hi >> shift1, lo=i)
                if i == j:
                    continue  # trie gate rejects: no stored l1-prefix in Q_l1
            if l2 == 0 or lcp >= l2:
                total += 1.0
                continue
            shift2 = width - l2
            plo, phi = lo >> shift2, hi >> shift2
            num_slots = phi - plo + 1
            if num_slots > cap:
                total += 1.0  # the filter gives up and answers True
                continue
            if trie_prefixes is None:
                probes = num_slots
            else:
                # Only l2-prefixes under a stored l1-prefix are probed.
                gap = l2 - l1
                probes = 0
                for index in range(i, j):
                    child_lo = trie_prefixes[index] << gap
                    child_hi = child_lo + (1 << gap) - 1
                    probes += min(phi, child_hi) - max(plo, child_lo) + 1
            total += 1.0 - (1.0 - probe_fpr) ** probes
        return total / len(self.empty_queries)

    def _trie_gate_info(
        self, l1: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-query trie-intersection indices at depth ``l1`` (cached).

        With ``blo``/``bhi`` the query's l1-slot interval and ``T`` the
        stored l1-prefix array, returns ``(gate, strict_lo, strict_hi,
        has_lo, has_hi)`` where ``gate`` is "some stored prefix intersects",
        ``strict_lo``/``strict_hi`` bracket the stored prefixes *strictly
        inside* ``(blo, bhi)``, and ``has_lo``/``has_hi`` say whether the
        boundary slots themselves are stored.  Everything here depends only
        on ``l1``, so Algorithm 1's inner loop over ``l2`` reuses it — the
        per-candidate cost is pure arithmetic, no searches.
        """
        info = self._gate_cache.get(l1)
        if info is None:
            trie = self._prefix_arr(l1)
            blo, bhi, _ = self._slot_info(l1)
            i_l = np.searchsorted(trie, blo, side="left")
            i_r = np.searchsorted(trie, blo, side="right")
            j_l = np.searchsorted(trie, bhi, side="left")
            j_r = np.searchsorted(trie, bhi, side="right")
            info = (j_r > i_l, i_r, j_l, i_r > i_l, j_r > j_l)
            self._gate_cache[l1] = info
        return info

    def _slot_info(self, l2: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-query ``(plo, phi, clamped)`` at prefix length ``l2`` (cached)."""
        info = self._slot_cache.get(l2)
        if info is None:
            info = slot_bounds(
                self._empty_lo, self._empty_hi, self.width, l2, self.max_probes
            )
            self._slot_cache[l2] = info
        return info

    def _certain_mask(self, l2: int) -> np.ndarray:
        """Boolean ``lcp(q, K) >= l2`` mask (cached)."""
        certain = self._certain_cache.get(l2)
        if certain is None:
            certain = self._empty_lcp >= l2
            self._certain_cache[l2] = certain
        return certain

    def _proteus_fpr_vector(self, l1: int, l2: int, bloom_bits: int) -> float:
        num_empty = self._empty_lo.size
        gate = None
        if l1:
            gate, strict_lo, strict_hi, has_lo, has_hi = self._trie_gate_info(l1)
        if l2 == 0:
            # Trie-only design: deterministic, every gated query is a FP.
            return 1.0 if gate is None else float(gate.sum() / num_empty)
        plo, phi, clamped = self._slot_info(l2)
        certain = self._certain_mask(l2) | clamped
        if gate is not None:
            sure = gate & certain
            active = gate & ~certain
        else:
            sure = certain
            active = ~certain
        total = float(sure.sum())
        if active.any():
            plo_a, phi_a = plo[active], phi[active]
            if l1:
                # Probe count = l2-slots of the query under a stored
                # l1-prefix: full middle blocks (2^gap slots each) plus the
                # partial boundary blocks, all from the cached per-l1 trie
                # indices — no per-candidate searches.
                gap = l2 - l1
                mask = np.int64((1 << gap) - 1)
                blo, bhi, _ = self._slot_info(l1)
                blo_a, bhi_a = blo[active], bhi[active]
                middle = np.maximum(strict_hi[active] - strict_lo[active], 0)
                first = np.where(
                    has_lo[active],
                    np.minimum(phi_a, (blo_a << gap) + mask) - plo_a + 1,
                    0,
                )
                last = np.where(
                    has_hi[active],
                    phi_a - np.maximum(plo_a, bhi_a << gap) + 1,
                    0,
                )
                probes = np.where(
                    blo_a == bhi_a,
                    np.where(has_lo[active], phi_a - plo_a + 1, 0),
                    middle * np.int64(1 << gap) + first + last,
                )
            else:
                probes = phi_a - plo_a + 1
            probe_fpr = self.bloom_probe_fpr(bloom_bits, l2)
            total += float((1.0 - (1.0 - probe_fpr) ** probes).sum())
        return total / num_empty

    # ------------------------------------------------------------------ #
    # Byte-mode evaluators                                               #
    # ------------------------------------------------------------------ #
    #
    # Byte-string key spaces run the same contextual decomposition over
    # the uint8 matrix views: the trie gate is exact (masked-prefix
    # searchsorted over the stored prefix rows) and the slot interval
    # comes from the shared low-64 window machinery, mirroring the byte
    # filters' clamp rule exactly.  One deliberate difference from the
    # int64 evaluator: a gated query is charged its *whole* slot interval,
    # because the byte-mode Proteus filter probes every l2-slot once its
    # trie gate passes (it has no per-l1-block slot pruning) — the model
    # mirrors the filter it predicts, not the int64 one.

    def _byte_slot_info(self, length: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-query ``(num_slots, clamped)`` at prefix length ``length``.

        ``num_slots`` is float64 — slot counts only feed probability
        arithmetic here, and every unclamped count is far below 2**53.
        """
        info = self._slot_cache.get(length)
        if info is None:
            _, _, span, clamped = byte_slot_bounds(
                self._empty_lo_m, self._empty_hi_m, length, self.max_probes
            )
            info = (span.astype(np.float64) + 1.0, clamped)
            self._slot_cache[length] = info
        return info

    def _byte_gate(self, l1: int) -> np.ndarray:
        """Exact trie gate: does a stored ``l1``-prefix intersect ``Q_l1``?"""
        gate = self._gate_cache.get(l1)
        if gate is None:
            stored = rows_as_strings(self._keyset.prefixes(l1))
            plo = rows_as_strings(mask_rows(self._empty_lo_m, l1))
            phi = rows_as_strings(mask_rows(self._empty_hi_m, l1))
            i = np.searchsorted(stored, plo, side="left")
            j = np.searchsorted(stored, phi, side="right")
            gate = j > i
            self._gate_cache[l1] = gate
        return gate

    def _proteus_fpr_bytes(self, l1: int, l2: int, bloom_bits: int) -> float:
        num_empty = self.num_empty_queries
        gate = self._byte_gate(l1) if l1 else None
        if l2 == 0:
            return 1.0 if gate is None else float(gate.sum() / num_empty)
        slots, clamped = self._byte_slot_info(l2)
        certain = self._certain_mask(l2) | clamped
        if gate is not None:
            sure = gate & certain
            active = gate & ~certain
        else:
            sure = certain
            active = ~certain
        total = float(sure.sum())
        if active.any():
            probe_fpr = self.bloom_probe_fpr(bloom_bits, l2)
            total += float((1.0 - (1.0 - probe_fpr) ** slots[active]).sum())
        return total / num_empty

    def _layer_pass_probability_bytes(self, length: int, bits: int) -> np.ndarray:
        """Byte-mode :meth:`_layer_pass_probability` (certain => probability 1)."""
        p = self.bloom_probe_fpr(bits, length)
        slots, clamped = self._byte_slot_info(length)
        certain = self._certain_mask(length) | clamped
        safe = np.where(certain, 0.0, slots)
        return np.where(certain, 1.0, 1.0 - (1.0 - p) ** safe)

    def one_pbf_fpr(self, bloom_prefix_len: int, bloom_bits: int) -> float:
        """Expected FPR of a single-layer prefix Bloom filter (1PBF)."""
        return self.proteus_fpr(0, bloom_prefix_len, bloom_bits)

    def two_pbf_fpr(
        self,
        first_prefix_len: int,
        second_prefix_len: int,
        first_bits: int,
        second_bits: int,
    ) -> float:
        """Expected FPR of a two-layer prefix Bloom filter (2PBF).

        The layers use independent hash seeds, so on a query that neither
        layer certainly accepts the two false-positive events multiply.
        """
        l1, l2 = first_prefix_len, second_prefix_len
        if not 0 < l1 < l2 <= self.width:
            raise ValueError(f"need 0 < l1 < l2 <= width, got ({l1}, {l2})")
        if self.metrics is not None:
            self.metrics.inc("cpfpr.evaluations")
        if not self.num_empty_queries:
            return 0.0
        if self.is_bytes:
            total = self._layer_pass_probability_bytes(l1, first_bits)
            total = total * self._layer_pass_probability_bytes(l2, second_bits)
            return float(total.sum() / self.num_empty_queries)
        if self._vector:
            return self._two_pbf_fpr_vector(l1, l2, first_bits, second_bits)
        return self._two_pbf_fpr_scalar(l1, l2, first_bits, second_bits)

    def _two_pbf_fpr_scalar(
        self, l1: int, l2: int, first_bits: int, second_bits: int
    ) -> float:
        width = self.width
        cap = self.max_probes
        p1 = self.bloom_probe_fpr(first_bits, l1)
        p2 = self.bloom_probe_fpr(second_bits, l2)
        shift1, shift2 = width - l1, width - l2
        total = 0.0
        for lo, hi, lcp in self.empty_queries:
            if lcp >= l1:
                pass_first = 1.0
            else:
                n1 = (hi >> shift1) - (lo >> shift1) + 1
                pass_first = 1.0 if n1 > cap else 1.0 - (1.0 - p1) ** n1
            if lcp >= l2:
                pass_second = 1.0
            else:
                n2 = (hi >> shift2) - (lo >> shift2) + 1
                pass_second = 1.0 if n2 > cap else 1.0 - (1.0 - p2) ** n2
            total += pass_first * pass_second
        return total / len(self.empty_queries)

    def _two_pbf_fpr_vector(
        self, l1: int, l2: int, first_bits: int, second_bits: int
    ) -> float:
        total = self._layer_pass_probability(l1, first_bits)
        total = total * self._layer_pass_probability(l2, second_bits)
        return float(total.sum() / self._empty_lo.size)

    def _layer_pass_probability(self, length: int, bits: int) -> np.ndarray:
        """Per-query probability that one Bloom layer answers positively."""
        p = self.bloom_probe_fpr(bits, length)
        plo, phi, clamped = self._slot_info(length)
        certain = self._certain_mask(length) | clamped
        # The + 1 lands after the where: phi - plo + 1 would overflow int64
        # for clamped full-space queries at width 63.
        slots = np.where(certain, -1, phi - plo) + 1
        return np.where(certain, 1.0, 1.0 - (1.0 - p) ** slots)

    def _validate_layers(self, trie_depth: int, bloom_prefix_len: int) -> None:
        if not 0 <= trie_depth <= self.width:
            raise ValueError(f"trie depth {trie_depth} outside [0, {self.width}]")
        if not 0 <= bloom_prefix_len <= self.width:
            raise ValueError(
                f"Bloom prefix length {bloom_prefix_len} outside [0, {self.width}]"
            )
        if bloom_prefix_len and trie_depth >= bloom_prefix_len:
            raise ValueError(
                f"trie depth {trie_depth} must be shorter than the Bloom prefix "
                f"length {bloom_prefix_len}"
            )
