"""The paper's contribution: CPFPR model, Algorithm 1, protean filters.

* :class:`~repro.core.cpfpr.CPFPRModel` — predicts a design's expected FPR
  from the key set and a sample of the query workload (Sections 3-4).
* :mod:`~repro.core.design` — Algorithm 1: enumerate, prune, and pick the
  CPFPR-minimal design under a bit budget.
* :class:`~repro.core.prf.OnePBF` / :class:`~repro.core.prf.TwoPBF` — the
  one- and two-layer protean prefix Bloom filters.
* :class:`~repro.core.proteus.Proteus` — the self-designing trie + Bloom
  hybrid; build through :func:`repro.api.build_filter` or
  ``Proteus.from_spec`` (the legacy ``.build`` classmethods are deprecated
  shims that route there).
"""

from repro.core.cpfpr import CPFPRModel
from repro.core.design import (
    FilterDesign,
    design_one_pbf,
    design_proteus,
    design_two_pbf,
)
from repro.core.prf import OnePBF, TwoPBF
from repro.core.proteus import Proteus

__all__ = [
    "CPFPRModel",
    "FilterDesign",
    "design_proteus",
    "design_one_pbf",
    "design_two_pbf",
    "OnePBF",
    "TwoPBF",
    "Proteus",
]
