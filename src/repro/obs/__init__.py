"""Observability: metrics, probe tracing, and online FPR-drift monitoring.

A dependency-free (stdlib-only) instrumentation subsystem, opt-in
everywhere it is wired:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters, gauges
  and fixed-bucket histograms with a ``timer()`` context manager and
  JSON/Prometheus exporters; threaded as an optional ``metrics=``
  parameter through ``build_filter`` → ``from_spec`` → Algorithm 1;
* :mod:`repro.obs.trace` — :class:`ProbeTrace`, the ring-buffered
  per-query/per-level event recorder ``LSMTree.probe`` fills, whose
  totals reconcile exactly against the run's ``ProbeResult``;
* :mod:`repro.obs.drift` — :class:`DriftMonitor`, the rolling
  predicted-CPFPR-vs-observed-FPR comparator (the sensor half of the
  self-redesign loop).

The disabled state is the default and costs nothing on the hot paths:
every instrumented call site guards on ``metrics is not None`` /
``trace is not None``.
"""

from repro.obs.drift import DriftMonitor, DriftReport, predicted_tree_fpr
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    timed,
    validate_metrics_payload,
)
from repro.obs.trace import ProbeEvent, ProbeTrace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "timed",
    "validate_metrics_payload",
    "ProbeEvent",
    "ProbeTrace",
    "DriftMonitor",
    "DriftReport",
    "predicted_tree_fpr",
]
