"""Probe tracing: per-query, per-level event capture for ``LSMTree.probe``.

A :class:`ProbeTrace` rides along one probe run: every fence-surviving
(query, SST) pair the tree routes becomes one :class:`ProbeEvent` carrying
the level, the SST, whether a filter was consulted, the filter's verdict
(which is exactly "a block read was charged") and the SST's ground truth.
Two kinds of state are kept deliberately separate:

* **totals** — aggregate counters over *every* recorded pair, updated with
  vectorised sums, never dropped.  These reconcile **exactly** against the
  :class:`~repro.lsm.cost.ProbeResult` of the same run
  (:meth:`ProbeTrace.reconcile`) — the invariant the CI metrics smoke gate
  and the acceptance test pin;
* **events** — the per-pair records, held in a ring buffer of
  ``capacity`` entries (oldest evicted first), so tracing a large batch is
  memory-safe: the tail is always inspectable, ``dropped`` says how much
  history scrolled away, and the totals stay exact regardless.

Tracing is opt-in (``tree.probe(batch, trace=ProbeTrace())``); the
untraced probe path pays one ``is None`` check per routed SST group.
"""

from __future__ import annotations

from collections import deque
from typing import NamedTuple

__all__ = ["ProbeEvent", "ProbeTrace"]

#: Default ring-buffer capacity (events, not queries).
DEFAULT_CAPACITY = 65_536

#: The accounting fields shared with :class:`~repro.lsm.cost.ProbeResult`,
#: in reconciliation order.
TRACE_FIELDS = (
    "candidates",
    "filter_probes",
    "blocks_read",
    "required_reads",
    "false_positive_reads",
    "missed_reads",
)


class ProbeEvent(NamedTuple):
    """One fence-surviving (query, SST) pair as the probe path saw it."""

    query: int  #: index into the probed batch
    level: int  #: LSM level of the SST
    sst: int  #: SST index within the level
    filtered: bool  #: was a filter consulted (False on the no-filter baseline)
    positive: bool  #: filter verdict — True means a block read was charged
    truth: bool  #: does the SST actually hold a matching key

    def to_dict(self) -> dict:
        return self._asdict()


class ProbeTrace:
    """Ring-buffered event recorder for one ``LSMTree.probe`` run."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("trace capacity must be at least 1")
        self.capacity = capacity
        self._events: deque[ProbeEvent] = deque(maxlen=capacity)
        self.num_events = 0
        self.totals: dict[str, int] = {name: 0 for name in TRACE_FIELDS}

    # ------------------------------------------------------------------ #
    # Recording (called by LSMTree.probe per routed SST group)           #
    # ------------------------------------------------------------------ #

    def record_sst(
        self, level: int, sst: int, query_indices, positives, truth, filtered: bool
    ) -> None:
        """Record one SST's routed sub-batch.

        ``query_indices``/``positives``/``truth`` are the aligned arrays
        the probe loop already has in hand; totals update with vectorised
        sums, then each pair is appended to the ring.
        """
        count = int(len(query_indices))
        totals = self.totals
        totals["candidates"] += count
        if filtered:
            totals["filter_probes"] += count
        totals["blocks_read"] += int(positives.sum())
        totals["required_reads"] += int(truth.sum())
        totals["false_positive_reads"] += int((positives & ~truth).sum())
        totals["missed_reads"] += int((truth & ~positives).sum())
        self.num_events += count
        append = self._events.append
        for query, positive, matched in zip(
            query_indices.tolist(), positives.tolist(), truth.tolist()
        ):
            append(ProbeEvent(query, level, sst, filtered, positive, matched))

    # ------------------------------------------------------------------ #
    # Inspection                                                         #
    # ------------------------------------------------------------------ #

    @property
    def dropped(self) -> int:
        """Events evicted from the ring (totals still include them)."""
        return self.num_events - len(self._events)

    def events(self) -> list[ProbeEvent]:
        """The retained event tail, oldest first."""
        return list(self._events)

    def reconcile(self, result) -> list[str]:
        """Return mismatches between this trace and a ``ProbeResult``.

        Every shared accounting field must agree **exactly**: the trace
        totals are computed from the same per-SST arrays the probe summed
        into the result, so any difference means an instrumentation bug
        (or a trace reused across probe runs).  An empty list means the
        two accounts reconcile.
        """
        mismatches = []
        for name in TRACE_FIELDS:
            traced = self.totals[name]
            reported = int(getattr(result, name).sum())
            if traced != reported:
                mismatches.append(
                    f"{name}: trace says {traced}, ProbeResult says {reported}"
                )
        return mismatches

    def to_dict(self, max_events: int = 32) -> dict:
        """JSON-ready summary: totals, ring occupancy, newest event sample."""
        tail = list(self._events)[-max_events:] if max_events > 0 else []
        return {
            "capacity": self.capacity,
            "num_events": self.num_events,
            "retained_events": len(self._events),
            "dropped_events": self.dropped,
            "totals": dict(self.totals),
            "events": [event.to_dict() for event in tail],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProbeTrace(events={self.num_events}, retained={len(self._events)}, "
            f"blocks_read={self.totals['blocks_read']})"
        )
