"""The metrics substrate: counters, gauges, fixed-bucket histograms, timers.

A :class:`MetricsRegistry` is the one handle instrumented code passes
around.  It is deliberately dependency-free (stdlib only) and *optional*
everywhere: every instrumented call site takes ``metrics=None`` and guards
emission behind an ``is not None`` check, so the disabled hot paths pay a
single pointer comparison — the overhead contract the timed parity test
pins.

Three metric kinds, all named by dotted strings (``"build.seconds"``):

* **counters** — monotone floats (``inc``); events, totals, evaluation
  counts;
* **gauges** — last-write-wins floats (``set_gauge``); final design knobs,
  sizes;
* **histograms** — fixed upper-bound buckets plus an implicit ``+inf``
  overflow bucket (``observe``); timings and size distributions.  Buckets
  are fixed at first registration, so exports are stable across a run.

:meth:`MetricsRegistry.timer` is a context manager observing wall-clock
seconds into a histogram; :func:`timed` is the ``None``-tolerant wrapper
instrumented builders use.  Exporters: :meth:`MetricsRegistry.to_dict`
(JSON-ready, the shape ``validate_metrics_payload`` checks and the bench
artifacts embed) and :meth:`MetricsRegistry.to_prometheus` (the text
exposition format, one line per sample).
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from contextlib import contextmanager, nullcontext
from time import perf_counter
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "timed",
    "validate_metrics_payload",
    "DEFAULT_TIME_BUCKETS",
]

#: Default histogram buckets for timers, in seconds (upper bounds; an
#: implicit +inf overflow bucket always follows the last one).
DEFAULT_TIME_BUCKETS = (
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    0.1,
    1.0,
    10.0,
)

_PROM_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative: counters never go down)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        self.value += amount


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A fixed-bucket histogram: cumulative-style counts, sum and count.

    ``buckets`` are strictly increasing finite upper bounds; every observed
    value lands in the first bucket whose bound is ``>= value``, or in the
    implicit ``+inf`` overflow bucket.  ``counts`` is per-bucket (not
    cumulative); the Prometheus exporter accumulates on the way out.
    """

    __slots__ = ("name", "buckets", "counts", "total", "count")

    def __init__(self, name: str, buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError(f"histogram {name!r} buckets must be finite")
        if any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name!r} buckets must strictly increase")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last entry is the +inf bucket
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    def to_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
        }


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    One registry per instrumented run; the drivers create it, thread it
    through ``build_filter``/``probe``, and export it into the benchmark
    artifact.  Registering the same name twice with the same kind returns
    the existing metric; reusing a name across kinds is an error (the
    export would be ambiguous).
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    # Registration and emission                                          #
    # ------------------------------------------------------------------ #

    def _check_kind(self, name: str, kind: dict) -> None:
        for other in (self._counters, self._gauges, self._histograms):
            if other is not kind and name in other:
                raise ValueError(f"metric name {name!r} is already a different kind")

    def counter(self, name: str) -> Counter:
        """Return (registering on first use) the counter called ``name``."""
        metric = self._counters.get(name)
        if metric is None:
            self._check_kind(name, self._counters)
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """Return (registering on first use) the gauge called ``name``."""
        metric = self._gauges.get(name)
        if metric is None:
            self._check_kind(name, self._gauges)
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS
    ) -> Histogram:
        """Return the histogram called ``name`` (buckets fix on first use)."""
        metric = self._histograms.get(name)
        if metric is None:
            self._check_kind(name, self._histograms)
            metric = self._histograms[name] = Histogram(name, buckets)
        return metric

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment the counter called ``name``."""
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge called ``name``."""
        self.gauge(name).set(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        """Record one sample into the histogram called ``name``."""
        self.histogram(name, buckets).observe(value)

    @contextmanager
    def timer(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS
    ) -> Iterator[None]:
        """Observe the wall-clock seconds of the ``with`` body into ``name``."""
        start = perf_counter()
        try:
            yield
        finally:
            self.observe(name, perf_counter() - start, buckets)

    # ------------------------------------------------------------------ #
    # Exporters                                                          #
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """JSON-ready export: the shape ``validate_metrics_payload`` checks."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.to_dict() for name, h in sorted(self._histograms.items())
            },
        }

    def to_prometheus(self) -> str:
        """Render the Prometheus text exposition format (one sample per line).

        Dotted names are sanitised to underscores; counters get the
        conventional ``_total`` suffix; histogram bucket counts are emitted
        cumulatively with ``le`` labels, as the format requires.
        """
        lines: list[str] = []
        for name, counter in sorted(self._counters.items()):
            flat = _PROM_SANITIZE.sub("_", name)
            lines.append(f"# TYPE {flat}_total counter")
            lines.append(f"{flat}_total {_format_value(counter.value)}")
        for name, gauge in sorted(self._gauges.items()):
            flat = _PROM_SANITIZE.sub("_", name)
            lines.append(f"# TYPE {flat} gauge")
            lines.append(f"{flat} {_format_value(gauge.value)}")
        for name, hist in sorted(self._histograms.items()):
            flat = _PROM_SANITIZE.sub("_", name)
            lines.append(f"# TYPE {flat} histogram")
            cumulative = 0
            for bound, count in zip(hist.buckets, hist.counts):
                cumulative += count
                lines.append(
                    f'{flat}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
                )
            lines.append(f'{flat}_bucket{{le="+Inf"}} {hist.count}')
            lines.append(f"{flat}_sum {_format_value(hist.total)}")
            lines.append(f"{flat}_count {hist.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _format_value(value: float) -> str:
    """Integers render without a trailing ``.0`` (stable, diff-friendly)."""
    return str(int(value)) if float(value).is_integer() else repr(float(value))


def timed(metrics: MetricsRegistry | None, name: str):
    """A ``with``-able timer that is a no-op when ``metrics`` is ``None``.

    The idiom every instrumented builder uses::

        with timed(metrics, "build.design_seconds"):
            design = design_proteus(model, total_bits, metrics=metrics)
    """
    return nullcontext() if metrics is None else metrics.timer(name)


def validate_metrics_payload(payload: dict) -> list[str]:
    """Return schema violations of a :meth:`MetricsRegistry.to_dict` export.

    Checks the three top-level sections exist and are mappings, counters
    are non-negative finite numbers, and every histogram is internally
    consistent (``len(counts) == len(buckets) + 1``, per-bucket counts
    non-negative and summing to ``count``, finite ``sum``).  An empty list
    means the payload is well-formed — the CI metrics smoke gate.
    """
    problems: list[str] = []
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(payload.get(section), dict):
            problems.append(f"missing or non-mapping section {section!r}")
    if problems:
        return problems
    for name, value in payload["counters"].items():
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            problems.append(f"counter {name!r} is not a finite number: {value!r}")
        elif value < 0:
            problems.append(f"counter {name!r} is negative: {value!r}")
    for name, value in payload["gauges"].items():
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            problems.append(f"gauge {name!r} is not a finite number: {value!r}")
    for name, hist in payload["histograms"].items():
        if not isinstance(hist, dict):
            problems.append(f"histogram {name!r} is not a mapping")
            continue
        buckets = hist.get("buckets")
        counts = hist.get("counts")
        if not isinstance(buckets, list) or not isinstance(counts, list):
            problems.append(f"histogram {name!r} lacks buckets/counts lists")
            continue
        if len(counts) != len(buckets) + 1:
            problems.append(
                f"histogram {name!r} has {len(counts)} counts for "
                f"{len(buckets)} buckets (want buckets + 1)"
            )
            continue
        if any(not isinstance(c, int) or c < 0 for c in counts):
            problems.append(f"histogram {name!r} has a negative/non-int count")
        if sum(counts) != hist.get("count"):
            problems.append(
                f"histogram {name!r} counts sum to {sum(counts)} "
                f"but count says {hist.get('count')}"
            )
        total = hist.get("sum")
        if not isinstance(total, (int, float)) or not math.isfinite(total):
            problems.append(f"histogram {name!r} sum is not a finite number")
    return problems
