"""Online FPR-drift monitoring: predicted CPFPR vs observed per-batch FPR.

Proteus' contextual design is only as good as its query sample: when the
live query mix drifts away from the sample Algorithm 1 optimised against,
the filter's *observed* FPR detaches from the CPFPR model's *prediction*.
:class:`DriftMonitor` is the sensor half of the ROADMAP's self-redesign
loop — it maintains a rolling window of per-batch ``(false positives,
empty-query opportunities)`` observations, compares the windowed observed
rate against the frozen prediction, and flags divergence beyond a
configurable allowance.  The actuator (redesign/rebuild) plugs in on top.

Design choices:

* **pure arithmetic** — no clocks, no randomness: the same observation
  sequence always produces the same reports (seeded-determinism test);
* **two-sided, two-part allowance** — drift is flagged when
  ``|observed - predicted| > max(abs_threshold, rel_threshold *
  predicted)``: the absolute floor absorbs sampling noise when the
  prediction is near zero, the relative part scales with it (the CPFPR
  model is validated to small-constant agreement, not equality);
* **warm-up guard** — no flag until the window holds ``min_empty`` empty
  queries: a handful of early batches cannot trip the alarm.

Observations arrive three ways: raw ``observe(fp, empty)`` counts,
``observe_answers(answers, truth)`` boolean arrays (the sweep's held-out
grading), or ``observe_result(result)`` from an LSM
:class:`~repro.lsm.cost.ProbeResult` (per empty-candidate filter trial).
:func:`predicted_tree_fpr` derives the tree-level prediction an LSM
monitor compares against.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass
from typing import Callable

__all__ = ["DriftMonitor", "DriftReport", "predicted_tree_fpr"]


@dataclass(frozen=True)
class DriftReport:
    """One batch's verdict: windowed observed FPR vs the frozen prediction."""

    batch: int  #: 0-based index of the observation that produced this report
    predicted_fpr: float
    observed_fpr: float  #: windowed rate (0.0 while the window is all-empty)
    deviation: float  #: observed - predicted
    allowance: float  #: max(abs_threshold, rel_threshold * predicted)
    window_batches: int  #: batches currently in the window
    window_empty: int  #: empty-query opportunities in the window
    warmed_up: bool  #: has the window seen >= min_empty opportunities
    drifted: bool  #: warmed up AND |deviation| > allowance

    def to_dict(self) -> dict:
        return asdict(self)


class DriftMonitor:
    """Rolling predicted-vs-observed FPR comparator.

    ``predicted_fpr`` is the CPFPR prediction of the deployed design (a
    probability in [0, 1], frozen at build time); ``window`` bounds how
    many batches the observed rate averages over, so the monitor tracks
    the *current* mix rather than the lifetime mean.  ``on_drift`` is the
    actuator hook: a callable invoked with the flagging
    :class:`DriftReport` whenever a batch trips the alarm — the
    redesign/rebuild loop (:class:`repro.lsm.lifecycle.FilterLifecycle`)
    plugs in here.
    """

    def __init__(
        self,
        predicted_fpr: float,
        window: int = 8,
        abs_threshold: float = 0.05,
        rel_threshold: float = 0.5,
        min_empty: int = 64,
        on_drift: "Callable[[DriftReport], None] | None" = None,
    ):
        if not 0.0 <= predicted_fpr <= 1.0:
            raise ValueError(f"predicted_fpr must be in [0, 1], got {predicted_fpr}")
        if window < 1:
            raise ValueError("window must be at least 1 batch")
        if abs_threshold < 0 or rel_threshold < 0:
            raise ValueError("thresholds must be non-negative")
        if min_empty < 1:
            raise ValueError("min_empty must be at least 1")
        self.predicted_fpr = float(predicted_fpr)
        self.window = window
        self.abs_threshold = float(abs_threshold)
        self.rel_threshold = float(rel_threshold)
        self.min_empty = min_empty
        self.on_drift = on_drift
        self._batches: deque[tuple[int, int]] = deque(maxlen=window)
        self.num_batches = 0
        self.num_drift_flags = 0
        self._last: DriftReport | None = None

    # ------------------------------------------------------------------ #
    # Observation                                                        #
    # ------------------------------------------------------------------ #

    def observe(self, false_positives: int, num_empty: int) -> DriftReport:
        """Fold one batch's ``(false positives, empty opportunities)`` in.

        ``num_empty`` counts the opportunities a false positive *could*
        have occurred on (empty queries, or empty-candidate filter trials
        in the LSM setting); ``false_positives`` counts how many did.
        Returns the report for the updated window.
        """
        false_positives = int(false_positives)
        num_empty = int(num_empty)
        if num_empty < 0 or false_positives < 0:
            raise ValueError("observation counts must be non-negative")
        if false_positives > num_empty:
            raise ValueError(
                f"{false_positives} false positives exceed "
                f"{num_empty} empty opportunities"
            )
        self._batches.append((false_positives, num_empty))
        window_fp = sum(fp for fp, _ in self._batches)
        window_empty = sum(empty for _, empty in self._batches)
        observed = window_fp / window_empty if window_empty else 0.0
        allowance = max(self.abs_threshold, self.rel_threshold * self.predicted_fpr)
        warmed_up = window_empty >= self.min_empty
        deviation = observed - self.predicted_fpr
        drifted = warmed_up and abs(deviation) > allowance
        report = DriftReport(
            batch=self.num_batches,
            predicted_fpr=self.predicted_fpr,
            observed_fpr=observed,
            deviation=deviation,
            allowance=allowance,
            window_batches=len(self._batches),
            window_empty=window_empty,
            warmed_up=warmed_up,
            drifted=drifted,
        )
        self.num_batches += 1
        if drifted:
            self.num_drift_flags += 1
        self._last = report
        if drifted and self.on_drift is not None:
            self.on_drift(report)
        return report

    def observe_answers(self, answers, truth) -> DriftReport:
        """Fold in one batch of filter answers graded against ground truth.

        ``answers``/``truth`` are aligned boolean arrays (filter verdicts
        and oracle truth for the same queries); the empty queries are the
        ``~truth`` positions and the false positives the answers among
        them.
        """
        empty = ~truth
        return self.observe(int((answers & empty).sum()), int(empty.sum()))

    def observe_result(self, result, num_ssts: int | None = None) -> DriftReport:
        """Fold in one LSM probe batch from its :class:`ProbeResult`.

        With ``num_ssts`` given, every (query, SST) pair whose SST held no
        matching key counts as an opportunity — the denominator the
        per-SST CPFPR predictions average over (a truly matching pair
        always survives its fences, so empty pairs are ``queries × SSTs -
        required reads``; fence pruning removes only certain negatives and
        can only push the observed rate *below* the prediction).  Without
        it, only fence-surviving empty pairs count — a stricter rate,
        conditioned on queries that already looked plausible.
        """
        false_positives = int(result.false_positive_reads.sum())
        required = int(result.required_reads.sum())
        if num_ssts is None:
            empty_trials = int(result.candidates.sum()) - required
        else:
            empty_trials = result.num_queries * int(num_ssts) - required
        return self.observe(false_positives, empty_trials)

    # ------------------------------------------------------------------ #
    # State                                                              #
    # ------------------------------------------------------------------ #

    @property
    def last_report(self) -> DriftReport | None:
        """The most recent batch's report (None before any observation)."""
        return self._last

    @property
    def drifted(self) -> bool:
        """Did the most recent batch flag drift?"""
        return self._last is not None and self._last.drifted

    @property
    def observed_fpr(self) -> float:
        """The current windowed observed FPR (0.0 before any observation)."""
        return self._last.observed_fpr if self._last is not None else 0.0

    def reset(self, predicted_fpr: float | None = None) -> None:
        """Clear the window (after a rebuild); optionally re-pin the prediction."""
        if predicted_fpr is not None:
            if not 0.0 <= predicted_fpr <= 1.0:
                raise ValueError(
                    f"predicted_fpr must be in [0, 1], got {predicted_fpr}"
                )
            self.predicted_fpr = float(predicted_fpr)
        self._batches.clear()
        self.num_batches = 0
        self.num_drift_flags = 0
        self._last = None

    def to_dict(self) -> dict:
        """JSON-ready configuration + current window state."""
        return {
            "predicted_fpr": self.predicted_fpr,
            "window": self.window,
            "abs_threshold": self.abs_threshold,
            "rel_threshold": self.rel_threshold,
            "min_empty": self.min_empty,
            "num_batches": self.num_batches,
            "num_drift_flags": self.num_drift_flags,
            "observed_fpr": self.observed_fpr,
            "drifted": self.drifted,
            "last_report": self._last.to_dict() if self._last else None,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DriftMonitor(predicted={self.predicted_fpr:.4g}, "
            f"observed={self.observed_fpr:.4g}, batches={self.num_batches}, "
            f"drifted={self.drifted})"
        )


def predicted_tree_fpr(tree) -> float | None:
    """Key-count-weighted mean of the per-SST filters' CPFPR predictions.

    The LSM deployment builds one self-designed filter per SST; each
    exposes its own ``expected_fpr``.  A fence-surviving probe of a larger
    SST is (to first order) proportionally more likely, so the key-count
    weighting approximates the per-trial prediction
    :meth:`DriftMonitor.observe_result` grades against.  Returns ``None``
    when no attached filter exposes a prediction (fixed baselines, or a
    bare tree) — no prediction, no monitor.
    """
    weighted = 0.0
    weight = 0
    for sst in tree.sstables():
        filt = sst.filter
        if filt is None:
            continue
        fpr = getattr(filt, "expected_fpr", None)
        if fpr is None:
            continue
        weighted += float(fpr) * len(sst)
        weight += len(sst)
    return weighted / weight if weight else None
