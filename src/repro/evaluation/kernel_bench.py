"""Kernel benchmark: every ``repro.kernels`` backend against the numpy
reference, with parity gating.

For each kernel (``bloom_add``, ``bloom_contains``, ``bitvector_get_rank1``,
``trie_levels``) and every backend available in this environment, the
harness:

* checks **parity** first — the backend's output must be byte-identical to
  the numpy reference on the same seeded inputs (a mismatch fails the run
  regardless of any flag: a speedup may never be bought with a wrong
  answer);
* reports the **median** wall time over ``--repeats`` runs and the speedup
  relative to numpy.

Results go to a JSON report.  The committed reference is produced with
several ``--rounds`` so its speedups are per-(kernel, backend) minima —
a conservative floor rather than one lucky run::

    python -m repro.evaluation.kernel_bench --rounds 5 --output BENCH_pr7.json

``--check-against BENCH_pr7.json`` re-runs the suite and fails when any
(kernel, backend) speedup regressed more than ``--tolerance`` (default
0.2, i.e. 20%) below the committed report — the CI smoke gate.  Backends
present in the committed report but absent in this environment are
skipped: the committed numbers document what the compiled backends
achieve, not what every runner must have installed.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from typing import Callable

import numpy as np

from repro import kernels
from repro.amq.bitarray import BitArray
from repro.amq.bloom import bloom_hash_count
from repro.amq.hashing import premixed_pair_seeds
from repro.trie.bitvector import RankSelectBitVector

__all__ = ["run_kernel_bench", "main"]


def _median_time(fn: Callable[[], object], repeats: int) -> float:
    """Return the median wall time of ``repeats`` calls to ``fn``."""
    samples: list[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _make_cases(scale: float, seed: int) -> dict[str, Callable[[str], bytes]]:
    """Build the seeded per-kernel runners.

    Each runner takes a backend name and returns a bytes digest of the
    kernel's full output, so parity is an exact ``==`` between backends.
    """
    rng = np.random.default_rng(seed)

    # Bloom: n values at ~12 bits per key, the sweep's default budget.
    n = max(1_000, int(200_000 * scale))
    num_bits = 8 * ((12 * n + 7) // 8)
    k = bloom_hash_count(num_bits, n)
    s1, s2 = premixed_pair_seeds(seed)
    values = rng.integers(0, 1 << 62, size=n, dtype=np.int64)
    buf_bytes = num_bits // 8
    filled = np.zeros(buf_bytes, dtype=np.uint8)
    kernels.bloom_add(
        filled, num_bits, values[: n // 2], s1, s2, k, backend="numpy"
    )
    probes = np.concatenate(
        [values[: n // 2], rng.integers(0, 1 << 62, size=n // 2, dtype=np.int64)]
    )

    def bloom_add_case(backend: str) -> bytes:
        buf = np.zeros(buf_bytes, dtype=np.uint8)
        kernels.bloom_add(buf, num_bits, values, s1, s2, k, backend=backend)
        return buf.tobytes()

    def bloom_contains_case(backend: str) -> bytes:
        return kernels.bloom_contains(
            filled, num_bits, probes, s1, s2, k, backend=backend
        ).tobytes()

    # LOUDS step: a half-full bit vector probed at random positions.
    bv_bits = max(4_096, int((1 << 20) * scale))
    set_count = bv_bits // 2
    bits = BitArray(bv_bits)
    bits.set_many(
        rng.choice(np.int64(bv_bits), size=set_count, replace=False)
    )
    vector = RankSelectBitVector(bits)
    positions = rng.integers(0, bv_bits, size=max(10_000, int(500_000 * scale)))

    def bitvector_case(backend: str) -> bytes:
        got_bits, got_ranks = kernels.bitvector_get_rank1(
            vector._byte_buffer, vector._byte_cumulative, vector.num_bits,
            positions, backend=backend,
        )
        return got_bits.tobytes() + got_ranks.tobytes()

    # Trie build: sorted distinct 4-byte prefixes (equal length is
    # prefix-free by construction), the FST bulk builder's inner pass.
    num_prefixes = max(5_000, int(150_000 * scale))
    prefix_vals = np.unique(
        rng.integers(0, 1 << 32, size=num_prefixes, dtype=np.int64)
    )
    shifts = 8 * np.arange(3, -1, -1, dtype=np.int64)
    mat = ((prefix_vals[:, None] >> shifts[None, :]) & 0xFF).astype(np.uint8)
    lengths = np.full(prefix_vals.size, 4, dtype=np.int64)

    def trie_case(backend: str) -> bytes:
        parts = kernels.trie_levels(mat, lengths, backend=backend)
        return b"".join(np.ascontiguousarray(p).tobytes() for p in parts)

    return {
        "bloom_add": bloom_add_case,
        "bloom_contains": bloom_contains_case,
        "bitvector_get_rank1": bitvector_case,
        "trie_levels": trie_case,
    }


def run_kernel_bench(
    scale: float = 1.0, seed: int = 7, repeats: int = 5, rounds: int = 1
) -> dict:
    """Time every kernel on every available backend; assert parity first.

    Raises ``AssertionError`` on any backend/numpy output mismatch.

    ``rounds`` reruns the whole suite that many times (fresh inputs each
    round) and reports the **minimum** speedup per (kernel, backend)
    across rounds.  Millisecond-scale ratios move run to run with cache
    and scheduler state even when each round's median is clean, so a
    single round is a lottery ticket; the committed reference report is
    produced with several rounds, making ``--check-against`` compare
    against a conservative floor instead of one lucky draw.  Reported
    timings are each backend's median across rounds.
    """
    backends = kernels.available_backends()
    per_round_timings: dict[str, dict[str, list[float]]] = {}
    parity_all: dict[str, dict[str, bool]] = {}
    for _ in range(max(1, rounds)):
        cases = _make_cases(scale, seed)
        for kernel_name, case in cases.items():
            reference = case("numpy")
            slot = per_round_timings.setdefault(
                kernel_name, {b: [] for b in backends}
            )
            for backend in backends:
                ok = case(backend) == reference
                parity_all.setdefault(kernel_name, {})[backend] = ok
                if not ok:
                    raise AssertionError(
                        f"parity mismatch: kernel {kernel_name!r} on backend "
                        f"{backend!r} diverged from the numpy reference"
                    )
                slot[backend].append(
                    _median_time(lambda b=backend: case(b), repeats)
                )
    report: dict = {
        "workload": {
            "scale": scale, "seed": seed, "repeats": repeats, "rounds": rounds,
        },
        "backends": list(backends),
        "benchmarks": {},
        "speedups": {},
        "parity": parity_all,
    }
    for kernel_name, slot in per_round_timings.items():
        report["benchmarks"][kernel_name] = {
            f"{b}_seconds": statistics.median(ts) for b, ts in slot.items()
        }
        report["speedups"][kernel_name] = {
            b: min(
                n / t for n, t in zip(slot["numpy"], ts) if t > 0
            )
            for b, ts in slot.items()
            if b != "numpy" and any(t > 0 for t in ts)
        }
    return report


def _check_regressions(report: dict, committed: dict, tolerance: float) -> dict:
    """Return ``{kernel.backend: (current, required)}`` for every regression.

    A (kernel, backend) pair gates only when present in both reports; the
    committed file documents compiled-backend speedups without forcing
    every environment to provide those backends.
    """
    failures: dict[str, tuple[float, float]] = {}
    for kernel_name, per_backend in committed.get("speedups", {}).items():
        for backend, reference in per_backend.items():
            current = report["speedups"].get(kernel_name, {}).get(backend)
            if current is None:
                continue
            required = reference * (1.0 - tolerance)
            if current < required:
                failures[f"{kernel_name}.{backend}"] = (current, required)
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation.kernel_bench", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload size multiplier (CI smoke uses a small fraction)",
    )
    parser.add_argument("--seed", type=int, default=7, help="input seed")
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timing repeats per kernel; the median is reported",
    )
    parser.add_argument(
        "--rounds", type=int, default=1,
        help="full-suite reruns; speedups report the per-round minimum "
        "(use >1 when producing the committed reference report)",
    )
    parser.add_argument("--output", default=None, help="write the JSON report here")
    parser.add_argument(
        "--check-against", default=None,
        help="fail on speedup regressions vs this committed report",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.2,
        help="allowed fractional speedup regression for --check-against",
    )
    args = parser.parse_args(argv)
    report = run_kernel_bench(
        scale=args.scale, seed=args.seed, repeats=args.repeats, rounds=args.rounds
    )
    rendered = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
    print(rendered)
    if args.check_against:
        with open(args.check_against) as handle:
            committed = json.load(handle)
        failures = _check_regressions(report, committed, args.tolerance)
        if failures:
            print(
                f"FAIL: kernel speedups regressed past {args.tolerance:.0%}: "
                + ", ".join(
                    f"{name} {cur:.2f}x < {req:.2f}x"
                    for name, (cur, req) in sorted(failures.items())
                ),
                file=sys.stderr,
            )
            return 1
        print(f"OK: no kernel speedup regressed past {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
