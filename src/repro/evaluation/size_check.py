"""Physical-vs-modelled succinct-trie size check.

The paper charges SuRF (and Proteus' trie layer) the memory its LOUDS-DS
encoding would occupy; since PR 5 those encodings are *materialised*
(:mod:`repro.trie.fst`), so the accounting can be audited instead of
trusted.  This driver builds the physical structures over every seeded
workload family and pins three properties:

* **size**: the measured ``FastSuccinctTrie`` footprint brackets the size
  model's per-level-minimum estimate — ``predicted <= measured <=
  predicted * (1 + tolerance)``.  The lower bound is structural (the model
  may pick dense or sparse per level independently; a physical layout must
  use a dense *prefix*), and it is met with equality whenever the
  dense-winning levels already form a prefix.  On the seeded grid the
  uniform families sit at exactly 1.0; the skewed (zipf/clustered)
  families peak at ~1.024 at the committed 5k-key scale and ~1.084 at the
  1.5k-key CI smoke scale, so the default 10% tolerance has real margin.
* **zero false negatives**: the physical SuRF answers True on every stored
  key and on every oracle-positive held-out query, for scalar and batched
  probes.
* **parity**: the succinct structures answer *identically* to their
  pointer/sorted-array references — physical SuRF vs pointer-trie SuRF,
  and ``FSTPrefixIndex`` vs ``SortedPrefixIndex`` behind Proteus.

Results go to a JSON report (the committed ``BENCH_pr5.json``):

    python -m repro.evaluation.size_check --output BENCH_pr5.json --check

``--check`` turns any violated property into a non-zero exit — the CI
smoke gate.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro import kernels
from repro.api import FilterSpec, Workload, build_filter
from repro.filters.base import TrieOracle
from repro.filters.surf import SuRF
from repro.obs.metrics import MetricsRegistry, timed
from repro.trie.fst import FSTPrefixIndex
from repro.trie.size_model import binary_trie_size_estimate
from repro.trie.sorted_index import SortedPrefixIndex

__all__ = ["run_size_check", "check_report", "main"]

#: Allowed measured/predicted overshoot.  The prefix-cutoff layout meets
#: the per-level-minimum bound exactly on the uniform families; skewed key
#: sets (whose dense-winning levels are not a prefix of the trie)
#: overshoot by ~2.4% at the committed 5k-key scale and ~8.4% on the
#: smallest (1.5k-key) CI smoke tries; 10% is the documented tolerance.
DEFAULT_TOLERANCE = 0.10

#: Every seeded workload family: the acceptance grid.
KEY_DISTS = ("uniform", "zipf", "clustered")
QUERY_FAMILIES = ("uniform", "point", "correlated", "mixed")


def _surf_record(
    workload: Workload, oracle_truth: np.ndarray, max_depth: int | None
) -> dict:
    """Build pointer and physical SuRF at one depth; measure and compare."""
    keys = workload.keys
    pointer = SuRF(keys, workload.width, max_depth)
    physical = SuRF(keys, workload.width, max_depth, physical=True)
    predicted = physical.modelled_size_in_bits()
    measured = physical.size_in_bits()
    point_answers = physical.may_contain_many(keys.keys)
    range_answers = physical.may_intersect_many(workload.queries)
    pointer_ranges = pointer.may_intersect_many(workload.queries)
    scalar_sample = [
        physical.may_intersect(lo, hi)
        for lo, hi in list(workload.queries.pairs())[:200]
    ]
    return {
        "structure": "surf",
        "max_depth": physical.max_depth,
        "trie_height": physical.trie_height(),
        "num_keys": physical.num_keys,
        "predicted_bits": predicted,
        "measured_bits": measured,
        "measured_over_predicted": measured / predicted if predicted else 1.0,
        "size_breakdown": physical.size_breakdown(),
        "point_false_negatives": int((~point_answers).sum()),
        "range_false_negatives": int((~range_answers & oracle_truth).sum()),
        "parity_mismatches": int((range_answers != pointer_ranges).sum())
        + int(scalar_sample != [bool(a) for a in range_answers[:200]]),
    }


def _prefix_index_record(workload: Workload, length: int) -> dict:
    """Compare ``FSTPrefixIndex`` against ``SortedPrefixIndex`` at one depth."""
    arr = workload.keys.keys
    width = workload.width
    sorted_index = SortedPrefixIndex.from_keys(arr, length, width)
    fst_index = FSTPrefixIndex.from_keys(arr, length, width)
    prefixes = workload.keys.prefixes(length)
    contains_equal = (
        fst_index.contains_many(prefixes) == sorted_index.contains_many(prefixes)
    ).all()
    overlaps_fst = fst_index.overlaps_many(workload.queries.los, workload.queries.his)
    overlaps_sorted = sorted_index.overlaps_many(
        workload.queries.los, workload.queries.his
    )
    return {
        "structure": "prefix_index",
        "length": length,
        "num_prefixes": len(fst_index),
        "measured_bits": fst_index.size_in_bits(),
        # Informational: the bit-granular trie the budget charges is a
        # different structure (2 bits per binary node), not a bound on the
        # byte-granular FST realisation.
        "charged_binary_trie_bits": binary_trie_size_estimate(
            workload.keys.prefix_counts(), length
        ),
        "parity_mismatches": int(not contains_equal)
        + int((overlaps_fst != overlaps_sorted).sum()),
        "range_false_negatives": 0,  # parity + sorted-index exactness cover FN
    }


def run_size_check(
    num_keys: int = 5_000,
    num_queries: int = 2_000,
    width: int = 32,
    seed: int = 42,
    key_dists: tuple[str, ...] = KEY_DISTS,
    query_families: tuple[str, ...] = QUERY_FAMILIES,
    tolerance: float = DEFAULT_TOLERANCE,
    metrics: MetricsRegistry | None = None,
) -> dict:
    """Audit physical trie sizes and answers across the workload grid.

    One record per (key distribution, query family, structure/depth); the
    report's ``summary`` aggregates the worst measured/predicted ratio and
    total violation counts so ``--check`` (and the committed benchmark)
    can gate on single numbers.  ``metrics`` optionally instruments the
    audit (per-cell timings, record counts, and the Proteus parity builds).
    """
    records: list[dict] = []
    proteus_parity: list[dict] = []
    for key_dist in key_dists:
        for query_family in query_families:
            workload = Workload.generate(
                num_keys, num_queries, width, seed=seed,
                key_dist=key_dist, query_family=query_family,
            )
            oracle = TrieOracle(workload.keys.keys, width)
            truth = oracle.may_intersect_many(workload.queries)
            num_bytes = (width + 7) // 8
            with timed(metrics, "size_check.cell_seconds"):
                for max_depth in sorted({min(2, num_bytes), num_bytes}):
                    record = _surf_record(workload, truth, max_depth)
                    record.update(key_dist=key_dist, query_family=query_family)
                    records.append(record)
                for length in (max(1, width // 4), max(2, width // 2)):
                    record = _prefix_index_record(workload, length)
                    record.update(key_dist=key_dist, query_family=query_family)
                    records.append(record)
        # One end-to-end Proteus build per key distribution: the FST trie
        # layer must answer exactly as the sorted-array layer.
        workload = Workload.generate(
            num_keys, num_queries, width, seed=seed,
            key_dist=key_dist, query_family="mixed",
        )
        sorted_filter = build_filter(
            FilterSpec("proteus", 14.0), None, workload, metrics=metrics
        )
        fst_filter = build_filter(
            FilterSpec("proteus", 14.0, {"trie_impl": "fst"}), None, workload,
            metrics=metrics,
        )
        answers_sorted = sorted_filter.may_intersect_many(workload.queries)
        answers_fst = fst_filter.may_intersect_many(workload.queries)
        proteus_parity.append(
            {
                "key_dist": key_dist,
                "trie_depth": fst_filter.design.trie_depth,
                "charged_trie_bits": fst_filter.design.trie_bits,
                "measured_trie_bits": fst_filter.trie_layer_measured_bits(),
                "parity_mismatches": int((answers_sorted != answers_fst).sum()),
            }
        )
    size_records = [r for r in records if r["structure"] == "surf"]
    summary = {
        "num_records": len(records),
        "worst_measured_over_predicted": max(
            r["measured_over_predicted"] for r in size_records
        ),
        "size_violations": sum(
            1
            for r in size_records
            if not (
                r["predicted_bits"]
                <= r["measured_bits"]
                <= r["predicted_bits"] * (1 + tolerance)
            )
        ),
        "false_negatives": sum(
            r["point_false_negatives"] + r["range_false_negatives"]
            for r in records
            if r["structure"] == "surf"
        )
        + sum(r["range_false_negatives"] for r in records if r["structure"] != "surf"),
        "parity_mismatches": sum(r["parity_mismatches"] for r in records)
        + sum(r["parity_mismatches"] for r in proteus_parity),
    }
    if metrics is not None:
        metrics.inc("size_check.records", len(records))
        metrics.set_gauge(
            "size_check.worst_measured_over_predicted",
            summary["worst_measured_over_predicted"],
        )
    report = {
        "config": {
            "num_keys": num_keys,
            "num_queries": num_queries,
            "width": width,
            "seed": seed,
            "key_dists": list(key_dists),
            "query_families": list(query_families),
            "tolerance": tolerance,
        },
        "records": records,
        "proteus_trie_parity": proteus_parity,
        "summary": summary,
    }
    if metrics is not None:
        report["metrics"] = metrics.to_dict()
    return report


def check_report(report: dict) -> list[str]:
    """Return the violated acceptance properties (empty means all pass)."""
    summary = report["summary"]
    violations = []
    if summary["size_violations"]:
        violations.append(
            f"{summary['size_violations']} size record(s) outside "
            f"[predicted, predicted * (1 + {report['config']['tolerance']})] "
            f"(worst ratio {summary['worst_measured_over_predicted']:.4f})"
        )
    if summary["false_negatives"]:
        violations.append(
            f"{summary['false_negatives']} false negative(s) from physical tries"
        )
    if summary["parity_mismatches"]:
        violations.append(
            f"{summary['parity_mismatches']} answer mismatch(es) between "
            f"succinct and reference structures"
        )
    return violations


def main(argv: list[str] | None = None) -> int:
    """Run the size check from the command line."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation.size_check", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--keys", type=int, default=5_000, help="number of keys")
    parser.add_argument("--queries", type=int, default=2_000, help="query count")
    parser.add_argument("--width", type=int, default=32, help="key width in bits")
    parser.add_argument("--seed", type=int, default=42, help="workload seed")
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed measured/predicted overshoot",
    )
    parser.add_argument("--output", default=None, help="write the JSON report here")
    parser.add_argument(
        "--metrics-out", default=None,
        help="instrument the audit and write the metrics payload (JSON) here",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail unless every size/FN/parity property holds",
    )
    args = parser.parse_args(argv)
    metrics = MetricsRegistry() if args.metrics_out else None
    kernels.attach_metrics(metrics)  # kernels.dispatch.{backend}.{kernel}
    try:
        report = run_size_check(
            num_keys=args.keys,
            num_queries=args.queries,
            width=args.width,
            seed=args.seed,
            tolerance=args.tolerance,
            metrics=metrics,
        )
    finally:
        kernels.attach_metrics(None)
    rendered = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
    if metrics is not None:
        payload = {
            "driver": "size_check",
            "metrics": metrics.to_dict(),
            "prometheus": metrics.to_prometheus(),
        }
        with open(args.metrics_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(rendered)
    if args.check:
        violations = check_report(report)
        if violations:
            for violation in violations:
                print(f"FAIL: {violation}", file=sys.stderr)
            return 1
        print("OK: physical sizes match the model and answers match the references")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
