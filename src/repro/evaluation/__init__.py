"""Evaluation drivers: benchmark harness and figure regeneration.

* :mod:`repro.evaluation.bench` times the batched execution paths against
  their scalar references on a seeded synthetic workload
  (``python -m repro.evaluation.bench``).
* :mod:`repro.evaluation.sweep` regenerates the paper's core figure family
  — FPR vs bits-per-key curves for every registered filter family, built
  purely through the :mod:`repro.api` registry and measured against the
  exact oracle (``python -m repro.evaluation.sweep``).
* :mod:`repro.evaluation.lsm_bench` replays point/range/mixed workloads
  through the per-SST-filtered LSM tree and reports block-read savings
  versus the no-filter and whole-key-Bloom baselines
  (``python -m repro.evaluation.lsm_bench``).
* :mod:`repro.evaluation.size_check` audits the physical succinct tries:
  measured LOUDS-DS footprints vs the size model's predictions, zero
  false negatives and succinct-vs-reference answer parity across every
  seeded workload family (``python -m repro.evaluation.size_check``).
* :mod:`repro.evaluation.serve_bench` measures the sharded serving layer
  — sustained QPS and micro-batched p50/p95/p99 latency per filter
  family and shard count, every answer cross-checked, with a
  machine-portable scaling regression gate
  (``python -m repro.evaluation.serve_bench``).
"""

__all__ = [
    "run_benchmarks",
    "run_sweep",
    "check_monotone",
    "run_lsm_bench",
    "run_size_check",
    "run_serve_bench",
    "check_serve_report",
]

_LAZY = {
    "run_benchmarks": "repro.evaluation.bench",
    "run_sweep": "repro.evaluation.sweep",
    "check_monotone": "repro.evaluation.sweep",
    "run_lsm_bench": "repro.evaluation.lsm_bench",
    "run_size_check": "repro.evaluation.size_check",
    "run_serve_bench": "repro.evaluation.serve_bench",
    "check_serve_report": "repro.evaluation.serve_bench",
}


def __getattr__(name: str):
    # Lazy (PEP 562), and not only for style: an eager `from .bench import`
    # here would make `python -m repro.evaluation.bench` re-execute the
    # module found in sys.modules (runpy RuntimeWarning).
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    from importlib import import_module

    return getattr(import_module(module_name), name)
