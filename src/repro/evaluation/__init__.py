"""Evaluation drivers: benchmark harness and (planned) figure regeneration.

:mod:`repro.evaluation.bench` times the batched execution paths against
their scalar references on a seeded synthetic workload and emits a JSON
report — run it with ``python -m repro.evaluation.bench``.  Drivers that
regenerate the paper's FPR-vs-bits-per-key figures will join it here.
"""

__all__ = ["run_benchmarks"]


def __getattr__(name: str):
    # Lazy (PEP 562), and not only for style: an eager `from .bench import`
    # here would make `python -m repro.evaluation.bench` re-execute the
    # module found in sys.modules (runpy RuntimeWarning).
    if name == "run_benchmarks":
        from repro.evaluation.bench import run_benchmarks

        return run_benchmarks
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
