"""Benchmark harness: batched execution paths vs their scalar references.

Times the three hot paths the batched refactor targets, on one seeded
synthetic workload (defaults: 10k uniform keys, 4k mixed queries, 32-bit
space):

* **model build** — CPFPR preprocessing (per-query ``lcp(q, K)`` and the
  prefix-count profile), scalar bisect loop vs numpy batch;
* **design search** — Algorithm 1 over the full Proteus design space,
  evaluating every candidate against all sample queries: pure-Python inner
  loop vs the vectorised model (the paper's ~10^3 designs x 10^3 queries
  sweep);
* **probe** — answering every sample query through the built Proteus
  filter, per-query ``may_intersect`` loop vs ``may_intersect_many``, plus
  the same comparison for Bloom point probes and bulk inserts.

Each section verifies the two paths agree (identical chosen design,
identical filter answers) before reporting, so a speedup can never be
bought with a wrong answer.  Results go to a JSON report:

    python -m repro.evaluation.bench --output BENCH_pr2.json

``--min-speedup X`` makes the run fail unless the design-search and probe
speedups both reach ``X`` (CI smoke-tests use a tiny workload with the
check disabled; the committed ``BENCH_pr2.json`` documents >= 10x on the
default workload).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from typing import Callable

import numpy as np

from repro.core.cpfpr import CPFPRModel
from repro.core.design import design_proteus
from repro.core.proteus import Proteus
from repro.workloads.generators import generate_workload

__all__ = ["run_benchmarks", "main"]


def _time(fn: Callable[[], object], repeats: int = 5) -> tuple[float, object]:
    """Return ``(median_seconds, last_result)`` over ``repeats`` runs.

    The median is robust against one-off scheduler jitter in both
    directions — unlike best-of-N, it cannot be bought by a single lucky
    run, which matters once reports gate CI regressions.
    """
    samples: list[float] = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples), result


def run_benchmarks(
    num_keys: int = 10_000,
    num_queries: int = 4_000,
    width: int = 32,
    seed: int = 42,
    bits_per_key: float = 12.0,
    key_dist: str = "uniform",
    query_family: str = "mixed",
    repeats: int = 5,
) -> dict:
    """Run every section and return the JSON-ready report dict."""
    key_set, batch = generate_workload(
        num_keys, num_queries, width, seed=seed,
        key_dist=key_dist, query_family=query_family,
    )
    keys_list = key_set.as_list()
    query_pairs = batch.to_list()
    budget = max(1, int(bits_per_key * len(key_set)))
    report: dict = {
        "workload": {
            "num_keys": len(key_set),
            "num_queries": len(batch),
            "width": width,
            "seed": seed,
            "bits_per_key": bits_per_key,
            "key_dist": key_dist,
            "query_family": query_family,
            "total_bits": budget,
        },
        "benchmarks": {},
        "speedups": {},
    }

    # -- model build: per-query LCP + prefix-count preprocessing ---------- #
    t_scalar, scalar_model = _time(
        lambda: CPFPRModel(keys_list, width, query_pairs, vectorize=False), repeats
    )
    t_vector, vector_model = _time(
        lambda: CPFPRModel(key_set, width, batch), repeats
    )
    assert isinstance(scalar_model, CPFPRModel) and isinstance(vector_model, CPFPRModel)
    if vector_model.empty_queries != scalar_model.empty_queries:
        raise AssertionError("vectorised model preprocessing diverged from scalar")
    report["benchmarks"]["model_build"] = {
        "scalar_seconds": t_scalar,
        "batched_seconds": t_vector,
        "num_empty_queries": vector_model.num_empty_queries,
    }
    report["speedups"]["model_build"] = t_scalar / t_vector

    # -- design search: Algorithm 1 over the Proteus design space --------- #
    # The scalar sweep is the expensive path; run it once, the vector sweep
    # with the configured repeats.
    t_scalar, scalar_design = _time(lambda: design_proteus(scalar_model, budget), 1)
    t_vector, vector_design = _time(lambda: design_proteus(vector_model, budget), repeats)
    same_point = (
        scalar_design.kind == vector_design.kind
        and scalar_design.trie_depth == vector_design.trie_depth
        and scalar_design.bloom_prefix_len == vector_design.bloom_prefix_len
        and scalar_design.trie_bits == vector_design.trie_bits
        and scalar_design.bloom_bits == vector_design.bloom_bits
    )
    if not same_point:
        raise AssertionError(
            f"design divergence: scalar {scalar_design} vs batched {vector_design}"
        )
    report["benchmarks"]["design_search"] = {
        "scalar_seconds": t_scalar,
        "batched_seconds": t_vector,
        "chosen_design": {
            "kind": vector_design.kind,
            "trie_depth": vector_design.trie_depth,
            "bloom_prefix_len": vector_design.bloom_prefix_len,
            "trie_bits": vector_design.trie_bits,
            "bloom_bits": vector_design.bloom_bits,
            "expected_fpr": vector_design.expected_fpr,
        },
    }
    report["speedups"]["design_search"] = t_scalar / t_vector

    # -- probe: range queries through the built Proteus filter ------------ #
    filt = Proteus(key_set.keys, width, vector_design)
    t_scalar, scalar_answers = _time(
        lambda: [filt.may_intersect(lo, hi) for lo, hi in query_pairs], repeats
    )
    t_vector, vector_answers = _time(lambda: filt.may_intersect_many(batch), repeats)
    if list(vector_answers) != scalar_answers:
        raise AssertionError("batched probe answers diverged from the scalar loop")
    report["benchmarks"]["range_probe"] = {
        "scalar_seconds": t_scalar,
        "batched_seconds": t_vector,
        "positives": int(np.asarray(vector_answers).sum()),
    }
    report["speedups"]["range_probe"] = t_scalar / t_vector

    # -- Bloom layer: bulk point probes over the same prefix stream ------- #
    bloom = filt._bloom
    if bloom is not None:
        shift = np.int64(width - vector_design.bloom_prefix_len)
        probe_prefixes = np.concatenate([key_set.keys, batch.los]) >> shift
        t_scalar, scalar_hits = _time(
            lambda: [bloom.contains(p) for p in probe_prefixes.tolist()], repeats
        )
        t_vector, vector_hits = _time(
            lambda: bloom.contains_many(probe_prefixes), repeats
        )
        if list(vector_hits) != scalar_hits:
            raise AssertionError("bulk Bloom probes diverged from the scalar loop")
        report["benchmarks"]["bloom_point_probe"] = {
            "scalar_seconds": t_scalar,
            "batched_seconds": t_vector,
            "num_probes": int(probe_prefixes.size),
        }
        report["speedups"]["bloom_point_probe"] = t_scalar / t_vector

    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation.bench", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--keys", type=int, default=10_000, help="number of keys")
    parser.add_argument("--queries", type=int, default=4_000, help="number of sample queries")
    parser.add_argument("--width", type=int, default=32, help="key width in bits")
    parser.add_argument("--seed", type=int, default=42, help="workload seed")
    parser.add_argument("--bits-per-key", type=float, default=12.0)
    parser.add_argument(
        "--key-dist", default="uniform", choices=("uniform", "zipf", "clustered")
    )
    parser.add_argument(
        "--query-family", default="mixed",
        choices=("uniform", "point", "correlated", "mixed"),
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timing repeats per section; the median is reported",
    )
    parser.add_argument("--output", default=None, help="write the JSON report here")
    parser.add_argument(
        "--min-speedup", type=float, default=0.0,
        help="fail unless design-search and range-probe speedups reach this",
    )
    args = parser.parse_args(argv)
    report = run_benchmarks(
        num_keys=args.keys,
        num_queries=args.queries,
        width=args.width,
        seed=args.seed,
        bits_per_key=args.bits_per_key,
        key_dist=args.key_dist,
        query_family=args.query_family,
        repeats=args.repeats,
    )
    rendered = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
    print(rendered)
    if args.min_speedup > 0:
        gating = {
            name: report["speedups"][name] for name in ("design_search", "range_probe")
        }
        failing = {k: v for k, v in gating.items() if v < args.min_speedup}
        if failing:
            print(
                f"FAIL: speedups below {args.min_speedup}x: {failing}", file=sys.stderr
            )
            return 1
        print(f"OK: gating speedups all >= {args.min_speedup}x: {gating}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
