"""LSM end-to-end benchmark: per-SST filters vs block reads (Fig. 9 family).

The paper's headline deployment result is Proteus inside RocksDB — one
range filter per SST, each self-designed from a shared query sample,
cutting the I/O spent on empty point and range lookups.  This driver
replays that experiment on the simulated substrate:

* one seeded workload is generated; its query sample is the *design*
  sample every self-designing filter family optimises against;
* one leveled :class:`~repro.lsm.tree.LSMTree` is built over the keys —
  the tree (geometry, key placement, fences) is shared by every
  configuration, only the attached filters change;
* the **no-filter baseline** reads every fence-surviving SST; each filter
  family then attaches per-SST filters at the same global bits-per-key
  budget (split by :mod:`repro.api.budget`) and replays the same held-out
  query batch;
* the report counts charged block reads, the paper's false-positive block
  reads (reads of SSTs that held no matching key), per-level filter
  memory, and each family's I/O savings against the no-filter and the
  whole-key-Bloom baselines.

Any *missed* read — a truly-matching SST rejected by its filter — fails
the run: I/O savings can never be bought with a dropped key.

    python -m repro.evaluation.lsm_bench --output BENCH_pr4.json

``--check`` enforces the paper's qualitative ordering (the CI smoke gate):
every filtered configuration does no more I/O than the no-filter baseline,
every filtered configuration strictly reduces false-positive block reads,
and Proteus's false-positive block reads are at or below every other
filtered family's at the shared budget.

``--timeline`` switches to the *online* benchmark
(:mod:`repro.evaluation.timeline`): two
:class:`~repro.lsm.online.OnlineLSMTree` instances — one frozen, one
running the :class:`~repro.lsm.lifecycle.FilterLifecycle` closed loop —
ingest the same write stream interleaved with query epochs, with a forced
uniform→correlated query shift at ``--shift-epoch``.  There ``--check``
gates the closed loop instead: zero missed reads throughout, the actuator
fires, and the adaptive tree strictly beats the frozen tree's
false-positive block reads every post-shift epoch.

    python -m repro.evaluation.lsm_bench --timeline --check
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro import kernels
from repro.api import FilterSpec, Workload, family as family_entry
from repro.evaluation.sweep import held_out_queries
from repro.evaluation.timeline import check_timeline_report, run_timeline_bench
from repro.lsm import CostModel, LSMTree
from repro.obs.drift import DriftMonitor, predicted_tree_fpr
from repro.obs.metrics import MetricsRegistry, timed
from repro.obs.trace import ProbeTrace
from repro.workloads.datasets import list_datasets, load_dataset

__all__ = ["DEFAULT_FAMILIES", "run_lsm_bench", "check_report", "main"]

#: Filter families attached per SST, in report order; the no-filter
#: baseline is always measured and needs no listing.
DEFAULT_FAMILIES = ("bloom", "prefix_bloom", "surf", "rosetta", "proteus")

#: The config key of the always-present unfiltered baseline.
NO_FILTER = "no_filter"


def _probe_config(
    tree: LSMTree,
    eval_batch,
    model: CostModel,
    name: str,
    metrics: MetricsRegistry | None = None,
    trace_sample: int = 0,
):
    """Probe the tree as currently configured and summarise one config.

    Returns ``(config, result)`` — the JSON-ready summary plus the raw
    :class:`~repro.lsm.cost.ProbeResult` (the caller's drift monitor chunks
    its per-query arrays).  ``trace_sample > 0`` replays the first that many
    queries with a :class:`~repro.obs.trace.ProbeTrace` attached and fails
    the run unless the trace totals reconcile *exactly* against the replay's
    ProbeResult.
    """
    with timed(metrics, "probe.seconds"):
        result = tree.probe(eval_batch)
    missed = int(result.missed_reads.sum())
    if missed:
        raise AssertionError(
            f"{name}: {missed} missed reads — a filter rejected an SST that "
            f"held a matching key (false negative)"
        )
    if metrics is not None:
        metrics.inc("probe.configs")
        metrics.inc("probe.queries", result.num_queries)
        metrics.inc("probe.blocks_read", result.total_blocks_read())
        metrics.inc("probe.false_positive_reads", result.total_false_positive_reads())
    filter_bits = tree.filter_size_bits()
    config = {
        "filter_bits": filter_bits,
        "filter_bits_per_key": filter_bits / tree.num_keys,
        "filter_bits_per_level": tree.filter_bits_per_level(),
        "probe": result.to_dict(model),
    }
    if trace_sample > 0:
        sample = min(int(trace_sample), len(eval_batch))
        sub_batch = eval_batch.select(np.arange(sample))
        trace = ProbeTrace()
        sub_result = tree.probe(sub_batch, trace=trace)
        mismatches = trace.reconcile(sub_result)
        if mismatches:
            raise AssertionError(
                f"{name}: probe trace does not reconcile with ProbeResult: "
                + "; ".join(mismatches)
            )
        config["trace"] = {
            **trace.to_dict(max_events=16),
            "num_queries": sample,
            "reconciled": True,
        }
    return config, result


def run_lsm_bench(
    families: tuple[str, ...] = DEFAULT_FAMILIES,
    bits_per_key: float = 14.0,
    num_keys: int = 10_000,
    num_queries: int = 4_000,
    num_eval_queries: int | None = None,
    width: int = 32,
    seed: int = 42,
    key_dist: str = "uniform",
    query_family: str = "mixed",
    sst_keys: int = 512,
    fanout: int = 4,
    policy: str = "proportional",
    cost_model: CostModel | None = None,
    metrics: MetricsRegistry | None = None,
    trace_sample: int = 0,
    drift_batches: int = 8,
    dataset: str | None = None,
) -> dict:
    """Run every configuration over one shared tree; return the JSON report.

    ``metrics`` threads a :class:`~repro.obs.metrics.MetricsRegistry`
    through every build and probe (the report then grows a ``metrics``
    section); ``trace_sample`` replays that many queries per config under a
    reconciled :class:`~repro.obs.trace.ProbeTrace`; ``drift_batches``
    splits each filtered config's evaluation into that many batches for an
    online :class:`~repro.obs.drift.DriftMonitor` comparison of observed vs
    CPFPR-predicted FPR (families without a prediction are skipped).
    ``dataset`` swaps the synthetic workload for a named loader from
    :mod:`repro.workloads.datasets` — the tree build, the budget split,
    and the probe accounting below are representation-blind.
    """
    for name in families:
        if family_entry(name).budget_free:
            raise ValueError(
                f"family {name!r} ignores the bit budget; it cannot share the "
                f"per-SST budget comparison"
            )
    model = cost_model or CostModel()
    if dataset is not None:
        workload = load_dataset(dataset, num_keys, num_queries, seed=seed)
    else:
        workload = Workload.generate(
            num_keys,
            num_queries,
            width,
            seed=seed,
            key_dist=key_dist,
            query_family=query_family,
        )
    eval_batch = held_out_queries(
        workload, num_eval_queries or num_queries, seed + 1, query_family
    )
    tree = LSMTree.build(workload.keys, sst_keys=sst_keys, fanout=fanout, seed=seed)
    # Describe the bare geometry (no filters yet): per-config filter memory
    # lives under each config, not in the shared tree section.
    tree_summary = tree.describe()
    configs: dict[str, dict] = {}
    baseline, _ = _probe_config(
        tree, eval_batch, model, NO_FILTER, metrics, trace_sample
    )
    baseline["spec"] = None
    configs[NO_FILTER] = baseline
    required_reads = baseline["probe"]["required_reads"]
    for name in families:
        spec = FilterSpec(name, bits_per_key)
        tree.attach_filters(spec, workload, policy=policy, metrics=metrics)
        config, result = _probe_config(
            tree, eval_batch, model, name, metrics, trace_sample
        )
        config["spec"] = spec.to_dict()
        predicted = predicted_tree_fpr(tree)
        if predicted is not None and drift_batches > 0:
            # Replay the held-out evaluation as an online stream: chunk the
            # per-query accounting into batches and let the monitor grade
            # the observed FPR (per empty (query, SST) pair) against the
            # key-count-weighted CPFPR prediction of the attached filters.
            monitor = DriftMonitor(predicted)
            for chunk in np.array_split(np.arange(result.num_queries), drift_batches):
                if chunk.size == 0:
                    continue
                required = int(result.required_reads[chunk].sum())
                monitor.observe(
                    int(result.false_positive_reads[chunk].sum()),
                    int(chunk.size) * tree.num_ssts - required,
                )
            config["drift"] = monitor.to_dict()
            if metrics is not None:
                metrics.inc("drift.batches", monitor.num_batches)
                metrics.inc("drift.flags", monitor.num_drift_flags)
        # The tree and queries are shared, so ground truth cannot move.
        if config["probe"]["required_reads"] != required_reads:
            raise AssertionError(
                f"{name}: required reads changed across configs "
                f"({config['probe']['required_reads']} != {required_reads})"
            )
        for metric in ("blocks_read", "false_positive_reads", "io_cost"):
            base_value = baseline["probe"][metric]
            config.setdefault("savings_vs_no_filter", {})[metric] = (
                1.0 - config["probe"][metric] / base_value if base_value else 0.0
            )
        configs[name] = config
    report = {
        "workload": workload.describe(),
        "evaluation": {
            "num_queries": len(eval_batch),
            "num_empty_queries": baseline["probe"]["num_empty_queries"],
            "query_family": query_family,
            "seed": seed + 1,
        },
        "tree": tree_summary,
        "cost_model": model.to_dict(),
        "bits_per_key": float(bits_per_key),
        "budget_policy": policy,
        "configs": configs,
    }
    if metrics is not None:
        report["metrics"] = metrics.to_dict()
    return report


def check_report(report: dict) -> list[str]:
    """Return violations of the paper's qualitative end-to-end ordering.

    * no filtered configuration may do more I/O (blocks read, charged cost)
      than the no-filter baseline;
    * every filtered configuration must strictly reduce false-positive
      block reads (when the baseline has any to reduce);
    * Proteus, when present, must have false-positive block reads at or
      below every other filtered family's — the self-designed filter earns
      its place at the shared budget.
    """
    violations = []
    configs = report["configs"]
    baseline = configs[NO_FILTER]["probe"]
    filtered = {name: c for name, c in configs.items() if name != NO_FILTER}
    for name, config in filtered.items():
        probe = config["probe"]
        if probe["missed_reads"]:
            violations.append(f"{name}: {probe['missed_reads']} missed reads")
        for metric in ("blocks_read", "io_cost"):
            if probe[metric] > baseline[metric]:
                violations.append(
                    f"{name}: {metric} {probe[metric]} exceeds the no-filter "
                    f"baseline's {baseline[metric]}"
                )
        if baseline["false_positive_reads"] > 0:
            if probe["false_positive_reads"] >= baseline["false_positive_reads"]:
                violations.append(
                    f"{name}: false-positive reads {probe['false_positive_reads']} "
                    f"not reduced from the no-filter baseline's "
                    f"{baseline['false_positive_reads']}"
                )
    if "proteus" in filtered:
        proteus_fp = filtered["proteus"]["probe"]["false_positive_reads"]
        for name, config in filtered.items():
            if name == "proteus":
                continue
            other_fp = config["probe"]["false_positive_reads"]
            if proteus_fp > other_fp:
                violations.append(
                    f"proteus: false-positive reads {proteus_fp} exceed "
                    f"{name}'s {other_fp} at the shared budget"
                )
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation.lsm_bench",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--families",
        default=",".join(DEFAULT_FAMILIES),
        help="comma-separated filter families to attach per SST "
        "(the no-filter baseline always runs)",
    )
    parser.add_argument(
        "--bits-per-key",
        type=float,
        default=14.0,
        help="global filter memory budget, split across SSTs",
    )
    parser.add_argument("--keys", type=int, default=10_000, help="number of keys")
    parser.add_argument(
        "--queries", type=int, default=4_000, help="design-sample query count"
    )
    parser.add_argument(
        "--eval-queries",
        type=int,
        default=None,
        help="held-out query count (defaults to --queries)",
    )
    parser.add_argument("--width", type=int, default=32, help="key width in bits")
    parser.add_argument("--seed", type=int, default=42, help="workload + tree seed")
    parser.add_argument(
        "--key-dist", default="uniform", choices=("uniform", "zipf", "clustered")
    )
    parser.add_argument(
        "--query-family",
        default="mixed",
        choices=("uniform", "point", "correlated", "mixed"),
    )
    parser.add_argument(
        "--dataset",
        default=None,
        choices=list_datasets(),
        help="swap the synthetic workload for a named dataset loader "
        "(overrides --width/--key-dist/--query-family; static mode only)",
    )
    parser.add_argument(
        "--sst-keys", type=int, default=512, help="SST capacity in keys"
    )
    parser.add_argument(
        "--fanout", type=int, default=4, help="level-size growth factor"
    )
    parser.add_argument(
        "--policy",
        default="proportional",
        choices=("proportional", "equal"),
        help="how the global budget splits across SSTs",
    )
    parser.add_argument(
        "--block-read-cost",
        type=float,
        default=1.0,
        help="charge per data-block read",
    )
    parser.add_argument(
        "--filter-probe-cost",
        type=float,
        default=0.0,
        help="charge per filter probe (CPU; the paper reports pure I/O)",
    )
    parser.add_argument("--output", default=None, help="write the JSON report here")
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="instrument every build and probe, and write the standalone "
        "metrics payload (JSON) here",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=0,
        help="per config, replay this many queries under a ProbeTrace and "
        "fail unless the trace reconciles exactly with the ProbeResult",
    )
    parser.add_argument(
        "--drift-batches",
        type=int,
        default=8,
        help="batches the evaluation splits into for the online "
        "predicted-vs-observed FPR drift monitor (0 disables)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless the paper's qualitative I/O ordering holds "
        "(with --timeline: unless the closed loop beats the frozen tree)",
    )
    timeline = parser.add_argument_group(
        "timeline mode", "online write path under a forced query shift"
    )
    timeline.add_argument(
        "--timeline",
        action="store_true",
        help="run the online adaptive-vs-frozen timeline benchmark instead "
        "of the static family comparison",
    )
    timeline.add_argument(
        "--timeline-family",
        default="proteus",
        help="filter family both online trees build per SST",
    )
    timeline.add_argument(
        "--epochs", type=int, default=6, help="interleaved write/query epochs"
    )
    timeline.add_argument(
        "--writes-per-epoch", type=int, default=1024, help="write ops per epoch"
    )
    timeline.add_argument(
        "--queries-per-epoch", type=int, default=512, help="queries per epoch"
    )
    timeline.add_argument(
        "--preload", type=int, default=4096, help="keys inserted before epoch 0"
    )
    timeline.add_argument(
        "--shift-epoch",
        type=int,
        default=2,
        help="epoch at which the query mix shifts uniform→correlated",
    )
    timeline.add_argument(
        "--grace-epochs",
        type=int,
        default=1,
        help="post-shift epochs the gate grants the loop to sense and rebuild",
    )
    timeline.add_argument(
        "--level0-runs",
        type=int,
        default=4,
        help="level-0 run count that triggers compaction",
    )
    timeline.add_argument(
        "--delete-fraction",
        type=float,
        default=0.1,
        help="fraction of write ops that are deletes (tombstones)",
    )
    timeline.add_argument(
        "--design-queries",
        type=int,
        default=1024,
        help="size of the initial (pre-shift) design sample",
    )
    timeline.add_argument(
        "--drift-window",
        type=int,
        default=4,
        help="per-SST drift monitor window in epochs",
    )
    timeline.add_argument(
        "--drift-min-empty",
        type=int,
        default=16,
        help="empty trials a per-SST window needs before it may flag",
    )
    args = parser.parse_args(argv)
    if args.timeline and args.dataset:
        parser.error("--dataset applies to the static benchmark only")
    metrics = MetricsRegistry() if args.metrics_out else None
    kernels.attach_metrics(metrics)  # kernels.dispatch.{backend}.{kernel}
    try:
        if args.timeline:
            report = run_timeline_bench(
                family=args.timeline_family,
                bits_per_key=args.bits_per_key,
                num_epochs=args.epochs,
                writes_per_epoch=args.writes_per_epoch,
                queries_per_epoch=args.queries_per_epoch,
                preload=args.preload,
                shift_epoch=args.shift_epoch,
                grace_epochs=args.grace_epochs,
                width=args.width,
                seed=args.seed,
                key_dist=args.key_dist,
                delete_fraction=args.delete_fraction,
                design_queries=args.design_queries,
                sst_keys=args.sst_keys,
                fanout=args.fanout,
                level0_runs=args.level0_runs,
                policy=args.policy,
                drift_window=args.drift_window,
                drift_min_empty=args.drift_min_empty,
                cost_model=CostModel(args.block_read_cost, args.filter_probe_cost),
                metrics=metrics,
            )
        else:
            report = run_lsm_bench(
                families=tuple(name for name in args.families.split(",") if name),
                bits_per_key=args.bits_per_key,
                num_keys=args.keys,
                num_queries=args.queries,
                num_eval_queries=args.eval_queries,
                width=args.width,
                seed=args.seed,
                key_dist=args.key_dist,
                query_family=args.query_family,
                sst_keys=args.sst_keys,
                fanout=args.fanout,
                policy=args.policy,
                cost_model=CostModel(args.block_read_cost, args.filter_probe_cost),
                metrics=metrics,
                trace_sample=args.trace_sample,
                drift_batches=args.drift_batches,
                dataset=args.dataset,
            )
    finally:
        kernels.attach_metrics(None)
    rendered = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
    if metrics is not None:
        payload = {
            "driver": "lsm_bench.timeline" if args.timeline else "lsm_bench",
            "metrics": metrics.to_dict(),
            "prometheus": metrics.to_prometheus(),
        }
        if not args.timeline:
            payload["traces"] = {
                name: config["trace"]
                for name, config in report["configs"].items()
                if "trace" in config
            }
            payload["drift"] = {
                name: config["drift"]
                for name, config in report["configs"].items()
                if "drift" in config
            }
        else:
            payload["drift"] = {
                "lifecycle": report["lifecycle"],
                "per_epoch": [
                    {"epoch": r["epoch"], **r["adaptive"]["drift"]}
                    for r in report["epochs"]
                ],
            }
        with open(args.metrics_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(rendered)
    if args.check:
        if args.timeline:
            violations = check_timeline_report(report)
        else:
            violations = check_report(report)
        if violations:
            for violation in violations:
                print(f"FAIL: {violation}", file=sys.stderr)
            return 1
        if args.timeline:
            print(
                "OK: zero missed reads throughout and the adaptive tree "
                "strictly beats frozen Proteus every post-shift epoch"
            )
        else:
            print(
                "OK: every filtered configuration beats the no-filter baseline "
                "and Proteus holds the lowest false-positive block reads"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
