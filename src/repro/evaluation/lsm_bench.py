"""LSM end-to-end benchmark: per-SST filters vs block reads (Fig. 9 family).

The paper's headline deployment result is Proteus inside RocksDB — one
range filter per SST, each self-designed from a shared query sample,
cutting the I/O spent on empty point and range lookups.  This driver
replays that experiment on the simulated substrate:

* one seeded workload is generated; its query sample is the *design*
  sample every self-designing filter family optimises against;
* one leveled :class:`~repro.lsm.tree.LSMTree` is built over the keys —
  the tree (geometry, key placement, fences) is shared by every
  configuration, only the attached filters change;
* the **no-filter baseline** reads every fence-surviving SST; each filter
  family then attaches per-SST filters at the same global bits-per-key
  budget (split by :mod:`repro.api.budget`) and replays the same held-out
  query batch;
* the report counts charged block reads, the paper's false-positive block
  reads (reads of SSTs that held no matching key), per-level filter
  memory, and each family's I/O savings against the no-filter and the
  whole-key-Bloom baselines.

Any *missed* read — a truly-matching SST rejected by its filter — fails
the run: I/O savings can never be bought with a dropped key.

    python -m repro.evaluation.lsm_bench --output BENCH_pr4.json

``--check`` enforces the paper's qualitative ordering (the CI smoke gate):
every filtered configuration does no more I/O than the no-filter baseline,
every filtered configuration strictly reduces false-positive block reads,
and Proteus's false-positive block reads are at or below every other
filtered family's at the shared budget.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.api import FilterSpec, Workload, family as family_entry
from repro.evaluation.sweep import held_out_queries
from repro.lsm import CostModel, LSMTree

__all__ = ["DEFAULT_FAMILIES", "run_lsm_bench", "check_report", "main"]

#: Filter families attached per SST, in report order; the no-filter
#: baseline is always measured and needs no listing.
DEFAULT_FAMILIES = ("bloom", "prefix_bloom", "surf", "rosetta", "proteus")

#: The config key of the always-present unfiltered baseline.
NO_FILTER = "no_filter"


def _probe_config(tree: LSMTree, eval_batch, model: CostModel, name: str) -> dict:
    """Probe the tree as currently configured and summarise one config."""
    result = tree.probe(eval_batch)
    missed = int(result.missed_reads.sum())
    if missed:
        raise AssertionError(
            f"{name}: {missed} missed reads — a filter rejected an SST that "
            f"held a matching key (false negative)"
        )
    filter_bits = tree.filter_size_bits()
    return {
        "filter_bits": filter_bits,
        "filter_bits_per_key": filter_bits / tree.num_keys,
        "filter_bits_per_level": tree.filter_bits_per_level(),
        "probe": result.to_dict(model),
    }


def run_lsm_bench(
    families: tuple[str, ...] = DEFAULT_FAMILIES,
    bits_per_key: float = 14.0,
    num_keys: int = 10_000,
    num_queries: int = 4_000,
    num_eval_queries: int | None = None,
    width: int = 32,
    seed: int = 42,
    key_dist: str = "uniform",
    query_family: str = "mixed",
    sst_keys: int = 512,
    fanout: int = 4,
    policy: str = "proportional",
    cost_model: CostModel | None = None,
) -> dict:
    """Run every configuration over one shared tree; return the JSON report."""
    for name in families:
        if family_entry(name).budget_free:
            raise ValueError(
                f"family {name!r} ignores the bit budget; it cannot share the "
                f"per-SST budget comparison"
            )
    model = cost_model or CostModel()
    workload = Workload.generate(
        num_keys,
        num_queries,
        width,
        seed=seed,
        key_dist=key_dist,
        query_family=query_family,
    )
    eval_batch = held_out_queries(
        workload, num_eval_queries or num_queries, seed + 1, query_family
    )
    tree = LSMTree.build(workload.keys, sst_keys=sst_keys, fanout=fanout, seed=seed)
    # Describe the bare geometry (no filters yet): per-config filter memory
    # lives under each config, not in the shared tree section.
    tree_summary = tree.describe()
    configs: dict[str, dict] = {}
    baseline = _probe_config(tree, eval_batch, model, NO_FILTER)
    baseline["spec"] = None
    configs[NO_FILTER] = baseline
    required_reads = baseline["probe"]["required_reads"]
    for name in families:
        spec = FilterSpec(name, bits_per_key)
        tree.attach_filters(spec, workload, policy=policy)
        config = _probe_config(tree, eval_batch, model, name)
        config["spec"] = spec.to_dict()
        # The tree and queries are shared, so ground truth cannot move.
        if config["probe"]["required_reads"] != required_reads:
            raise AssertionError(
                f"{name}: required reads changed across configs "
                f"({config['probe']['required_reads']} != {required_reads})"
            )
        for metric in ("blocks_read", "false_positive_reads", "io_cost"):
            base_value = baseline["probe"][metric]
            config.setdefault("savings_vs_no_filter", {})[metric] = (
                1.0 - config["probe"][metric] / base_value if base_value else 0.0
            )
        configs[name] = config
    return {
        "workload": workload.describe(),
        "evaluation": {
            "num_queries": len(eval_batch),
            "num_empty_queries": baseline["probe"]["num_empty_queries"],
            "query_family": query_family,
            "seed": seed + 1,
        },
        "tree": tree_summary,
        "cost_model": model.to_dict(),
        "bits_per_key": float(bits_per_key),
        "budget_policy": policy,
        "configs": configs,
    }


def check_report(report: dict) -> list[str]:
    """Return violations of the paper's qualitative end-to-end ordering.

    * no filtered configuration may do more I/O (blocks read, charged cost)
      than the no-filter baseline;
    * every filtered configuration must strictly reduce false-positive
      block reads (when the baseline has any to reduce);
    * Proteus, when present, must have false-positive block reads at or
      below every other filtered family's — the self-designed filter earns
      its place at the shared budget.
    """
    violations = []
    configs = report["configs"]
    baseline = configs[NO_FILTER]["probe"]
    filtered = {name: c for name, c in configs.items() if name != NO_FILTER}
    for name, config in filtered.items():
        probe = config["probe"]
        if probe["missed_reads"]:
            violations.append(f"{name}: {probe['missed_reads']} missed reads")
        for metric in ("blocks_read", "io_cost"):
            if probe[metric] > baseline[metric]:
                violations.append(
                    f"{name}: {metric} {probe[metric]} exceeds the no-filter "
                    f"baseline's {baseline[metric]}"
                )
        if baseline["false_positive_reads"] > 0:
            if probe["false_positive_reads"] >= baseline["false_positive_reads"]:
                violations.append(
                    f"{name}: false-positive reads {probe['false_positive_reads']} "
                    f"not reduced from the no-filter baseline's "
                    f"{baseline['false_positive_reads']}"
                )
    if "proteus" in filtered:
        proteus_fp = filtered["proteus"]["probe"]["false_positive_reads"]
        for name, config in filtered.items():
            if name == "proteus":
                continue
            other_fp = config["probe"]["false_positive_reads"]
            if proteus_fp > other_fp:
                violations.append(
                    f"proteus: false-positive reads {proteus_fp} exceed "
                    f"{name}'s {other_fp} at the shared budget"
                )
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation.lsm_bench",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--families",
        default=",".join(DEFAULT_FAMILIES),
        help="comma-separated filter families to attach per SST "
        "(the no-filter baseline always runs)",
    )
    parser.add_argument(
        "--bits-per-key",
        type=float,
        default=14.0,
        help="global filter memory budget, split across SSTs",
    )
    parser.add_argument("--keys", type=int, default=10_000, help="number of keys")
    parser.add_argument(
        "--queries", type=int, default=4_000, help="design-sample query count"
    )
    parser.add_argument(
        "--eval-queries",
        type=int,
        default=None,
        help="held-out query count (defaults to --queries)",
    )
    parser.add_argument("--width", type=int, default=32, help="key width in bits")
    parser.add_argument("--seed", type=int, default=42, help="workload + tree seed")
    parser.add_argument(
        "--key-dist", default="uniform", choices=("uniform", "zipf", "clustered")
    )
    parser.add_argument(
        "--query-family",
        default="mixed",
        choices=("uniform", "point", "correlated", "mixed"),
    )
    parser.add_argument(
        "--sst-keys", type=int, default=512, help="SST capacity in keys"
    )
    parser.add_argument(
        "--fanout", type=int, default=4, help="level-size growth factor"
    )
    parser.add_argument(
        "--policy",
        default="proportional",
        choices=("proportional", "equal"),
        help="how the global budget splits across SSTs",
    )
    parser.add_argument(
        "--block-read-cost",
        type=float,
        default=1.0,
        help="charge per data-block read",
    )
    parser.add_argument(
        "--filter-probe-cost",
        type=float,
        default=0.0,
        help="charge per filter probe (CPU; the paper reports pure I/O)",
    )
    parser.add_argument("--output", default=None, help="write the JSON report here")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless the paper's qualitative I/O ordering holds",
    )
    args = parser.parse_args(argv)
    report = run_lsm_bench(
        families=tuple(name for name in args.families.split(",") if name),
        bits_per_key=args.bits_per_key,
        num_keys=args.keys,
        num_queries=args.queries,
        num_eval_queries=args.eval_queries,
        width=args.width,
        seed=args.seed,
        key_dist=args.key_dist,
        query_family=args.query_family,
        sst_keys=args.sst_keys,
        fanout=args.fanout,
        policy=args.policy,
        cost_model=CostModel(args.block_read_cost, args.filter_probe_cost),
    )
    rendered = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
    print(rendered)
    if args.check:
        violations = check_report(report)
        if violations:
            for violation in violations:
                print(f"FAIL: {violation}", file=sys.stderr)
            return 1
        print(
            "OK: every filtered configuration beats the no-filter baseline "
            "and Proteus holds the lowest false-positive block reads"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
