"""FPR-vs-bits-per-key sweep: the paper's core figure family.

The headline comparison of the paper is Proteus's CPFPR-chosen design
against the fixed baselines at equal memory budgets.  This driver
reproduces that curve data:

* one seeded workload (keys + a *design* query sample) is generated;
* every requested family is built at every budget on the grid — purely
  through the :mod:`repro.api` registry (``FilterSpec`` → ``build_filter``),
  with no family-specific branches in the driver;
* empirical FPR is measured against :class:`~repro.filters.base.TrieOracle`
  on a *held-out* query batch (same family, different seed) — the sample
  the self-designing families optimised against is never the one they are
  graded on;
* every filter is also checked for false negatives against the oracle (a
  single FN fails the run — a fast speedup can never be bought with a
  dropped key).

Results go to a JSON report with one curve per family:

    python -m repro.evaluation.sweep --output BENCH_pr3.json

``--plot curves.png`` renders the classic log-FPR-vs-budget figure when
matplotlib is importable (it is optional and never required).
``--check-monotone`` asserts each family's empirical FPR is non-increasing
as the budget grows — the CI smoke gate.
"""

from __future__ import annotations

import argparse
import json
import random
import sys

from repro import kernels
from repro.api import FilterSpec, Workload, build_filter, family as family_entry
from repro.filters.base import TrieOracle
from repro.obs.metrics import MetricsRegistry, timed
from repro.workloads.batch import QueryBatch
from repro.workloads.datasets import dataset_queries, list_datasets, load_dataset
from repro.workloads.generators import QUERY_FAMILIES

__all__ = ["held_out_queries", "run_sweep", "check_monotone", "plot_report", "main"]

#: The paper's comparison set: Proteus against the three fixed baselines.
DEFAULT_FAMILIES = ("proteus", "surf", "rosetta", "prefix_bloom")

#: Default bits-per-key grid (the x-axis of the paper's FPR figures).
DEFAULT_GRID = (8.0, 10.0, 12.0, 14.0, 16.0, 18.0)


def held_out_queries(
    workload: Workload, count: int, seed: int, query_family: str
) -> QueryBatch:
    """A fresh query batch from the same family the workload sampled.

    Seeded independently of the design sample, so empirical FPR is measured
    on queries the self-designing families never saw.  Dataset workloads
    (built by :func:`repro.workloads.datasets.load_dataset`) re-draw from
    their own query sampler instead — the dataset name rides in the
    workload metadata, so the grading loop needs no representation branch.
    """
    dataset = workload.metadata.get("dataset")
    if dataset is not None:
        return dataset_queries(dataset, workload.keys, count, seed)
    make_queries = QUERY_FAMILIES[query_family]
    rng = random.Random(seed)
    pairs = make_queries(rng, workload.keys.as_list(), count, workload.width)
    return QueryBatch.from_pairs(pairs, workload.width)


def run_sweep(
    families: tuple[str, ...] = DEFAULT_FAMILIES,
    grid: tuple[float, ...] = DEFAULT_GRID,
    num_keys: int = 10_000,
    num_queries: int = 4_000,
    num_eval_queries: int | None = None,
    width: int = 32,
    seed: int = 42,
    key_dist: str = "uniform",
    query_family: str = "mixed",
    base_params: dict[str, dict] | None = None,
    metrics: MetricsRegistry | None = None,
    dataset: str | None = None,
) -> dict:
    """Build every family at every budget and return the JSON-ready report.

    ``base_params`` optionally maps a family name to extra ``FilterSpec``
    parameters (applied at every grid point); budgets come from ``grid``.
    ``metrics`` threads a :class:`~repro.obs.metrics.MetricsRegistry`
    through every build and times the held-out grading; the report then
    grows a ``metrics`` section.  ``dataset`` swaps the synthetic workload
    for a named loader from :mod:`repro.workloads.datasets` (``width``,
    ``key_dist`` and ``query_family`` are then the dataset's own; the
    grading loop below is identical either way).
    """
    if not families:
        raise ValueError("need at least one filter family to sweep")
    if not grid:
        raise ValueError("need at least one bits-per-key budget")
    for name in families:
        if family_entry(name).budget_free:
            raise ValueError(
                f"family {name!r} ignores the bit budget; it cannot be swept"
            )
    if dataset is not None:
        workload = load_dataset(dataset, num_keys, num_queries, seed=seed)
        width = workload.width
    else:
        workload = Workload.generate(
            num_keys, num_queries, width, seed=seed,
            key_dist=key_dist, query_family=query_family,
        )
    eval_batch = held_out_queries(
        workload, num_eval_queries or num_queries, seed + 1, query_family
    )
    oracle = TrieOracle(workload.keys.keys, width)
    truth = oracle.may_intersect_many(eval_batch)
    num_empty = int((~truth).sum())
    if num_empty == 0:
        raise ValueError(
            "the held-out queries contain no empty ranges; FPR is undefined"
        )
    curves: dict[str, list[dict]] = {}
    for name in families:
        points = []
        for bits_per_key in grid:
            spec = FilterSpec(name, bits_per_key, (base_params or {}).get(name, {}))
            filt = build_filter(spec, workload.keys, workload, metrics=metrics)
            with timed(metrics, "sweep.grade_seconds"):
                answers = filt.may_intersect_many(eval_batch)
            if metrics is not None:
                metrics.inc("sweep.points")
            false_negatives = int((~answers & truth).sum())
            if false_negatives:
                raise AssertionError(
                    f"{name} at {bits_per_key} bits/key produced "
                    f"{false_negatives} false negatives — the filter is broken"
                )
            false_positives = int((answers & ~truth).sum())
            points.append(
                {
                    "bits_per_key": float(bits_per_key),
                    "actual_bits_per_key": filt.bits_per_key(),
                    "size_in_bits": filt.size_in_bits(),
                    "empirical_fpr": false_positives / num_empty,
                    "spec": spec.to_dict(),
                }
            )
        curves[name] = points
    report = {
        "workload": workload.describe(),
        "evaluation": {
            "num_queries": len(eval_batch),
            "num_empty_queries": num_empty,
            "query_family": query_family,
            "seed": seed + 1,
        },
        "curves": curves,
    }
    if metrics is not None:
        report["metrics"] = metrics.to_dict()
    return report


def check_monotone(report: dict, tolerance: float = 0.0) -> list[str]:
    """Return violations of "FPR non-increasing as bits-per-key grows".

    ``tolerance`` is the absolute FPR slack allowed per step (empirical
    rates carry sampling noise; 0 demands strict non-increase).
    """
    violations = []
    for name, points in report["curves"].items():
        ordered = sorted(points, key=lambda p: p["bits_per_key"])
        for previous, current in zip(ordered, ordered[1:]):
            if current["empirical_fpr"] > previous["empirical_fpr"] + tolerance:
                violations.append(
                    f"{name}: FPR rose {previous['empirical_fpr']:.4g} -> "
                    f"{current['empirical_fpr']:.4g} between "
                    f"{previous['bits_per_key']} and "
                    f"{current['bits_per_key']} bits/key"
                )
    return violations


def plot_report(report: dict, path: str) -> bool:
    """Render the FPR-vs-bits-per-key figure; False when matplotlib is absent."""
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        return False
    figure, axes = plt.subplots(figsize=(7, 4.5))
    for name, points in sorted(report["curves"].items()):
        ordered = sorted(points, key=lambda p: p["bits_per_key"])
        axes.plot(
            [p["bits_per_key"] for p in ordered],
            # The classic figure is log-scale; lift exact zeros to the
            # measurement floor (one false positive) so they stay visible.
            [
                max(p["empirical_fpr"], 1.0 / (2 * report["evaluation"]["num_empty_queries"]))
                for p in ordered
            ],
            marker="o",
            label=name,
        )
    axes.set_yscale("log")
    axes.set_xlabel("bits per key")
    axes.set_ylabel("empirical FPR (held-out queries)")
    meta = report["workload"]["metadata"]
    axes.set_title(
        f"{meta.get('key_dist', '?')} keys / {meta.get('query_family', '?')} queries, "
        f"width {report['workload']['width']}"
    )
    axes.legend()
    figure.tight_layout()
    figure.savefig(path, dpi=150)
    plt.close(figure)
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation.sweep", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--families", default=",".join(DEFAULT_FAMILIES),
        help="comma-separated registry family names",
    )
    parser.add_argument(
        "--grid", default=",".join(str(b) for b in DEFAULT_GRID),
        help="comma-separated bits-per-key budgets",
    )
    parser.add_argument("--keys", type=int, default=10_000, help="number of keys")
    parser.add_argument(
        "--queries", type=int, default=4_000, help="design-sample query count"
    )
    parser.add_argument(
        "--eval-queries", type=int, default=None,
        help="held-out query count (defaults to --queries)",
    )
    parser.add_argument("--width", type=int, default=32, help="key width in bits")
    parser.add_argument("--seed", type=int, default=42, help="workload seed")
    parser.add_argument(
        "--key-dist", default="uniform", choices=("uniform", "zipf", "clustered")
    )
    parser.add_argument(
        "--query-family", default="mixed",
        choices=("uniform", "point", "correlated", "mixed"),
    )
    parser.add_argument(
        "--dataset", default=None, choices=list_datasets(),
        help="swap the synthetic workload for a named dataset loader "
        "(overrides --width/--key-dist/--query-family)",
    )
    parser.add_argument("--output", default=None, help="write the JSON report here")
    parser.add_argument(
        "--metrics-out", default=None,
        help="instrument every build and write the metrics payload (JSON) here",
    )
    parser.add_argument("--plot", default=None, help="write a matplotlib figure here")
    parser.add_argument(
        "--check-monotone", action="store_true",
        help="fail unless every family's FPR is non-increasing in the budget",
    )
    parser.add_argument(
        "--monotone-tolerance", type=float, default=0.0,
        help="absolute FPR slack allowed per grid step by --check-monotone",
    )
    args = parser.parse_args(argv)
    metrics = MetricsRegistry() if args.metrics_out else None
    kernels.attach_metrics(metrics)  # kernels.dispatch.{backend}.{kernel}
    try:
        report = run_sweep(
            families=tuple(name for name in args.families.split(",") if name),
            grid=tuple(float(b) for b in args.grid.split(",") if b),
            num_keys=args.keys,
            num_queries=args.queries,
            num_eval_queries=args.eval_queries,
            width=args.width,
            seed=args.seed,
            key_dist=args.key_dist,
            query_family=args.query_family,
            metrics=metrics,
            dataset=args.dataset,
        )
    finally:
        kernels.attach_metrics(None)
    rendered = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
    if metrics is not None:
        payload = {
            "driver": "sweep",
            "metrics": metrics.to_dict(),
            "prometheus": metrics.to_prometheus(),
        }
        with open(args.metrics_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(rendered)
    if args.plot:
        if plot_report(report, args.plot):
            print(f"wrote figure to {args.plot}")
        else:
            print("matplotlib unavailable; skipped the figure", file=sys.stderr)
    if args.check_monotone:
        violations = check_monotone(report, tolerance=args.monotone_tolerance)
        if violations:
            for violation in violations:
                print(f"FAIL: {violation}", file=sys.stderr)
            return 1
        print("OK: every family's FPR is non-increasing in bits per key")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
