"""Serving benchmark: sustained QPS and tail latency per family and shard count.

The microbenchmarks (``lsm_bench``, ``kernel_bench``) time components;
this driver times the *service*: for each filter family and each shard
count it builds a :class:`~repro.serve.service.ShardedLookupService`
over one seeded workload and measures

* **sustained throughput** — a saturating pump of ``batch_size``-query
  batches through :meth:`serve_batch`, reported as QPS (every answer is
  cross-checked against a reference computed directly on the sorted key
  set — a speedup may never be bought with a wrong answer);
* **tail latency** — ``concurrency`` closed-loop async producers issuing
  awaited single lookups through the
  :class:`~repro.serve.batcher.MicroBatcher`, reported as p50/p95/p99
  milliseconds per request (coalescing included: this is the latency a
  caller actually sees, queue wait and all).

Scaling is reported as each shard count's QPS over the 1-shard QPS of
the *same family*.  Absolute QPS is machine-bound, so the committed
reference (BENCH_pr10.json) gates only these **relative** ratios via
``--check-against``/``--tolerance``, one-sidedly — a runner faster than
the reference box can only pass harder.  ``--check`` additionally gates
answer exactness and the scaling floor; the floor is hardware-aware
(``--min-speedup`` overrides): 2x at the top shard count on boxes with
4+ usable cores, degrading gracefully where the parallelism physically
cannot exist (workers on a single core time-slice and pay IPC on top).

The whole path threads one :mod:`repro.obs` registry: the batcher's
batch-size and queue-wait histograms, the router's per-shard dispatch
counters, and the fleet's cost-model totals all land in the
``--metrics-out`` payload.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from time import perf_counter

import numpy as np

from repro.api import FilterSpec, Workload
from repro.obs.metrics import MetricsRegistry, validate_metrics_payload
from repro.serve import MicroBatcher, ShardedLookupService

__all__ = ["run_serve_bench", "check_serve_report", "main"]

#: Default filter families benchmarked (``none`` = unfiltered baseline).
DEFAULT_FAMILIES = ("none", "bloom", "proteus")

#: Default shard counts; the last one is the scaling gate's numerator.
DEFAULT_SHARD_COUNTS = (1, 2, 4)


def _usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1  # pragma: no cover - non-Linux fallback


def default_min_speedup(usable_cpus: int, top_shards: int) -> float:
    """The hardware-aware scaling floor for ``--check``.

    With 4+ usable cores and 4+ shards the acceptance bar is a genuine
    2x; with 2-3 cores partial parallelism must still show up; on a
    single core the workers time-slice and pay per-batch IPC the 1-shard
    config doesn't (measured ~0.2-0.7x there, noisily), so the gate only
    catches an outright collapse.
    """
    parallelism = min(usable_cpus, top_shards)
    if parallelism >= 4:
        return 2.0
    if parallelism >= 2:
        return 1.2
    return 0.15


def _make_eval_queries(
    keys: np.ndarray, num_queries: int, width: int, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """A seeded serving mix: key-hitting points, random points, short ranges."""
    rng = np.random.default_rng(seed)
    top = np.int64((1 << width) - 1)
    third = num_queries // 3
    hit_points = rng.choice(keys, size=third)
    random_points = rng.integers(0, top, size=third, dtype=np.int64)
    range_los = rng.integers(0, top - 1024, size=num_queries - 2 * third, dtype=np.int64)
    range_his = range_los + rng.integers(1, 1024, size=range_los.size, dtype=np.int64)
    los = np.concatenate([hit_points, random_points, range_los])
    his = np.concatenate([hit_points, random_points, range_his])
    order = rng.permutation(num_queries)
    return los[order], his[order]


def _reference_answers(
    keys: np.ndarray, los: np.ndarray, his: np.ndarray
) -> np.ndarray:
    """Exact truth straight off the sorted key array (filter-independent)."""
    idx = np.searchsorted(keys, los, side="left")
    safe = np.minimum(idx, keys.size - 1)
    return (idx < keys.size) & (keys[safe] <= his)


def _percentiles_ms(latencies: list[float]) -> dict:
    """p50/p95/p99/mean of per-request latencies, in milliseconds."""
    arr = np.asarray(latencies, dtype=np.float64) * 1e3
    p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
    return {
        "p50": float(p50),
        "p95": float(p95),
        "p99": float(p99),
        "mean": float(arr.mean()),
    }


async def _latency_pass(
    service: ShardedLookupService,
    los: np.ndarray,
    his: np.ndarray,
    concurrency: int,
    max_batch: int,
    max_delay: float,
    metrics: MetricsRegistry | None,
) -> tuple[list[float], np.ndarray]:
    """Closed-loop producers through the micro-batcher; per-request timings."""
    batcher = MicroBatcher(
        service.answer_batch,
        max_batch=max_batch,
        max_delay=max_delay,
        metrics=metrics,
    )
    latencies: list[float] = []
    answers = np.zeros(los.size, dtype=bool)

    async def producer(offset: int) -> None:
        for index in range(offset, los.size, concurrency):
            start = perf_counter()
            answers[index] = await batcher.lookup(
                int(los[index]), int(his[index])
            )
            latencies.append(perf_counter() - start)

    async with batcher:
        await asyncio.gather(*[producer(i) for i in range(concurrency)])
    return latencies, answers


def run_serve_bench(
    families=DEFAULT_FAMILIES,
    shard_counts=DEFAULT_SHARD_COUNTS,
    num_keys: int = 16_384,
    num_queries: int = 4_096,
    width: int = 32,
    seed: int = 42,
    bits_per_key: float = 14.0,
    policy: str = "proportional",
    sst_keys: int = 512,
    fanout: int = 4,
    batch_size: int = 512,
    latency_requests: int = 256,
    concurrency: int = 16,
    max_batch: int = 64,
    max_delay: float = 0.001,
    mode: str = "process",
    metrics: MetricsRegistry | None = None,
) -> dict:
    """Measure every (family, shard count) serving config; return the report.

    One seeded workload (keys + design sample) and one seeded evaluation
    query mix are shared by every config, so QPS differences are the
    serving topology's, not the data's.  ``mode="inline"`` runs the same
    route/dispatch path without worker processes — the single-core
    baseline and the deterministic path the tests use.
    """
    workload = Workload.generate(
        num_keys=num_keys, num_queries=num_queries, width=width, seed=seed
    )
    key_array = workload.keys.keys
    los, his = _make_eval_queries(key_array, num_queries, width, seed + 1)
    reference = _reference_answers(key_array, los, his)
    latency_count = min(latency_requests, num_queries)

    configs: dict[str, dict] = {}
    scaling: dict[str, dict] = {}
    for family in families:
        spec = None if family == "none" else FilterSpec(family, bits_per_key)
        configs[family] = {}
        scaling[family] = {}
        for shards in shard_counts:
            service = ShardedLookupService.build(
                workload.keys,
                num_shards=shards,
                spec=spec,
                workload=workload,
                policy=policy,
                sst_keys=sst_keys,
                fanout=fanout,
                seed=seed,
                mode=mode,
                metrics=metrics,
            )
            try:
                # Warmup: first dispatch pays queue/page-fault setup.
                service.serve_batch(los[:batch_size], his[:batch_size])
                answers = np.zeros(num_queries, dtype=bool)
                totals = {
                    "blocks_read": 0,
                    "false_positive_reads": 0,
                    "filter_probes": 0,
                    "routed_none": 0,
                }
                start = perf_counter()
                for chunk in range(0, num_queries, batch_size):
                    part, stats = service.serve_batch(
                        los[chunk : chunk + batch_size],
                        his[chunk : chunk + batch_size],
                    )
                    answers[chunk : chunk + part.size] = part
                    for key in totals:
                        totals[key] += stats[key]
                elapsed = perf_counter() - start
                latencies, latency_answers = asyncio.run(
                    _latency_pass(
                        service,
                        los[:latency_count],
                        his[:latency_count],
                        concurrency,
                        max_batch,
                        max_delay,
                        metrics,
                    )
                )
                mismatches = int((answers != reference).sum())
                mismatches += int(
                    (latency_answers != reference[:latency_count]).sum()
                )
                configs[family][str(shards)] = {
                    "qps": num_queries / elapsed,
                    "elapsed_seconds": elapsed,
                    "latency_ms": _percentiles_ms(latencies),
                    "answer_mismatches": mismatches,
                    "positives": int(answers.sum()),
                    "filter_bits": int(service.filter_bits),
                    **totals,
                }
            finally:
                service.close()
        baseline = configs[family].get(str(shard_counts[0]), {}).get("qps")
        for shards in shard_counts:
            scaling[family][str(shards)] = (
                configs[family][str(shards)]["qps"] / baseline
                if baseline
                else 0.0
            )
    return {
        "mode": "serve",
        "workload": {
            "num_keys": num_keys,
            "num_queries": num_queries,
            "width": width,
            "seed": seed,
            "bits_per_key": float(bits_per_key),
            "budget_policy": policy,
            "geometry": {"sst_keys": sst_keys, "fanout": fanout},
        },
        "serving": {
            "mode": mode,
            "batch_size": batch_size,
            "latency_requests": latency_count,
            "concurrency": concurrency,
            "max_batch": max_batch,
            "max_delay_seconds": max_delay,
            "shard_counts": list(shard_counts),
        },
        "hardware": {
            "cpu_count": os.cpu_count(),
            "usable_cpus": _usable_cpus(),
            "start_method": "spawn" if mode == "process" else "inline",
        },
        "configs": configs,
        "scaling": scaling,
    }


def check_serve_report(report: dict, min_speedup: float | None = None) -> list[str]:
    """Return violations of the serving gate (empty = pass).

    * zero answer mismatches in every config — throughput and latency
      passes both, exactness is non-negotiable;
    * p99 latency present (and finite) per family and shard count;
    * the top shard count's QPS over the 1-shard QPS must reach the
      scaling floor for every family — ``min_speedup`` if given, else
      the hardware-aware :func:`default_min_speedup`.
    """
    violations: list[str] = []
    shard_counts = report["serving"]["shard_counts"]
    top = str(shard_counts[-1])
    if min_speedup is None:
        min_speedup = default_min_speedup(
            report["hardware"]["usable_cpus"], shard_counts[-1]
        )
    for family, per_shards in report["configs"].items():
        for shards, config in per_shards.items():
            if config["answer_mismatches"]:
                violations.append(
                    f"{family}@{shards}: {config['answer_mismatches']} "
                    f"answer mismatches against the reference truth"
                )
            p99 = config.get("latency_ms", {}).get("p99")
            if p99 is None or not np.isfinite(p99):
                violations.append(f"{family}@{shards}: missing/non-finite p99")
        if len(shard_counts) > 1:
            speedup = report["scaling"][family].get(top, 0.0)
            if speedup < min_speedup:
                violations.append(
                    f"{family}: {top}-shard speedup {speedup:.2f}x below "
                    f"the {min_speedup:.2f}x floor"
                )
    return violations


def _check_regressions(report: dict, committed: dict, tolerance: float) -> dict:
    """``{family@shards: (current, required)}`` scaling-ratio regressions.

    Only the *relative* scaling ratios gate — absolute QPS is not
    comparable across machines — and only for (family, shard count)
    pairs present in both reports, one-sidedly: running faster than the
    committed reference can never fail.
    """
    failures: dict[str, tuple[float, float]] = {}
    for family, per_shards in committed.get("scaling", {}).items():
        for shards, reference in per_shards.items():
            current = report["scaling"].get(family, {}).get(shards)
            if current is None:
                continue
            required = reference * (1.0 - tolerance)
            if current < required:
                failures[f"{family}@{shards}"] = (current, required)
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation.serve_bench",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--families", default=",".join(DEFAULT_FAMILIES),
        help="comma-separated filter families ('none' = unfiltered)",
    )
    parser.add_argument(
        "--shard-counts", default=",".join(map(str, DEFAULT_SHARD_COUNTS)),
        help="comma-separated shard counts (first is the scaling baseline)",
    )
    parser.add_argument("--num-keys", type=int, default=16_384)
    parser.add_argument("--num-queries", type=int, default=4_096)
    parser.add_argument("--width", type=int, default=32)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--bits-per-key", type=float, default=14.0)
    parser.add_argument("--policy", default="proportional")
    parser.add_argument("--sst-keys", type=int, default=512)
    parser.add_argument("--fanout", type=int, default=4)
    parser.add_argument(
        "--batch-size", type=int, default=512,
        help="queries per serve_batch call in the throughput pump",
    )
    parser.add_argument(
        "--latency-requests", type=int, default=256,
        help="awaited single lookups per config for the latency pass",
    )
    parser.add_argument(
        "--concurrency", type=int, default=16,
        help="closed-loop async producers in the latency pass",
    )
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument(
        "--max-delay", type=float, default=0.001,
        help="micro-batcher flush delay in seconds",
    )
    parser.add_argument(
        "--inline", action="store_true",
        help="serve in-process (no worker processes; deterministic baseline)",
    )
    parser.add_argument("--output", default=None, help="write the JSON report here")
    parser.add_argument(
        "--metrics-out", default=None,
        help="write the obs-registry export (JSON + Prometheus text) here",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="gate exactness, p99 presence, and the scaling floor",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="override the hardware-aware scaling floor for --check",
    )
    parser.add_argument(
        "--check-against", default=None,
        help="fail on scaling-ratio regressions vs this committed report",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional scaling regression for --check-against",
    )
    args = parser.parse_args(argv)
    metrics = MetricsRegistry()
    report = run_serve_bench(
        families=tuple(f for f in args.families.split(",") if f),
        shard_counts=tuple(int(s) for s in args.shard_counts.split(",") if s),
        num_keys=args.num_keys,
        num_queries=args.num_queries,
        width=args.width,
        seed=args.seed,
        bits_per_key=args.bits_per_key,
        policy=args.policy,
        sst_keys=args.sst_keys,
        fanout=args.fanout,
        batch_size=args.batch_size,
        latency_requests=args.latency_requests,
        concurrency=args.concurrency,
        max_batch=args.max_batch,
        max_delay=args.max_delay,
        mode="inline" if args.inline else "process",
        metrics=metrics,
    )
    rendered = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
    print(rendered)
    if args.metrics_out:
        payload = {
            "driver": "serve_bench",
            "metrics": metrics.to_dict(),
            "prometheus": metrics.to_prometheus(),
        }
        problems = validate_metrics_payload(payload["metrics"])
        if problems:
            print("FAIL: metrics export invalid: " + "; ".join(problems),
                  file=sys.stderr)
            return 1
        with open(args.metrics_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.check:
        violations = check_serve_report(report, args.min_speedup)
        if violations:
            print("FAIL: " + "; ".join(violations), file=sys.stderr)
            return 1
        print("OK: serving gate passed")
    if args.check_against:
        with open(args.check_against) as handle:
            committed = json.load(handle)
        failures = _check_regressions(report, committed, args.tolerance)
        if failures:
            print(
                f"FAIL: serving scaling regressed past {args.tolerance:.0%}: "
                + ", ".join(
                    f"{name} {cur:.2f}x < {req:.2f}x"
                    for name, (cur, req) in sorted(failures.items())
                ),
                file=sys.stderr,
            )
            return 1
        print(f"OK: no scaling ratio regressed past {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
