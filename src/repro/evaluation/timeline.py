"""Timeline benchmark: the online write path under a mid-stream query shift.

The static LSM benchmark (:mod:`repro.evaluation.lsm_bench`) freezes one
tree and compares filter families on it.  This driver instead exercises
the *online* path end to end: two identical
:class:`~repro.lsm.online.OnlineLSMTree` instances ingest the same seeded
write stream (puts + tombstoned deletes) interleaved with per-epoch query
batches, and at ``shift_epoch`` the query mix is forcibly shifted from
uniform ranges to the paper's adversarial correlated near-miss family —
the exact scenario where a frozen contextual design goes stale.

* the **static** tree is frozen Proteus: every filter (initial, flush and
  compaction outputs alike) designs against the *initial* uniform sample,
  forever;
* the **adaptive** tree runs the closed loop
  (:class:`~repro.lsm.lifecycle.FilterLifecycle`): per-SST drift monitors
  grade observed FPR against each filter's CPFPR prediction, and a flag
  triggers an in-place redesign from the rolling live-query sample (which
  also refreshes the design sample future flushes/compactions build
  against).

Per epoch the report records both trees' false-positive block reads,
charged I/O, bytes compacted, filters built/rebuilt, and the adaptive
tree's drift verdicts.  :func:`check_timeline_report` is the CI gate: zero
missed reads everywhere, the actuator must actually fire after the shift,
and from ``shift_epoch + grace_epochs`` on the adaptive tree must do
*strictly* fewer false-positive block reads than the static tree, every
epoch — adaptation has to pay for itself immediately, not just on
average.
"""

from __future__ import annotations

import random

from repro.api import FilterSpec
from repro.lsm import CostModel, FilterLifecycle, OnlineLSMTree
from repro.obs.metrics import MetricsRegistry, timed
from repro.workloads.batch import QueryBatch, probe_key_array
from repro.workloads.generators import (
    KEY_DISTRIBUTIONS,
    correlated_queries,
    uniform_queries,
    write_stream,
)

__all__ = ["run_timeline_bench", "check_timeline_report"]

#: Query families on either side of the forced shift.
PRE_SHIFT_FAMILY = "uniform"
POST_SHIFT_FAMILY = "correlated"


def _probe_summary(result, model: CostModel) -> dict:
    """Scalar probe totals for one epoch (per-level detail omitted)."""
    return {
        "num_queries": result.num_queries,
        "blocks_read": result.total_blocks_read(),
        "required_reads": result.total_required_reads(),
        "false_positive_reads": result.total_false_positive_reads(),
        "missed_reads": int(result.missed_reads.sum()),
        "io_cost": result.io_cost(model),
    }


def _tree_epoch_summary(
    tree: OnlineLSMTree, before: dict, result, model: CostModel
) -> dict:
    """One tree's epoch record: probe totals + lifecycle-counter deltas."""
    entries_written = tree.stats["entries_written"] - before["entries_written"]
    return {
        "probe": _probe_summary(result, model),
        "flushes": tree.stats["flushes"] - before["flushes"],
        "compactions": tree.stats["compactions"] - before["compactions"],
        "entries_merged": tree.stats["entries_merged"] - before["entries_merged"],
        "bytes_compacted": entries_written * tree.width // 8,
        "tombstones_dropped": (
            tree.stats["tombstones_dropped"] - before["tombstones_dropped"]
        ),
        "filters_built": tree.stats["filters_built"] - before["filters_built"],
        "num_ssts": tree.num_ssts,
        "num_entries": tree.num_entries,
        "filter_bits": tree.filter_size_bits(),
    }


def run_timeline_bench(
    family: str = "proteus",
    bits_per_key: float = 12.0,
    num_epochs: int = 6,
    writes_per_epoch: int = 1024,
    queries_per_epoch: int = 512,
    preload: int = 4096,
    shift_epoch: int = 2,
    grace_epochs: int = 1,
    width: int = 32,
    seed: int = 42,
    key_dist: str = "uniform",
    delete_fraction: float = 0.1,
    design_queries: int = 1024,
    sst_keys: int = 512,
    fanout: int = 4,
    level0_runs: int = 4,
    policy: str = "proportional",
    drift_window: int = 4,
    drift_min_empty: int = 16,
    cost_model: CostModel | None = None,
    metrics: MetricsRegistry | None = None,
) -> dict:
    """Replay the interleaved write/query timeline; return the JSON report.

    Both trees see byte-identical writes and queries; only the lifecycle
    differs.  Everything is driven by one seeded ``random.Random``, so the
    same arguments always reproduce the same report.
    """
    if num_epochs < 1:
        raise ValueError("need at least one epoch")
    if not 0 <= shift_epoch <= num_epochs:
        raise ValueError(
            f"shift_epoch {shift_epoch} outside the {num_epochs}-epoch timeline"
        )
    if grace_epochs < 0:
        raise ValueError("grace_epochs must be non-negative")
    if preload < 1:
        raise ValueError("the timeline needs a preloaded key population")
    model = cost_model or CostModel()
    rng = random.Random(seed)

    # The initial design sample *is* the pre-shift mix: uniform ranges.
    initial_sample = QueryBatch.from_pairs(
        uniform_queries(rng, design_queries, width, 1000), width
    )
    spec = FilterSpec(family, bits_per_key)

    def make_tree() -> OnlineLSMTree:
        return OnlineLSMTree(
            width,
            spec,
            design_queries=initial_sample,
            sst_keys=sst_keys,
            fanout=fanout,
            level0_runs=level0_runs,
            policy=policy,
            metrics=metrics,
        )

    adaptive = make_tree()
    static = make_tree()
    lifecycle = FilterLifecycle(
        adaptive,
        window=drift_window,
        min_empty=drift_min_empty,
        metrics=metrics,
    )

    # Preload: an all-puts burst establishing the resident key population.
    preload_keys = KEY_DISTRIBUTIONS[key_dist](rng, preload, width)
    rng.shuffle(preload_keys)
    truth: dict[int, bool] = {}
    seen_keys: list[int] = []
    for key in preload_keys:
        truth[key] = True
        seen_keys.append(key)
    preload_ops = [("put", key) for key in preload_keys]
    stream = write_stream(
        rng, num_epochs, writes_per_epoch, width,
        key_dist=key_dist, delete_fraction=delete_fraction,
    )
    for tree in (adaptive, static):
        tree.apply(preload_ops)
        tree.flush()

    epochs: list[dict] = []
    with timed(metrics, "timeline.seconds"):
        for epoch in range(num_epochs):
            ops = stream[epoch]
            for op, key in ops:
                if op == "put" and key not in truth:
                    seen_keys.append(key)
                truth[key] = op == "put"
            before_adaptive = dict(adaptive.stats)
            before_static = dict(static.stats)
            for tree in (adaptive, static):
                tree.apply(ops)
                tree.flush()
            query_family = (
                PRE_SHIFT_FAMILY if epoch < shift_epoch else POST_SHIFT_FAMILY
            )
            if query_family == PRE_SHIFT_FAMILY:
                pairs = uniform_queries(rng, queries_per_epoch, width, 1000)
            else:
                pairs = correlated_queries(
                    rng, seen_keys, queries_per_epoch, width
                )
            batch = QueryBatch.from_pairs(pairs, width)
            sst_stats: dict = {}
            adaptive_result = adaptive.probe(batch, sst_stats=sst_stats)
            # The lifecycle observes *after* the probe: rebuilds triggered by
            # this epoch's drift take effect from the next epoch's queries.
            verdict = lifecycle.observe_epoch(batch, sst_stats)
            static_result = static.probe(batch)
            for name, result in (
                ("adaptive", adaptive_result),
                ("static", static_result),
            ):
                missed = int(result.missed_reads.sum())
                if missed:
                    raise AssertionError(
                        f"epoch {epoch} ({name}): {missed} missed reads — a "
                        f"filter rejected an SST holding a matching key"
                    )
            adaptive_summary = _tree_epoch_summary(
                adaptive, before_adaptive, adaptive_result, model
            )
            adaptive_summary["drift"] = verdict
            adaptive_summary["filters_rebuilt"] = verdict["filters_rebuilt"]
            epochs.append(
                {
                    "epoch": epoch,
                    "query_family": query_family,
                    "writes": len(ops),
                    "adaptive": adaptive_summary,
                    "static": _tree_epoch_summary(
                        static, before_static, static_result, model
                    ),
                }
            )
            if metrics is not None:
                metrics.inc("timeline.epochs")

    # End-of-run integrity: both trees must agree with the replayed ground
    # truth on every key the stream ever touched (flush the residue first
    # so the check covers the whole history, not just what probe sees).
    for tree in (adaptive, static):
        tree.flush()
    # probe_key_array keeps the sorted order and native representation
    # (ints today, raw str/bytes if the stream ever carries them) — the
    # same dispatch lookup_many itself applies.
    touched = probe_key_array(sorted(truth), width)
    expected = [truth[key] for key in touched.tolist()]
    lookup_consistent = {
        name: bool((tree.lookup_many(touched).tolist() == expected))
        for name, tree in (("adaptive", adaptive), ("static", static))
    }

    def totals(name: str) -> dict:
        summed: dict[str, float] = {}
        for record in epochs:
            side = record[name]
            for key in (
                "flushes", "compactions", "entries_merged", "bytes_compacted",
                "tombstones_dropped", "filters_built",
            ):
                summed[key] = summed.get(key, 0) + side[key]
            for key in (
                "blocks_read", "required_reads", "false_positive_reads",
                "missed_reads", "io_cost",
            ):
                summed[key] = summed.get(key, 0) + side["probe"][key]
        if name == "adaptive":
            summed["filters_rebuilt"] = lifecycle.stats["filters_rebuilt"]
            summed["drift_flags"] = lifecycle.stats["drift_flags"]
        return summed

    report = {
        "mode": "timeline",
        "family": family,
        "bits_per_key": float(bits_per_key),
        "width": width,
        "seed": seed,
        "key_dist": key_dist,
        "delete_fraction": delete_fraction,
        "budget_policy": policy,
        "cost_model": model.to_dict(),
        "geometry": {
            "sst_keys": sst_keys,
            "fanout": fanout,
            "level0_runs": level0_runs,
        },
        "timeline": {
            "num_epochs": num_epochs,
            "writes_per_epoch": writes_per_epoch,
            "queries_per_epoch": queries_per_epoch,
            "preload": preload,
            "shift_epoch": shift_epoch,
            "grace_epochs": grace_epochs,
            "pre_shift_family": PRE_SHIFT_FAMILY,
            "post_shift_family": POST_SHIFT_FAMILY,
        },
        "design_sample": {
            "num_queries": design_queries,
            "query_family": PRE_SHIFT_FAMILY,
        },
        "lifecycle": lifecycle.to_dict(),
        "trees": {
            "adaptive": adaptive.describe(),
            "static": static.describe(),
        },
        "integrity": {"lookup_consistent": lookup_consistent},
        "epochs": epochs,
        "totals": {"adaptive": totals("adaptive"), "static": totals("static")},
    }
    if metrics is not None:
        report["metrics"] = metrics.to_dict()
    return report


def check_timeline_report(report: dict) -> list[str]:
    """Return violations of the closed-loop gate (empty = pass).

    * zero missed reads on both trees, every epoch (no false negatives,
      ever — deletes included);
    * end-of-run lookups on both trees must match the replayed ground
      truth exactly (tombstone semantics survive compaction);
    * the drift actuator must fire at least once after the forced shift;
    * from ``shift_epoch + grace_epochs`` on, the adaptive tree's
      false-positive block reads must be *strictly* below the static
      tree's in every epoch — the rebuilt designs must win immediately.
    """
    violations: list[str] = []
    shift = report["timeline"]["shift_epoch"]
    grace = report["timeline"]["grace_epochs"]
    for record in report["epochs"]:
        epoch = record["epoch"]
        for name in ("adaptive", "static"):
            missed = record[name]["probe"]["missed_reads"]
            if missed:
                violations.append(f"epoch {epoch} ({name}): {missed} missed reads")
    for name, consistent in report["integrity"]["lookup_consistent"].items():
        if not consistent:
            violations.append(
                f"{name}: end-of-run lookups disagree with the replayed "
                f"ground truth"
            )
    if report["totals"]["adaptive"].get("filters_rebuilt", 0) < 1:
        violations.append(
            "the drift actuator never fired: no filter was rebuilt after "
            "the query shift"
        )
    judged = [r for r in report["epochs"] if r["epoch"] >= shift + grace]
    if not judged:
        violations.append(
            f"no epochs after shift {shift} + grace {grace}: nothing to gate"
        )
    for record in judged:
        adaptive_fp = record["adaptive"]["probe"]["false_positive_reads"]
        static_fp = record["static"]["probe"]["false_positive_reads"]
        if adaptive_fp >= static_fp:
            violations.append(
                f"epoch {record['epoch']}: adaptive false-positive reads "
                f"{adaptive_fp} not strictly below static's {static_fp}"
            )
    return violations
