"""The unified filter-construction API: spec → registry → filter.

Three pieces, one protocol:

* :class:`~repro.api.spec.FilterSpec` — a frozen, JSON-round-trippable
  construction request: ``family`` + family params + ``bits_per_key``;
* :class:`~repro.api.workload.Workload` — the encoded key set + query
  sample bundle builders consume;
* :func:`~repro.api.registry.build_filter` — the single entry point that
  dispatches a spec through the :func:`~repro.api.registry.register_family`
  registry to the family's ``from_spec(spec, keys, workload)`` classmethod.

>>> from repro.api import FilterSpec, Workload, build_filter
>>> w = Workload.generate(num_keys=10_000, num_queries=2_000, width=32, seed=7)
>>> filt = build_filter(FilterSpec("proteus", bits_per_key=14), w.keys, w)
>>> filt.may_intersect_many(w.queries)  # doctest: +SKIP

Self-designing families (``proteus``, ``1pbf``, ``2pbf``) require the
workload — its query sample is what Algorithm 1 optimises against; the
fixed baselines (``surf``, ``rosetta``, ``prefix_bloom``, ``bloom``) derive
their internal knobs from the budget as the paper's experimental setup does.
"""

from repro.api.budget import (
    allocate_sst_budgets,
    derive_shard_specs,
    derive_sst_specs,
    resplit_on_topology_change,
)
from repro.api.registry import (
    FilterFamily,
    build_filter,
    family,
    register_family,
    registered_families,
)
from repro.api.spec import FilterSpec
from repro.api.workload import Workload

__all__ = [
    "FilterSpec",
    "Workload",
    "FilterFamily",
    "register_family",
    "registered_families",
    "family",
    "build_filter",
    "allocate_sst_budgets",
    "derive_shard_specs",
    "derive_sst_specs",
    "resplit_on_topology_change",
]
