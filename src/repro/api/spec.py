"""`FilterSpec`: a declarative, serialisable filter-construction request.

A spec names *what* to build — a filter ``family`` from the registry, its
family-specific ``params``, and the ``bits_per_key`` budget — without saying
*how*: the family's ``from_spec(spec, keys, workload)`` classmethod owns the
translation from budget to internal knobs (trie depth, level count, prefix
length, hash count).  Specs are frozen and JSON round-trippable
(``from_dict(to_dict(s)) == s``) so every built filter can be logged,
compared, and replayed by the benchmark and sweep drivers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Any, Mapping

__all__ = ["FilterSpec"]

_SPEC_KEYS = frozenset({"family", "bits_per_key", "params"})


@dataclass(frozen=True)
class FilterSpec:
    """One filter-construction request: family + params + bit budget.

    ``params`` holds the family-specific knobs (each family's ``from_spec``
    validates the names it accepts); it is stored behind a read-only mapping
    proxy so a spec, once created, cannot drift from what was logged.
    """

    family: str
    bits_per_key: float = 16.0
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if not isinstance(self.family, str) or not self.family:
            raise ValueError("family must be a non-empty string")
        bits = float(self.bits_per_key)
        if not bits > 0:
            raise ValueError(f"bits_per_key must be positive, got {self.bits_per_key}")
        object.__setattr__(self, "bits_per_key", bits)
        object.__setattr__(self, "params", MappingProxyType(dict(self.params)))

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash would raise on the mapping
        # proxy; hash the canonical item tuple instead so specs work as
        # dict keys (per-spec filter caches, sweep-point dedupe).
        return hash((self.family, self.bits_per_key, tuple(sorted(self.params.items()))))

    # ------------------------------------------------------------------ #
    # JSON round-trip                                                    #
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """Return a plain-dict form suitable for ``json.dumps``."""
        return {
            "family": self.family,
            "bits_per_key": self.bits_per_key,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FilterSpec":
        """Inverse of :meth:`to_dict`; unknown keys are rejected, not dropped."""
        unknown = sorted(set(data) - _SPEC_KEYS)
        if unknown:
            raise ValueError(f"unknown FilterSpec field(s) {unknown}")
        if "family" not in data:
            raise ValueError("a FilterSpec dict needs a 'family' field")
        params = data.get("params", {})
        if not isinstance(params, Mapping):
            raise ValueError("'params' must be a mapping")
        return cls(data["family"], data.get("bits_per_key", 16.0), params)

    def to_json(self) -> str:
        """Serialise to a canonical (sorted-key) JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FilterSpec":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------ #
    # Derivation helpers                                                 #
    # ------------------------------------------------------------------ #

    def with_budget(self, bits_per_key: float) -> "FilterSpec":
        """Return the same spec at a different budget (the sweep's inner move)."""
        return replace(self, bits_per_key=bits_per_key)

    def with_params(self, **params: Any) -> "FilterSpec":
        """Return the spec with ``params`` merged over the existing ones."""
        return replace(self, params={**self.params, **params})
