"""`Workload`: the key set + query sample bundle every builder consumes.

PR 2's generators emit an (:class:`~repro.workloads.batch.EncodedKeySet`,
:class:`~repro.workloads.batch.QueryBatch`) pair; this class formalises that
pair as one value — plus the optional :class:`~repro.keys.keyspace.KeySpace`
that produced the encoding and a ``metadata`` dict recording provenance
(generator config, dataset name) for the JSON reports.

Self-designing families (1PBF/2PBF/Proteus) consume ``workload.queries`` as
the sample Algorithm 1 optimises against; fixed baselines may consult it for
their paper-setup knob derivations (the fixed PBF's slot width) but never
require it.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.keys.keyspace import KeySpace, StringKeySpace
from repro.workloads.batch import (
    EncodedKeySet,
    QueryBatch,
    coerce_keys,
    coerce_query_batch,
)
from repro.workloads.generators import generate_workload
from repro.workloads.keyset import KeySet

__all__ = ["Workload"]


class Workload:
    """An encoded key set, a query sample, and where they came from."""

    __slots__ = ("keys", "queries", "key_space", "metadata")

    def __init__(
        self,
        keys: KeySet | Iterable,
        queries: QueryBatch | Iterable[tuple],
        key_space: KeySpace | None = None,
        metadata: Mapping | None = None,
    ):
        if not isinstance(keys, KeySet):
            concrete = keys if isinstance(keys, np.ndarray) else list(keys)
            sample = concrete[0] if len(concrete) else None
            if isinstance(sample, (bytes, str, np.bytes_)):
                # Byte/str keys size their own space; no key_space needed.
                width = key_space.width if key_space is not None else None
                keys = coerce_keys(concrete, width)
            elif key_space is None:
                raise ValueError("raw keys need a key_space (or pass a KeySet)")
            else:
                keys = EncodedKeySet.from_raw(concrete, key_space)
        if key_space is None and keys.is_bytes:
            # Attach the matching string space so scalar raw-domain probes
            # against built filters encode through the padded-integer view.
            key_space = StringKeySpace((keys.width + 7) // 8)
        if key_space is not None and key_space.width != keys.width:
            raise ValueError(
                f"key space width {key_space.width} does not match "
                f"key set width {keys.width}"
            )
        if isinstance(queries, QueryBatch):
            if queries.width != keys.width:
                raise ValueError(
                    f"query batch width {queries.width} does not match "
                    f"key set width {keys.width}"
                )
        elif keys.is_bytes:
            # Raw byte pairs become a ByteQueryBatch, padded-integer pairs a
            # scalar-contract QueryBatch — coerce_query_batch dispatches.
            queries = coerce_query_batch(list(queries), keys.width)
        elif key_space is not None:
            queries = QueryBatch.from_raw(queries, key_space)
        else:
            queries = QueryBatch.from_pairs(queries, keys.width)
        self.keys = keys
        self.queries = queries
        self.key_space = key_space
        self.metadata = dict(metadata or {})

    @property
    def width(self) -> int:
        """Bit width of the shared key space."""
        return self.keys.width

    @property
    def num_keys(self) -> int:
        return len(self.keys)

    @property
    def num_queries(self) -> int:
        return len(self.queries)

    @classmethod
    def generate(
        cls,
        num_keys: int,
        num_queries: int,
        width: int,
        seed: int = 0,
        key_dist: str = "uniform",
        query_family: str = "mixed",
    ) -> "Workload":
        """Seeded synthetic workload (see :mod:`repro.workloads.generators`),
        with the generator config recorded in ``metadata``."""
        key_set, batch = generate_workload(
            num_keys, num_queries, width, seed=seed,
            key_dist=key_dist, query_family=query_family,
        )
        return cls(
            key_set,
            batch,
            metadata={
                "source": "generate_workload",
                "num_keys": num_keys,
                "num_queries": num_queries,
                "width": width,
                "seed": seed,
                "key_dist": key_dist,
                "query_family": query_family,
            },
        )

    def describe(self) -> dict:
        """JSON-ready summary: sizes, width, and recorded provenance."""
        return {
            "num_keys": self.num_keys,
            "num_queries": self.num_queries,
            "width": self.width,
            "metadata": dict(self.metadata),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Workload(keys={self.num_keys}, queries={self.num_queries}, "
            f"width={self.width})"
        )
