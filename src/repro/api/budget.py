"""Per-SST budget derivation from one global bits-per-key budget.

The LSM layer builds one filter per SST but is configured with a single
global memory budget — "``B`` bits per key across the whole tree", the knob
the paper's end-to-end experiment turns.  This module owns the translation
from that global budget to the per-SST :class:`~repro.api.spec.FilterSpec`
sequence, under one invariant: **the per-SST bit grants sum to the global
grant** (``sum(round(b_i * n_i)) ≈ B * sum(n_i)``), so a tree-wide memory
report is comparable across allocation policies.

Two policies:

``proportional``
    Every SST receives the same *bits per key* — its share of the global
    bit pool is proportional to its key count.  This is what a per-SST
    filter inside RocksDB does (each filter sized from its own key count at
    the table-wide bits-per-key option) and the default.
``equal``
    Every SST receives the same *total bits* — ``B * N / num_ssts`` each —
    so small SSTs run rich and large SSTs run starved.  Useful as the
    strawman that shows why proportional allocation is the right default.
"""

from __future__ import annotations

from typing import Sequence

from repro.api.spec import FilterSpec

__all__ = [
    "ALLOCATION_POLICIES",
    "allocate_sst_budgets",
    "derive_shard_specs",
    "derive_sst_specs",
    "resplit_on_topology_change",
]

#: Recognised per-SST allocation policy names.
ALLOCATION_POLICIES = ("proportional", "equal")


def allocate_sst_budgets(
    bits_per_key: float,
    key_counts: Sequence[int],
    policy: str = "proportional",
) -> list[float]:
    """Split a global ``bits_per_key`` budget into per-SST budgets.

    Returns one bits-per-key value per entry of ``key_counts`` such that the
    implied total bit grant matches the global one (``sum(b_i * n_i) ==
    bits_per_key * sum(n_i)``, up to float arithmetic).  Empty SSTs are
    never produced by the tree builder, so zero key counts are rejected.
    """
    if not key_counts:
        raise ValueError("need at least one SST to allocate a budget across")
    if any(count <= 0 for count in key_counts):
        raise ValueError("every SST must hold at least one key")
    if not bits_per_key > 0:
        raise ValueError(f"bits_per_key must be positive, got {bits_per_key}")
    if policy == "proportional":
        return [float(bits_per_key)] * len(key_counts)
    if policy == "equal":
        total_bits = bits_per_key * sum(key_counts)
        per_sst_bits = total_bits / len(key_counts)
        return [per_sst_bits / count for count in key_counts]
    raise ValueError(
        f"unknown allocation policy {policy!r}; expected one of {ALLOCATION_POLICIES}"
    )


def derive_sst_specs(
    spec: FilterSpec,
    key_counts: Sequence[int],
    policy: str = "proportional",
) -> list[FilterSpec]:
    """Derive one :class:`FilterSpec` per SST from a global spec.

    The family and params carry over unchanged; only ``bits_per_key`` is
    re-derived by :func:`allocate_sst_budgets`, so every SST builds through
    the same registry protocol the sweep uses — ``build_filter(sst_spec,
    sst.keys, shared_workload)``.
    """
    budgets = allocate_sst_budgets(spec.bits_per_key, key_counts, policy)
    return [spec.with_budget(budget) for budget in budgets]


def derive_shard_specs(
    spec: FilterSpec,
    shard_key_counts: Sequence[int],
    policy: str = "proportional",
) -> list[FilterSpec]:
    """Split a global spec across serving shards, one level above the SSTs.

    The sharded serving layer (:mod:`repro.serve`) partitions one tree's
    keys across worker processes; each shard then runs
    :func:`derive_sst_specs` over its own tables.  This helper is the
    outer split of that two-level allocation: the same
    :func:`allocate_sst_budgets` arithmetic with shards as the units, so
    the global-grant invariant holds at shard granularity
    (``sum(b_s * n_s) == bits_per_key * sum(n_s)``) and therefore — both
    policies preserve totals through the inner split — for the whole
    fleet.  Under ``proportional`` the composition is exactly the
    unsharded allocation (every SST everywhere at the global bits per
    key); under ``equal`` the strawman evens *shard* totals first, so
    shards with unequal SST counts diverge from the unsharded equal
    split — the documented price of composing the strawman.
    """
    budgets = allocate_sst_budgets(spec.bits_per_key, shard_key_counts, policy)
    return [spec.with_budget(budget) for budget in budgets]


def resplit_on_topology_change(
    spec: FilterSpec,
    key_counts: Sequence[int],
    previous: Sequence[FilterSpec | None],
    policy: str = "proportional",
    tolerance: float = 1e-9,
) -> tuple[list[FilterSpec], list[bool]]:
    """Re-derive per-SST specs after a flush or compaction changed the tree.

    The online write path changes the SST population continuously; every
    change must keep the global-grant invariant (per-SST bit grants sum to
    ``spec.bits_per_key * total_keys``), so the split is re-derived over
    the *current* ``key_counts``.  ``previous`` carries each surviving
    SST's currently-attached spec (``None`` for a fresh flush/compaction
    output with no filter yet); the returned ``stale`` mask marks the SSTs
    whose budget moved beyond ``tolerance`` bits per key (or that have no
    filter) — the only ones whose filter must be rebuilt.

    Under ``proportional`` (every SST at the global bits-per-key) a
    topology change never moves a surviving SST's budget, so only the new
    tables rebuild — the cheap steady state.  Under ``equal`` every
    per-SST grant depends on the SST count, so any topology change marks
    the whole tree stale: the documented price of the strawman policy.
    """
    if len(previous) != len(key_counts):
        raise ValueError(
            f"{len(previous)} previous specs do not match "
            f"{len(key_counts)} SSTs"
        )
    specs = derive_sst_specs(spec, key_counts, policy)
    stale = [
        old is None or abs(old.bits_per_key - new.bits_per_key) > tolerance
        for old, new in zip(previous, specs)
    ]
    return specs, stale
