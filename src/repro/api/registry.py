"""The filter-family registry and the uniform ``build_filter`` protocol.

Every range-filter family registers under a short name with
``@register_family("name")`` (or a direct call, as the built-ins below do).
A registered class must implement the build protocol

    ``cls.from_spec(spec, keys=None, workload=None) -> RangeFilter``

where ``spec`` is a :class:`~repro.api.spec.FilterSpec`, ``keys`` an
optional key set (defaulting to the workload's), and ``workload`` an
optional :class:`~repro.api.workload.Workload`.  :func:`build_filter` is
then the single entry point callers need — "build family F over workload W
at budget B" with no family-specific branches, which is what lets the sweep
driver and the (planned) per-SST LSM construction treat every family
identically.

Built-in registrations live *here*, not in the filter modules, so
``repro.filters`` and ``repro.core`` never import ``repro.api`` at module
level (the legacy ``build`` shims import it lazily inside the call).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable

from repro.api.spec import FilterSpec
from repro.api.workload import Workload
from repro.obs.metrics import MetricsRegistry
from repro.core.prf import OnePBF, TwoPBF
from repro.core.proteus import Proteus
from repro.filters.base import RangeFilter, TrieOracle
from repro.filters.prefix_bloom import PointBloomFilter, PrefixBloomFilter
from repro.filters.rosetta import Rosetta
from repro.filters.surf import SuRF

__all__ = [
    "FilterFamily",
    "register_family",
    "registered_families",
    "family",
    "build_filter",
]


@dataclass(frozen=True)
class FilterFamily:
    """A registry entry: the builder class plus protocol metadata.

    ``requires_workload`` marks self-designing families (their query sample
    is a build *input*, not a hint); ``budget_free`` marks families whose
    footprint ignores ``bits_per_key`` (the exact oracle) — consumers that
    sweep budgets skip those.  ``accepts_metrics`` is detected from the
    ``from_spec`` signature at registration: families that take a
    ``metrics=`` keyword receive the registry ``build_filter`` was given,
    others are built untouched (third-party families opt in by adding the
    parameter).
    """

    name: str
    cls: type
    requires_workload: bool = False
    budget_free: bool = False
    accepts_metrics: bool = False


_FAMILIES: dict[str, FilterFamily] = {}

#: Histogram buckets for built filters' actual bits-per-key (upper bounds).
BITS_PER_KEY_BUCKETS = (2.0, 4.0, 8.0, 12.0, 16.0, 24.0, 32.0, 64.0)


def register_family(
    name: str, *, requires_workload: bool = False, budget_free: bool = False
) -> Callable[[type], type]:
    """Class decorator registering a filter family under ``name``.

    The class must implement ``from_spec(spec, keys, workload)``; duplicate
    names are an error (re-registering would silently reroute every spec
    that names the family).
    """
    def decorate(cls: type) -> type:
        if name in _FAMILIES:
            raise ValueError(
                f"filter family {name!r} is already registered "
                f"(to {_FAMILIES[name].cls.__name__})"
            )
        builder = getattr(cls, "from_spec", None)
        if not callable(builder):
            raise TypeError(
                f"{cls.__name__} does not implement the build protocol "
                f"classmethod from_spec(spec, keys, workload)"
            )
        accepts_metrics = "metrics" in inspect.signature(builder).parameters
        _FAMILIES[name] = FilterFamily(
            name, cls, requires_workload, budget_free, accepts_metrics
        )
        return cls

    return decorate


def registered_families() -> tuple[str, ...]:
    """Return the registered family names, sorted."""
    return tuple(sorted(_FAMILIES))


def family(name: str) -> FilterFamily:
    """Return the registry entry for ``name`` (ValueError when unknown)."""
    try:
        return _FAMILIES[name]
    except KeyError:
        raise ValueError(
            f"unknown filter family {name!r}; "
            f"registered: {list(registered_families())}"
        ) from None


def build_filter(
    spec: FilterSpec,
    keys=None,
    workload: Workload | None = None,
    metrics: MetricsRegistry | None = None,
) -> RangeFilter:
    """Build ``spec.family`` over ``keys``/``workload`` at ``spec.bits_per_key``.

    The uniform construction entry point: dispatches through the registry
    to the family's ``from_spec``, after checking that self-designing
    families actually received the workload sample they optimise against.
    ``metrics`` optionally instruments the build: total/per-family build
    counts and timings plus the built filter's charged size, and — for
    families whose ``from_spec`` accepts it — the inner model/design-search
    phases too.  ``metrics=None`` (the default) is the uninstrumented path:
    one ``is None`` check, nothing else.
    """
    entry = family(spec.family)
    if entry.requires_workload and workload is None:
        raise ValueError(
            f"filter family {spec.family!r} is self-designing and needs a "
            f"workload (query sample) to optimise against"
        )
    if metrics is None:
        return entry.cls.from_spec(spec, keys, workload)
    with metrics.timer("build.seconds"):
        if entry.accepts_metrics:
            filt = entry.cls.from_spec(spec, keys, workload, metrics=metrics)
        else:
            filt = entry.cls.from_spec(spec, keys, workload)
    metrics.inc("build.filters")
    metrics.inc(f"build.{spec.family}.filters")
    metrics.inc("build.size_bits", filt.size_in_bits())
    metrics.observe(
        "build.bits_per_key", filt.bits_per_key(), buckets=BITS_PER_KEY_BUCKETS
    )
    return filt


# --------------------------------------------------------------------- #
# Built-in families                                                     #
# --------------------------------------------------------------------- #

register_family("proteus", requires_workload=True)(Proteus)
register_family("1pbf", requires_workload=True)(OnePBF)
register_family("2pbf", requires_workload=True)(TwoPBF)
register_family("surf")(SuRF)
register_family("rosetta")(Rosetta)
register_family("prefix_bloom")(PrefixBloomFilter)
register_family("bloom")(PointBloomFilter)
register_family("oracle", budget_free=True)(TrieOracle)
