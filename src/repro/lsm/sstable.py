"""SSTables: contiguous key-set slices with fences and an optional filter.

An SST here is what the I/O cost model needs of a RocksDB table file: a
sorted, contiguous run of keys (a zero-copy
:meth:`~repro.workloads.keyset.KeySet.slice` view into its level's key
array), its min/max *fences* (always resident, consulted for free), and the
per-SST range filter the paper attaches — built through the
:mod:`repro.api` registry from a shared workload sample, exactly like every
other filter in the repository.

The SST is representation-agnostic: any :class:`~repro.workloads.keyset.
KeySet` works, because fences, ground truth, and slicing only need the
``keys`` array's native sort order — ``int64``/``object`` integers and
``S``-dtype byte strings both ``searchsorted`` correctly.  Fences are
native scalars (``int`` or ``bytes``) accordingly.

The SST also knows its own ground truth (:meth:`matches_many`): whether a
query range actually contains one of its keys, via binary search on the
slice.  The cost model compares filter answers against this to classify
each charged block read as required or false-positive.

Online SSTs (flush and compaction outputs, :mod:`repro.lsm.online`) carry
an optional *tombstone* mask alongside the keys: a tombstoned entry
records a delete that still shadows older entries for the same key in
deeper levels.  Tombstones are real entries — they occupy the table, the
filter indexes them, and a read that lands on one is a *required* read
(it is how the tree learns the key is deleted) — so :meth:`matches_many`
deliberately answers over all entries, live and deleted alike.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.api.spec import FilterSpec
from repro.filters.base import RangeFilter
from repro.workloads.batch import QueryBatch
from repro.workloads.keyset import KeySet

__all__ = ["SSTable"]


class SSTable:
    """One sorted run of keys with fences and an optional range filter."""

    __slots__ = ("level", "index", "keys", "filter", "spec", "tombstones")

    def __init__(
        self,
        level: int,
        index: int,
        keys: KeySet,
        tombstones: np.ndarray | None = None,
    ):
        if len(keys) == 0:
            raise ValueError("an SSTable must hold at least one key")
        if tombstones is not None:
            tombstones = np.asarray(tombstones, dtype=bool)
            if tombstones.shape != (len(keys),):
                raise ValueError(
                    f"tombstone mask of shape {tombstones.shape} does not "
                    f"match {len(keys)} keys"
                )
            if not tombstones.any():
                tombstones = None
        self.level = level
        self.index = index
        self.keys = keys
        self.tombstones = tombstones
        self.filter: RangeFilter | None = None
        self.spec: FilterSpec | None = None

    @property
    def width(self) -> int:
        return self.keys.width

    @property
    def min_key(self) -> int | bytes:
        """Lower fence: the smallest key, as a native scalar."""
        return self.keys.first

    @property
    def max_key(self) -> int | bytes:
        """Upper fence: the largest key, as a native scalar."""
        return self.keys.last

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def num_tombstones(self) -> int:
        """How many of this table's entries are deletes."""
        return int(self.tombstones.sum()) if self.tombstones is not None else 0

    def tombstone_mask(self) -> np.ndarray:
        """The tombstone mask, materialised (all-False when ``None``)."""
        if self.tombstones is None:
            return np.zeros(len(self.keys), dtype=bool)
        return self.tombstones

    @staticmethod
    def merge_sorted(key_sets: Sequence[KeySet]) -> KeySet:
        """Merge already-sorted key sets into one sorted distinct set.

        The k-way merge behind compaction, as a single
        ``np.concatenate``+``lexsort`` pass through the
        :func:`repro.kernels.merge_runs` kernel instead of a Python heap
        loop — parity-pinned against the ``heapq.merge`` scalar reference
        in ``tests/test_batch_parity.py``.
        """
        from repro.lsm.merge import merge_key_sets

        return merge_key_sets(key_sets)

    def attach_filter(self, filt: RangeFilter, spec: FilterSpec | None = None) -> None:
        """Install the per-SST filter (and remember the spec that built it)."""
        if filt.width != self.width:
            raise ValueError(
                f"filter width {filt.width} does not match SST width {self.width}"
            )
        self.filter = filt
        self.spec = spec

    def clear_filter(self) -> None:
        self.filter = None
        self.spec = None

    def overlaps(self, lo, hi) -> bool:
        """Fence check: can ``[lo, hi]`` intersect this table at all?

        Bounds are native scalars: padded-order and native lexicographic
        order coincide (canonical byte keys never end in a null), so the
        comparison is representation-blind.
        """
        return self.min_key <= hi and self.max_key >= lo

    def matches_many(self, los: np.ndarray, his: np.ndarray) -> np.ndarray:
        """Exact per-query truth: does ``[lo, hi]`` contain a key of this SST?

        ``[lo, hi]`` contains a key iff the first key ``>= lo`` exists and is
        ``<= hi`` — two binary searches on the sorted slice.  Works for the
        ``object``-dtype wide-key fallback too (``searchsorted`` compares
        Python ints).
        """
        arr = self.keys.keys
        idx = np.searchsorted(arr, los, side="left")
        safe = np.minimum(idx, len(arr) - 1)
        found = (idx < len(arr)) & np.asarray(arr[safe] <= his, dtype=bool)
        return np.asarray(found, dtype=bool)

    def probe_many(self, batch: QueryBatch) -> np.ndarray:
        """Filter answers for a (fence-surviving) query batch.

        With no filter attached every probe is positive — the no-filter
        baseline reads every fence-surviving table.
        """
        if self.filter is None:
            return np.ones(len(batch), dtype=bool)
        return self.filter.may_intersect_many(batch)

    def filter_size_bits(self) -> int:
        """Charged footprint of the attached filter (0 when none)."""
        return self.filter.size_in_bits() if self.filter is not None else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SSTable(level={self.level}, index={self.index}, keys={len(self)}, "
            f"fences=[{self.min_key}, {self.max_key}], "
            f"filter={'yes' if self.filter is not None else 'no'})"
        )
