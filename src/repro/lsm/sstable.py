"""SSTables: contiguous key-set slices with fences and an optional filter.

An SST here is what the I/O cost model needs of a RocksDB table file: a
sorted, contiguous run of keys (a zero-copy
:meth:`~repro.workloads.batch.EncodedKeySet.slice` view into its level's key
array), its min/max *fences* (always resident, consulted for free), and the
per-SST range filter the paper attaches — built through the
:mod:`repro.api` registry from a shared workload sample, exactly like every
other filter in the repository.

The SST also knows its own ground truth (:meth:`matches_many`): whether a
query range actually contains one of its keys, via binary search on the
slice.  The cost model compares filter answers against this to classify
each charged block read as required or false-positive.
"""

from __future__ import annotations

import numpy as np

from repro.api.spec import FilterSpec
from repro.filters.base import RangeFilter
from repro.workloads.batch import EncodedKeySet, QueryBatch

__all__ = ["SSTable"]


class SSTable:
    """One sorted run of keys with fences and an optional range filter."""

    __slots__ = ("level", "index", "keys", "filter", "spec")

    def __init__(self, level: int, index: int, keys: EncodedKeySet):
        if len(keys) == 0:
            raise ValueError("an SSTable must hold at least one key")
        self.level = level
        self.index = index
        self.keys = keys
        self.filter: RangeFilter | None = None
        self.spec: FilterSpec | None = None

    @property
    def width(self) -> int:
        return self.keys.width

    @property
    def min_key(self) -> int:
        """Lower fence: the smallest key in the table."""
        return int(self.keys.keys[0])

    @property
    def max_key(self) -> int:
        """Upper fence: the largest key in the table."""
        return int(self.keys.keys[-1])

    def __len__(self) -> int:
        return len(self.keys)

    def attach_filter(self, filt: RangeFilter, spec: FilterSpec | None = None) -> None:
        """Install the per-SST filter (and remember the spec that built it)."""
        if filt.width != self.width:
            raise ValueError(
                f"filter width {filt.width} does not match SST width {self.width}"
            )
        self.filter = filt
        self.spec = spec

    def clear_filter(self) -> None:
        self.filter = None
        self.spec = None

    def overlaps(self, lo: int, hi: int) -> bool:
        """Fence check: can ``[lo, hi]`` intersect this table at all?"""
        return self.min_key <= hi and self.max_key >= lo

    def matches_many(self, los: np.ndarray, his: np.ndarray) -> np.ndarray:
        """Exact per-query truth: does ``[lo, hi]`` contain a key of this SST?

        ``[lo, hi]`` contains a key iff the first key ``>= lo`` exists and is
        ``<= hi`` — two binary searches on the sorted slice.  Works for the
        ``object``-dtype wide-key fallback too (``searchsorted`` compares
        Python ints).
        """
        arr = self.keys.keys
        idx = np.searchsorted(arr, los, side="left")
        safe = np.minimum(idx, len(arr) - 1)
        found = (idx < len(arr)) & np.asarray(arr[safe] <= his, dtype=bool)
        return np.asarray(found, dtype=bool)

    def probe_many(self, batch: QueryBatch) -> np.ndarray:
        """Filter answers for a (fence-surviving) query batch.

        With no filter attached every probe is positive — the no-filter
        baseline reads every fence-surviving table.
        """
        if self.filter is None:
            return np.ones(len(batch), dtype=bool)
        return self.filter.may_intersect_many(batch)

    def filter_size_bits(self) -> int:
        """Charged footprint of the attached filter (0 when none)."""
        return self.filter.size_in_bits() if self.filter is not None else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SSTable(level={self.level}, index={self.index}, keys={len(self)}, "
            f"fences=[{self.min_key}, {self.max_key}], "
            f"filter={'yes' if self.filter is not None else 'no'})"
        )
