"""The LSM tree substrate: leveled geometry, per-SST filters, batched probes.

This is the paper's end-to-end RocksDB experiment as a simulation:

* **Geometry** — leveled compaction shape.  Level ``i`` holds up to
  ``fanout**i`` SSTs of ``sst_keys`` keys each; levels fill top-down, the
  deepest level absorbing the remainder, so the bulk of the data sits at the
  bottom — the steady state leveled compaction converges to.  Keys are
  assigned to levels by a seeded permutation, so every level is a sorted run
  spanning the whole key space: levels overlap each other (queries must
  consult all of them) while the SSTs *within* a level are disjoint and
  fence-pruned by binary search, exactly as in RocksDB.
* **Filters** — :meth:`LSMTree.attach_filters` builds one filter per SST
  through the uniform registry protocol: a global
  :class:`~repro.api.spec.FilterSpec` is split into per-SST specs
  (:func:`~repro.api.budget.derive_sst_specs`) and every SST builds via
  ``build_filter(sst_spec, sst.keys, workload)`` from **one shared query
  sample** — the paper's deployment, where each table self-designs against
  the system-wide sample.
* **Probes** — :meth:`LSMTree.probe` replays a
  :class:`~repro.workloads.batch.QueryBatch` through the tree with batched
  routing: per level, two ``searchsorted`` calls locate each query's
  fence-surviving SST interval; per SST, the surviving queries form one
  sub-batch answered by a single vectorised filter call.  Accounting follows
  :mod:`repro.lsm.cost`: a block read is charged only on a filter positive.
"""

from __future__ import annotations

import numpy as np

from repro.api import FilterSpec, Workload, build_filter, derive_sst_specs
from repro.filters.base import ragged_ranges
from repro.lsm.cost import CostModel, ProbeResult, SstStats
from repro.lsm.sstable import SSTable
from repro.obs.metrics import timed
from repro.obs.trace import ProbeTrace
from repro.workloads.batch import (
    MAX_VECTOR_WIDTH,
    coerce_query_batch,
)
from repro.workloads.keyset import KeySet

__all__ = ["LSMTree"]

#: Default SST capacity in keys.
DEFAULT_SST_KEYS = 512

#: Default level-size growth factor (RocksDB's default is 10; 4 keeps the
#: smoke-scale trees multi-level).
DEFAULT_FANOUT = 4


class LSMTree:
    """A leveled LSM tree of :class:`~repro.lsm.sstable.SSTable` runs."""

    def __init__(
        self,
        levels: list[list[SSTable]],
        width: int,
        geometry: dict | None = None,
    ):
        if not levels or not any(levels):
            raise ValueError("an LSM tree needs at least one non-empty level")
        self.width = width
        self.levels = levels
        self.geometry = dict(geometry or {})
        for level in levels:
            for sst in level:
                if sst.width != width:
                    raise ValueError(
                        f"SST width {sst.width} does not match tree width {width}"
                    )
        # Per-level fence arrays: SSTs in a level are disjoint and sorted,
        # so min/max fences are both increasing and a query's candidate SSTs
        # form the contiguous interval two searchsorted calls locate.  A
        # level compacted away entirely (legal mid-lifecycle: level i merged
        # into i+1 leaves an empty level between populated neighbours) gets
        # empty fence arrays — searchsorted then routes zero queries to it,
        # so probe never special-cases the gap.  Fences take the key set's
        # *natural* dtype — S-strings for byte trees (so a ByteQueryBatch's
        # S-dtype bounds searchsort directly, in memcmp order), int64/object
        # for integer trees.  An empty level cannot reveal the dtype, so it
        # comes from the first populated SST (one always exists; the
        # constructor rejects an all-empty tree) with the width as fallback.
        sample = next(sst for level in levels for sst in level)
        if sample.keys.is_bytes:
            dtype = sample.keys.keys.dtype
        else:
            dtype = np.int64 if width <= MAX_VECTOR_WIDTH else object
        self._fences = []
        for level in levels:
            mins = np.array([sst.min_key for sst in level], dtype=dtype)
            maxs = np.array([sst.max_key for sst in level], dtype=dtype)
            self._fences.append((mins, maxs))

    # ------------------------------------------------------------------ #
    # Construction                                                       #
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        keys: KeySet,
        sst_keys: int = DEFAULT_SST_KEYS,
        fanout: int = DEFAULT_FANOUT,
        seed: int = 0,
    ) -> "LSMTree":
        """Build the leveled tree over ``keys`` (filters attached separately).

        Level ``i`` has capacity ``sst_keys * fanout**i`` keys; levels fill
        shallow-to-deep, the deepest taking the remainder.  A seeded
        permutation decides which key lands in which level, then each
        level's keys are re-sorted (:meth:`~repro.workloads.keyset.KeySet.
        sorted_take`) and chopped into contiguous SSTs — zero-copy
        :meth:`~repro.workloads.keyset.KeySet.slice` views of the level's
        key set, whatever its representation.
        """
        if not isinstance(keys, KeySet):
            raise TypeError("LSMTree.build takes a KeySet")
        if len(keys) == 0:
            raise ValueError("cannot build an LSM tree over zero keys")
        if sst_keys < 1:
            raise ValueError("sst_keys must be at least 1")
        if fanout < 1:
            raise ValueError("fanout must be at least 1")
        sizes: list[int] = []
        remaining = len(keys)
        while remaining > 0:
            capacity = sst_keys * fanout ** len(sizes)
            take = min(capacity, remaining)
            sizes.append(take)
            remaining -= take
        perm = np.random.default_rng(seed).permutation(len(keys))
        levels: list[list[SSTable]] = []
        offset = 0
        for level_index, size in enumerate(sizes):
            chosen = perm[offset : offset + size]
            offset += size
            level_set = keys.sorted_take(chosen)
            ssts = []
            for sst_index, start in enumerate(range(0, size, sst_keys)):
                ssts.append(
                    SSTable(
                        level_index,
                        sst_index,
                        level_set.slice(start, min(start + sst_keys, size)),
                    )
                )
            levels.append(ssts)
        geometry = {"sst_keys": sst_keys, "fanout": fanout, "seed": seed}
        return cls(levels, keys.width, geometry)

    def attach_filters(
        self,
        spec: FilterSpec,
        workload: Workload,
        policy: str = "proportional",
        metrics=None,
    ) -> None:
        """Build one filter per SST from ``spec`` and the shared sample.

        ``spec`` carries the *global* bits-per-key budget; ``policy`` says
        how it splits across SSTs (:mod:`repro.api.budget`).  Every SST
        builds through ``build_filter(sst_spec, sst.keys, workload)`` — the
        self-designing families run Algorithm 1 per SST against the one
        shared query sample, fixed baselines derive their knobs per SST.
        ``metrics`` optionally instruments every per-SST build (and the
        whole attach pass) through the :mod:`repro.obs` registry.
        """
        ssts = self.sstables()
        specs = derive_sst_specs(spec, [len(sst) for sst in ssts], policy)
        with timed(metrics, "attach.seconds"):
            for sst, sst_spec in zip(ssts, specs):
                sst.attach_filter(
                    build_filter(sst_spec, sst.keys, workload, metrics=metrics),
                    sst_spec,
                )
        if metrics is not None:
            metrics.inc("attach.passes")
            metrics.inc("attach.ssts", len(ssts))
            metrics.set_gauge("attach.last_filter_bits", self.filter_size_bits())

    def clear_filters(self) -> None:
        """Detach every SST's filter (the no-filter baseline)."""
        for sst in self.sstables():
            sst.clear_filter()

    # ------------------------------------------------------------------ #
    # Probing                                                            #
    # ------------------------------------------------------------------ #

    def probe(
        self,
        queries,
        trace: ProbeTrace | None = None,
        sst_stats: dict[SSTable, SstStats] | None = None,
    ) -> ProbeResult:
        """Replay a query batch through the tree and return the accounting.

        Per level, each query's fence-surviving SSTs form a contiguous
        interval (``first[q] <= j < last[q]``); per SST, the queries routed
        to it are answered with one vectorised filter call and classified
        against the SST's exact ground truth.

        ``trace`` optionally records every routed (query, SST) pair as a
        :class:`~repro.obs.trace.ProbeEvent` — fence survival, filter
        verdict, charged block read, ground truth — whose totals reconcile
        exactly against the returned :class:`ProbeResult`
        (``trace.reconcile(result)``).  ``sst_stats`` optionally
        accumulates a :class:`~repro.lsm.cost.SstStats` per probed SST
        (keyed by the SST object itself), the granularity the per-SST
        drift monitors consume — pass the same dict across probes to
        accumulate over a stream.  Both hooks cost one ``is None`` check
        per routed SST group when unused.
        """
        batch = coerce_query_batch(queries, self.width)
        result = ProbeResult.zeros(len(batch), len(self.levels))
        if len(batch) == 0:
            return result
        for level_index, level in enumerate(self.levels):
            stats = result.per_level[level_index]
            mins, maxs = self._fences[level_index]
            # First SST whose max fence reaches lo; first whose min exceeds hi.
            first = np.searchsorted(maxs, batch.los, side="left")
            last = np.searchsorted(mins, batch.his, side="right")
            active = last > first
            if not active.any():
                continue
            # Flatten the (query, SST) routing pairs and group them by SST,
            # so the work below is proportional to the routed pairs — not to
            # num_ssts * num_queries, which a point-heavy batch over a wide
            # bottom level would make mostly wasted all-False masks.
            active_queries = np.nonzero(active)[0]
            lengths = (last - first)[active]
            flat_sst, _ = ragged_ranges(first[active], lengths)
            flat_query = np.repeat(active_queries, lengths)
            order = np.argsort(flat_sst, kind="stable")
            flat_sst = flat_sst[order]
            flat_query = flat_query[order]
            boundaries = np.nonzero(np.diff(flat_sst))[0] + 1
            starts = np.concatenate([[0], boundaries])
            ends = np.concatenate([boundaries, [flat_sst.size]])
            for start, end in zip(starts, ends):
                sst = level[int(flat_sst[start])]
                query_indices = flat_query[start:end]
                sub = batch.select(query_indices)
                truth = sst.matches_many(sub.los, sub.his)
                positives = sst.probe_many(sub)
                filtered = sst.filter is not None
                result.candidates[query_indices] += 1
                if filtered:
                    result.filter_probes[query_indices] += 1
                result.blocks_read[query_indices] += positives
                result.required_reads[query_indices] += truth
                result.false_positive_reads[query_indices] += positives & ~truth
                result.missed_reads[query_indices] += truth & ~positives
                if trace is not None:
                    trace.record_sst(
                        level_index,
                        int(flat_sst[start]),
                        query_indices,
                        positives,
                        truth,
                        filtered,
                    )
                stats.candidates += int(query_indices.size)
                stats.filter_probes += int(query_indices.size) if filtered else 0
                stats.blocks_read += int(positives.sum())
                stats.required_reads += int(truth.sum())
                stats.false_positive_reads += int((positives & ~truth).sum())
                stats.missed_reads += int((truth & ~positives).sum())
                if sst_stats is not None:
                    per_sst = sst_stats.setdefault(sst, SstStats())
                    per_sst.candidates += int(query_indices.size)
                    per_sst.filter_probes += (
                        int(query_indices.size) if filtered else 0
                    )
                    per_sst.blocks_read += int(positives.sum())
                    per_sst.required_reads += int(truth.sum())
                    per_sst.false_positive_reads += int((positives & ~truth).sum())
                    per_sst.missed_reads += int((truth & ~positives).sum())
        return result

    # ------------------------------------------------------------------ #
    # Accounting and introspection                                       #
    # ------------------------------------------------------------------ #

    def sstables(self) -> list[SSTable]:
        """Every SST, shallow level first, left to right within a level."""
        return [sst for level in self.levels for sst in level]

    @property
    def num_keys(self) -> int:
        return sum(len(sst) for sst in self.sstables())

    @property
    def num_ssts(self) -> int:
        return sum(len(level) for level in self.levels)

    def filter_bits_per_level(self) -> list[int]:
        """Per-level filter memory: the sum of each SST filter's charged bits."""
        return [sum(sst.filter_size_bits() for sst in level) for level in self.levels]

    def filter_size_bits(self) -> int:
        """Tree-wide filter memory in bits."""
        return sum(self.filter_bits_per_level())

    def describe(self, cost_model: CostModel | None = None) -> dict:
        """JSON-ready geometry and memory summary."""
        summary = {
            "width": self.width,
            "num_keys": self.num_keys,
            "num_levels": len(self.levels),
            "num_ssts": self.num_ssts,
            "geometry": dict(self.geometry),
            "levels": [
                {
                    "level": index,
                    "num_ssts": len(level),
                    "num_keys": sum(len(sst) for sst in level),
                    "filter_bits": bits,
                }
                for index, (level, bits) in enumerate(
                    zip(self.levels, self.filter_bits_per_level())
                )
            ],
        }
        if cost_model is not None:
            summary["cost_model"] = cost_model.to_dict()
        return summary

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LSMTree(levels={len(self.levels)}, ssts={self.num_ssts}, "
            f"keys={self.num_keys}, width={self.width})"
        )
