"""The online LSM write path: memtable → flush → leveled compaction.

:mod:`repro.lsm` builds a tree once and probes it; this module makes the
tree *churn*, the setting the paper's RocksDB experiment actually measures.
Writes buffer in a :class:`~repro.lsm.memtable.MemTable`; a full (or
forced) flush seals the buffer into a level-0 SST; level 0 accumulates
overlapping runs size-tiered until ``level0_runs`` of them exist, then a
compaction merges them — newest wins — with level 1 into a fresh level 1;
any deep level that outgrows its ``sst_keys * fanout**i`` entry capacity
merges wholesale into the level below (leaving itself empty — the
"compacted-away middle level" the fence router must tolerate).  Tombstones
ride along as real entries, shadowing older versions of their key, and are
dropped only when a merge writes the deepest populated level, where there
is nothing left below to shadow.

The **filter lifecycle** closes over this: after every topology change the
global ``bits_per_key`` budget is re-split across the surviving SSTs
(:func:`repro.api.budget.resplit_on_topology_change`) and every stale or
fresh table rebuilds its filter through the uniform
``build_filter(sst_spec, sst.keys, workload)`` registry protocol — the
same call the static tree uses, so the filter population tracks the tree
as it evolves.  :meth:`set_design_queries` swaps the shared design sample
(the drift actuator's lever: after a redesign the *next* flush and
compaction also build against the fresh sample, not the stale one).

Reads: :meth:`probe` runs the standard cost-model accounting over a
:meth:`snapshot` (a plain :class:`~repro.lsm.tree.LSMTree` sharing this
tree's SST objects — each level-0 run is its own single-SST level, deep
levels carry over, empty ones included); :meth:`lookup_many` resolves
live-vs-deleted truth by recency, memtable first.
"""

from __future__ import annotations

import numpy as np

from repro.api import FilterSpec, Workload, build_filter, resplit_on_topology_change
from repro.lsm.cost import ProbeResult, SstStats
from repro.lsm.memtable import MemTable
from repro.lsm.merge import EntryRun, merge_entry_runs
from repro.lsm.sstable import SSTable
from repro.lsm.tree import DEFAULT_FANOUT, DEFAULT_SST_KEYS, LSMTree
from repro.obs.metrics import timed
from repro.obs.trace import ProbeTrace
from repro.workloads.batch import QueryBatch, probe_key_array

__all__ = ["OnlineLSMTree"]

#: Default level-0 run count that triggers the first compaction.
DEFAULT_LEVEL0_RUNS = 4


class OnlineLSMTree:
    """A churning leveled LSM tree with a self-tracking filter population."""

    def __init__(
        self,
        width: int,
        spec: FilterSpec | None = None,
        design_queries: QueryBatch | None = None,
        sst_keys: int = DEFAULT_SST_KEYS,
        fanout: int = DEFAULT_FANOUT,
        level0_runs: int = DEFAULT_LEVEL0_RUNS,
        memtable_capacity: int | None = None,
        policy: str = "proportional",
        metrics=None,
    ):
        if sst_keys < 1:
            raise ValueError("sst_keys must be at least 1")
        if fanout < 1:
            raise ValueError("fanout must be at least 1")
        if level0_runs < 1:
            raise ValueError("level0_runs must be at least 1")
        if design_queries is not None and design_queries.width != width:
            raise ValueError(
                f"design sample width {design_queries.width} does not match "
                f"tree width {width}"
            )
        self.width = width
        self.spec = spec
        self.design_queries = design_queries
        self.sst_keys = sst_keys
        self.fanout = fanout
        self.level0_runs = level0_runs
        self.policy = policy
        self.metrics = metrics
        self.memtable = MemTable(width, memtable_capacity or sst_keys)
        #: Level-0 runs, newest first; each spans the whole key space.
        self.level0: list[SSTable] = []
        #: Deep levels: ``deep_levels[i]`` is level ``i + 1`` — disjoint,
        #: sorted SSTs (possibly an empty, compacted-away level).
        self.deep_levels: list[list[SSTable]] = []
        self._sst_counter = 0
        self.stats = {
            "flushes": 0,
            "compactions": 0,
            "entries_merged": 0,
            "entries_written": 0,
            "tombstones_dropped": 0,
            "filters_built": 0,
        }

    # ------------------------------------------------------------------ #
    # Writes                                                             #
    # ------------------------------------------------------------------ #

    def put(self, key) -> None:
        """Insert (or resurrect) ``key``; flushes when the memtable fills."""
        self.memtable.put(key)
        if self.memtable.is_full:
            self.flush()

    def delete(self, key) -> None:
        """Tombstone ``key``; flushes when the memtable fills."""
        self.memtable.delete(key)
        if self.memtable.is_full:
            self.flush()

    def apply(self, ops) -> None:
        """Apply a batch of ``("put"|"del", key)`` ops (auto-flushing)."""
        for op, key in ops:
            if op == "put":
                self.put(key)
            elif op == "del":
                self.delete(key)
            else:
                raise ValueError(f"unknown write op {op!r}; expected 'put' or 'del'")

    def flush(self) -> SSTable | None:
        """Seal the memtable into a level-0 SST (no-op when empty).

        The new run lands at the front of level 0 (newest first); its
        filter is built by the post-change budget re-split, and a level-0
        population beyond ``level0_runs`` triggers compaction into level 1.
        """
        if self.memtable.is_empty:
            return None
        run = self.memtable.seal()
        sst = SSTable(0, self._next_index(), run.keys, run.tombstones)
        self.level0.insert(0, sst)
        self.stats["flushes"] += 1
        if self.metrics is not None:
            self.metrics.inc("online.flushes")
        if len(self.level0) > self.level0_runs:
            self._compact_level0()
        self._rebudget()
        return sst

    # ------------------------------------------------------------------ #
    # Compaction                                                         #
    # ------------------------------------------------------------------ #

    def _next_index(self) -> int:
        self._sst_counter += 1
        return self._sst_counter

    def _level_capacity(self, depth: int) -> int:
        """Entry capacity of deep level ``depth`` (1-based)."""
        return self.sst_keys * self.fanout**depth

    def _entries_below(self, depth: int) -> int:
        """Total entries strictly deeper than deep level ``depth``."""
        return sum(
            len(sst) for level in self.deep_levels[depth:] for sst in level
        )

    def _merge_into(self, runs: list[EntryRun], depth: int) -> list[SSTable]:
        """Merge ``runs`` (newest first) into deep level ``depth``'s SSTs.

        Tombstones are dropped exactly when nothing lives below the target
        level; the merged run is chopped into ``sst_keys``-entry SSTs that
        are zero-copy slices of one merged array.
        """
        drop = self._entries_below(depth) == 0
        merged = merge_entry_runs(runs, drop_tombstones=drop)
        in_entries = sum(len(run) for run in runs)
        self.stats["compactions"] += 1
        self.stats["entries_merged"] += in_entries
        self.stats["entries_written"] += len(merged)
        if drop:
            survivors = merged.num_tombstones
            dropped_all = sum(run.num_tombstones for run in runs)
            self.stats["tombstones_dropped"] += dropped_all - survivors
        if self.metrics is not None:
            self.metrics.inc("online.compactions")
            self.metrics.inc("online.entries_merged", in_entries)
        ssts = []
        tombstones = merged.tombstone_mask() if merged.tombstones is not None else None
        for start in range(0, len(merged), self.sst_keys):
            stop = min(start + self.sst_keys, len(merged))
            ssts.append(
                SSTable(
                    depth,
                    self._next_index(),
                    merged.keys.slice(start, stop),
                    tombstones[start:stop] if tombstones is not None else None,
                )
            )
        return ssts

    def _compact_level0(self) -> None:
        """Merge every level-0 run with level 1 into a fresh level 1."""
        runs = [EntryRun(sst.keys, sst.tombstones) for sst in self.level0]
        if self.deep_levels:
            runs.extend(
                EntryRun(sst.keys, sst.tombstones) for sst in self.deep_levels[0]
            )
        else:
            self.deep_levels.append([])
        self.level0 = []
        self.deep_levels[0] = self._merge_into(runs, 1)
        self._cascade(1)

    def _cascade(self, depth: int) -> None:
        """Spill any over-capacity deep level wholesale into the next one."""
        while depth <= len(self.deep_levels):
            level = self.deep_levels[depth - 1]
            entries = sum(len(sst) for sst in level)
            if entries <= self._level_capacity(depth):
                break
            if depth == len(self.deep_levels):
                self.deep_levels.append([])
            runs = [EntryRun(sst.keys, sst.tombstones) for sst in level]
            runs.extend(
                EntryRun(sst.keys, sst.tombstones)
                for sst in self.deep_levels[depth]
            )
            self.deep_levels[depth - 1] = []
            self.deep_levels[depth] = self._merge_into(runs, depth + 1)
            depth += 1

    # ------------------------------------------------------------------ #
    # The filter lifecycle                                               #
    # ------------------------------------------------------------------ #

    def sstables(self) -> list[SSTable]:
        """Every SST, newest level-0 run first, then deep levels downward."""
        return self.level0 + [
            sst for level in self.deep_levels for sst in level
        ]

    def set_design_queries(self, queries: QueryBatch) -> None:
        """Swap the shared design sample future filter builds optimise against.

        This is the actuator's lever: a drift-triggered redesign refreshes
        the sample here so flush and compaction outputs also self-design
        against the *current* mix rather than the one the tree started
        with.  Already-attached filters are not touched — the lifecycle
        rebuilds exactly the flagged ones.
        """
        if queries.width != self.width:
            raise ValueError(
                f"design sample width {queries.width} does not match "
                f"tree width {self.width}"
            )
        self.design_queries = queries

    def design_workload_for(self, sst: SSTable) -> Workload | None:
        """The ``build_filter`` workload for one SST: its keys + the sample."""
        if self.design_queries is None:
            return None
        return Workload(sst.keys, self.design_queries)

    def build_sst_filter(self, sst: SSTable, spec: FilterSpec) -> None:
        """(Re)build one SST's filter through the registry and attach it."""
        filt = build_filter(
            spec, sst.keys, self.design_workload_for(sst), metrics=self.metrics
        )
        sst.attach_filter(filt, spec)
        self.stats["filters_built"] += 1
        if self.metrics is not None:
            self.metrics.inc("online.filters_built")

    def _rebudget(self) -> int:
        """Re-split the global budget and rebuild every stale filter.

        Called after each topology change.  Returns how many filters were
        (re)built; zero when the tree runs unfiltered (``spec is None``).
        Under the proportional policy only fresh SSTs are stale; under
        ``equal`` every grant shifts with the SST count, so the whole
        population rebuilds — the documented cost of that strawman.
        """
        if self.spec is None:
            return 0
        ssts = self.sstables()
        if not ssts:
            return 0
        specs, stale = resplit_on_topology_change(
            self.spec,
            [len(sst) for sst in ssts],
            [sst.spec if sst.filter is not None else None for sst in ssts],
            self.policy,
        )
        rebuilt = 0
        with timed(self.metrics, "online.rebudget.seconds"):
            for sst, sst_spec, is_stale in zip(ssts, specs, stale):
                if is_stale:
                    self.build_sst_filter(sst, sst_spec)
                    rebuilt += 1
        return rebuilt

    # ------------------------------------------------------------------ #
    # Reads                                                              #
    # ------------------------------------------------------------------ #

    @property
    def num_entries(self) -> int:
        """On-disk entries (live + tombstones), excluding the memtable."""
        return sum(len(sst) for sst in self.sstables())

    @property
    def num_ssts(self) -> int:
        return len(self.level0) + sum(len(level) for level in self.deep_levels)

    def filter_size_bits(self) -> int:
        return sum(sst.filter_size_bits() for sst in self.sstables())

    def snapshot(self) -> LSMTree:
        """The current topology as a probe-ready :class:`LSMTree` view.

        Shares this tree's SST objects (filter swaps show through without
        a rebuild): each level-0 run becomes its own single-SST level —
        runs overlap, but a one-table level is trivially disjoint — and
        the deep levels carry over verbatim, empty gaps included.
        """
        levels: list[list[SSTable]] = [[sst] for sst in self.level0]
        levels.extend(list(level) for level in self.deep_levels)
        if not any(levels):
            raise ValueError(
                "cannot snapshot a tree with no SSTs (flush the memtable first)"
            )
        geometry = {
            "sst_keys": self.sst_keys,
            "fanout": self.fanout,
            "level0_runs": self.level0_runs,
            "online": True,
        }
        return LSMTree(levels, self.width, geometry)

    def probe(
        self,
        queries,
        trace: ProbeTrace | None = None,
        sst_stats: dict[SSTable, SstStats] | None = None,
    ) -> ProbeResult:
        """Cost-model accounting of a query batch over the current topology.

        Delegates to :meth:`LSMTree.probe` on a :meth:`snapshot`; the
        memtable is not consulted — it is resident memory, and the cost
        model only prices SST block reads.
        """
        return self.snapshot().probe(queries, trace=trace, sst_stats=sst_stats)

    def _probe_array(self, keys) -> np.ndarray:
        """Probe keys as a numpy array in the tree's native key order.

        Delegates to :func:`~repro.workloads.batch.probe_key_array` — the
        same representation dispatch ``coerce_keys`` gives the static
        build path, but order- and duplicate-preserving, with over-length
        byte probes rejected (truncation could fabricate a hit) and
        probes of the wrong representation rejected against what the
        tree actually holds (first SST, else the buffered memtable kind).
        """
        expect_bytes: bool | None = None
        ssts = self.sstables()
        if ssts:
            expect_bytes = ssts[0].keys.is_bytes
        else:
            sample = self.memtable.sample_key()
            if sample is not None:
                expect_bytes = isinstance(sample, bytes)
        return probe_key_array(keys, self.width, expect_bytes=expect_bytes)

    def lookup_many(self, keys) -> np.ndarray:
        """Live membership per key: the newest entry wins, tombstones hide.

        Resolution order is recency: the memtable, then level-0 runs
        newest first, then the deep levels downward (within a deep level
        the SSTs are disjoint, so order is immaterial).  Returns one bool
        per key — ``True`` iff the key's newest entry is a live put.

        Byte probes become an ``S``-dtype array so the per-SST bisection
        runs in the tables' native (``memcmp``) order; integer probes keep
        the int64/object path.
        """
        arr = self._probe_array(keys)
        found = np.zeros(arr.size, dtype=bool)
        resolved = np.zeros(arr.size, dtype=bool)
        for position, key in enumerate(arr.tolist()):
            state = self.memtable.get(key)
            if state is not None:
                resolved[position] = True
                found[position] = state
        for sst in self.sstables():
            unresolved = np.nonzero(~resolved)[0]
            if unresolved.size == 0:
                break
            table = sst.keys.keys
            pos = np.searchsorted(table, arr[unresolved])
            safe = np.minimum(pos, len(table) - 1)
            hit = (pos < len(table)) & np.asarray(
                table[safe] == arr[unresolved], dtype=bool
            )
            hit_rows = unresolved[hit]
            if hit_rows.size == 0:
                continue
            resolved[hit_rows] = True
            live = ~sst.tombstone_mask()[safe[hit]]
            found[hit_rows] = live
        return found

    def describe(self) -> dict:
        """JSON-ready topology, memory, and lifetime-counter summary."""
        return {
            "width": self.width,
            "num_entries": self.num_entries,
            "num_ssts": self.num_ssts,
            "memtable_entries": len(self.memtable),
            "level0_runs": len(self.level0),
            "deep_levels": [
                {
                    "level": depth + 1,
                    "num_ssts": len(level),
                    "num_entries": sum(len(sst) for sst in level),
                    "num_tombstones": sum(sst.num_tombstones for sst in level),
                }
                for depth, level in enumerate(self.deep_levels)
            ],
            "filter_bits": self.filter_size_bits(),
            "spec": self.spec.to_dict() if self.spec is not None else None,
            "policy": self.policy,
            "stats": dict(self.stats),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OnlineLSMTree(l0={len(self.level0)}, "
            f"deep={[len(level) for level in self.deep_levels]}, "
            f"entries={self.num_entries}, memtable={len(self.memtable)})"
        )
