"""The in-memory write buffer: last-write-wins puts and tombstoned deletes.

Every write enters the tree here.  A :class:`MemTable` is a bounded
key → entry map (``True`` = live put, ``False`` = tombstone) with
last-write-wins semantics: a put over a delete resurrects the key, a
delete over a put buries it, and only the *final* state of each key
survives into the flush.  Deletes are first-class entries — a delete of a
key this memtable never saw still records a tombstone, because the key
may live in an SST below and the tombstone must shadow it until
compaction proves otherwise.

:meth:`seal` snapshots the buffer into an immutable sorted
:class:`~repro.lsm.merge.EntryRun` — the unit the flush path turns into a
level-0 SST — and empties the memtable for the next write burst.

Keys may be integers or byte/``str`` strings (one kind per memtable):
byte keys are canonicalised exactly like :class:`~repro.workloads.
bytekeys.ByteKeySet` does (utf-8 encode, strip trailing nulls) and the
sealed run carries a byte key set, so the whole write path stays in the
string representation.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.keys.keyspace import StringKeySpace
from repro.lsm.merge import EntryRun
from repro.workloads.batch import coerce_keys

__all__ = ["MemTable"]

#: Default write-buffer capacity in entries.
DEFAULT_CAPACITY = 512


class MemTable:
    """A bounded, mutable key → live/tombstone map in a ``width``-bit space."""

    __slots__ = ("width", "capacity", "_entries", "_top")

    def __init__(self, width: int, capacity: int = DEFAULT_CAPACITY):
        if width <= 0:
            raise ValueError("key width must be positive")
        if capacity < 1:
            raise ValueError("memtable capacity must be at least 1 entry")
        self.width = width
        self.capacity = capacity
        self._entries: dict = {}
        self._top = (1 << width) - 1

    def _check_key(self, key):
        if isinstance(key, (bytes, str)):
            raw = StringKeySpace._as_bytes(key).rstrip(b"\x00")
            if 8 * len(raw) > self.width:
                raise ValueError(
                    f"key {raw!r} outside the {self.width}-bit key space"
                )
            return raw
        key = int(key)
        if not 0 <= key <= self._top:
            raise ValueError(f"key {key} outside the {self.width}-bit key space")
        return key

    def put(self, key) -> None:
        """Record ``key`` as live (overwriting any buffered tombstone)."""
        self._entries[self._check_key(key)] = True

    def delete(self, key) -> None:
        """Record a tombstone for ``key`` (overwriting any buffered put)."""
        self._entries[self._check_key(key)] = False

    def apply(self, ops: Iterable[tuple]) -> None:
        """Apply ``("put", key)`` / ``("del", key)`` ops in order."""
        for op, key in ops:
            if op == "put":
                self.put(key)
            elif op == "del":
                self.delete(key)
            else:
                raise ValueError(f"unknown write op {op!r}; expected 'put' or 'del'")

    def get(self, key) -> bool | None:
        """``True`` if buffered live, ``False`` if tombstoned, ``None`` if absent."""
        return self._entries.get(self._check_key(key))

    def sample_key(self):
        """Any one buffered key, or ``None`` when empty.

        The read path's representation probe: a memtable holds one kind
        of key (``bytes`` or ``int``), so a single sample tells a caller
        which probe representation this tree expects before any SST
        exists to reveal it.
        """
        return next(iter(self._entries), None)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_empty(self) -> bool:
        return not self._entries

    @property
    def is_full(self) -> bool:
        """Has the buffer reached its flush threshold?"""
        return len(self._entries) >= self.capacity

    @property
    def num_tombstones(self) -> int:
        return sum(1 for live in self._entries.values() if not live)

    def seal(self) -> EntryRun:
        """Snapshot the buffer as a sorted run and clear it for reuse.

        The run holds one entry per distinct key — the last write wins by
        construction of the underlying map — with tombstones marked.
        Sealing an empty memtable is an error; the flush path checks
        ``is_empty`` first.
        """
        if not self._entries:
            raise ValueError("cannot seal an empty memtable")
        items = sorted(self._entries.items())
        keys = [key for key, _ in items]
        tombstones = np.array([not live for _, live in items], dtype=bool)
        self._entries = {}
        # Keys are already canonical, sorted, and distinct, so coerce_keys
        # (ByteKeySet for byte keys, EncodedKeySet for ints) preserves the
        # order the tombstone mask was built in.
        return EntryRun(coerce_keys(keys, self.width), tombstones)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemTable(entries={len(self)}, tombstones={self.num_tombstones}, "
            f"capacity={self.capacity}, width={self.width})"
        )
