"""Compaction merges: newest-wins k-way merge of sorted entry runs.

A *run* is a sorted distinct key array plus a parallel tombstone mask —
what a sealed memtable, an L0 flush, or a level's SST sequence holds.
Compaction merges several runs (ordered newest first) into one: for every
key, the newest run's entry wins (a shallower put or delete *shadows*
every deeper entry for the same key), and when the merge feeds the
deepest populated level, surviving tombstones are dropped entirely — there
is nothing below left for them to shadow.

Two implementations, pinned equal in ``tests/test_batch_parity.py``:

* :func:`merge_entry_runs` — the fast path: one ``np.concatenate`` over
  the runs and a single ``lexsort``+shifted-comparison dedupe, dispatched
  through :func:`repro.kernels.merge_runs` (so instrumented compactions
  count ``kernels.dispatch.{backend}.merge_runs``);
* :func:`merge_entry_runs_scalar` — the heap-merge reference
  (``heapq.merge`` + first-per-key), which also serves the ``object``-
  dtype wide-key fallback where ``lexsort`` cannot.

:func:`merge_key_sets` is the tombstone-free specialisation behind
``SSTable.merge_sorted``.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from repro import kernels
from repro.workloads.batch import EncodedKeySet
from repro.workloads.bytekeys import ByteKeySet
from repro.workloads.keyset import KeySet

__all__ = [
    "EntryRun",
    "merge_entry_runs",
    "merge_entry_runs_scalar",
    "merge_key_sets",
]


class EntryRun:
    """One sorted run of entries: distinct keys plus a tombstone mask.

    ``keys`` is any :class:`~repro.workloads.keyset.KeySet` (sorted,
    distinct, bounds-checked); ``tombstones`` a parallel boolean array —
    ``None`` means every entry is a live put.  Runs are immutable value
    carriers between the memtable, flush, and compaction layers.
    """

    __slots__ = ("keys", "tombstones")

    def __init__(self, keys: KeySet, tombstones: np.ndarray | None = None):
        if tombstones is not None:
            tombstones = np.asarray(tombstones, dtype=bool)
            if tombstones.shape != (len(keys),):
                raise ValueError(
                    f"tombstone mask of shape {tombstones.shape} does not match "
                    f"{len(keys)} keys"
                )
            if not tombstones.any():
                tombstones = None
        self.keys = keys
        self.tombstones = tombstones

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def width(self) -> int:
        return self.keys.width

    def tombstone_mask(self) -> np.ndarray:
        """The tombstone mask, materialised (all-False when ``None``)."""
        if self.tombstones is None:
            return np.zeros(len(self.keys), dtype=bool)
        return self.tombstones

    @property
    def num_tombstones(self) -> int:
        return int(self.tombstones.sum()) if self.tombstones is not None else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EntryRun(entries={len(self)}, tombstones={self.num_tombstones}, "
            f"width={self.width})"
        )


def _check_runs(runs: Sequence[EntryRun]) -> int:
    if not runs:
        raise ValueError("need at least one run to merge")
    width = runs[0].width
    for run in runs:
        if run.width != width:
            raise ValueError(
                f"run width {run.width} does not match the first run's {width}"
            )
    return width


def merge_entry_runs(
    runs: Sequence[EntryRun], drop_tombstones: bool = False
) -> EntryRun:
    """Merge ``runs`` (newest first) into one newest-wins run.

    The fast path concatenates every run's keys/tombstones with a
    per-entry priority (the run's index — lower is newer) and lets the
    :func:`repro.kernels.merge_runs` kernel sort and dedupe in one pass.
    Wide key spaces (``object`` dtype) fall back to the scalar heap merge,
    so correctness never depends on the vector path.  With
    ``drop_tombstones`` the surviving deletes are removed from the output
    — the bottom-level merge, where a tombstone has nothing left to
    shadow.
    """
    width = _check_runs(runs)
    if all(run.keys.is_bytes for run in runs):
        return _merge_entry_runs_bytes(runs, drop_tombstones)
    if not all(run.keys.is_vector for run in runs):
        return merge_entry_runs_scalar(runs, drop_tombstones)
    keys = np.concatenate([run.keys.keys for run in runs])
    tombstones = np.concatenate([run.tombstone_mask() for run in runs])
    priorities = np.repeat(
        np.arange(len(runs), dtype=np.int64),
        [len(run) for run in runs],
    )
    merged_keys, merged_tombstones = kernels.merge_runs(keys, tombstones, priorities)
    if drop_tombstones:
        live = ~merged_tombstones
        merged_keys = merged_keys[live]
        merged_tombstones = merged_tombstones[live]
    return EntryRun(
        EncodedKeySet._trusted(merged_keys, width),
        merged_tombstones if merged_tombstones.any() else None,
    )


def _merge_entry_runs_bytes(
    runs: Sequence[EntryRun], drop_tombstones: bool = False
) -> EntryRun:
    """The byte-string fast path: one stable ``argsort`` over S-dtype keys.

    Runs arrive newest first, so after a *stable* sort the first entry of
    every equal-key group is the newest — newest-wins dedupe needs no
    explicit priority array.  Padded (``memcmp``) order is the canonical
    key order, so the merged array feeds :class:`ByteKeySet` verbatim.
    """
    max_length = runs[0].keys.max_length
    keys = np.concatenate([run.keys.keys for run in runs])
    tombstones = np.concatenate([run.tombstone_mask() for run in runs])
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_tombstones = tombstones[order]
    keep = np.ones(sorted_keys.size, dtype=bool)
    keep[1:] = sorted_keys[1:] != sorted_keys[:-1]
    merged_keys = sorted_keys[keep]
    merged_tombstones = sorted_tombstones[keep]
    if drop_tombstones:
        live = ~merged_tombstones
        merged_keys = merged_keys[live]
        merged_tombstones = merged_tombstones[live]
    return EntryRun(
        ByteKeySet._from_padded(merged_keys, max_length),
        merged_tombstones if merged_tombstones.any() else None,
    )


def merge_entry_runs_scalar(
    runs: Sequence[EntryRun], drop_tombstones: bool = False
) -> EntryRun:
    """The heap-merge reference: ``heapq.merge`` + first-entry-per-key.

    Semantics identical to :func:`merge_entry_runs` (the parity tests pin
    this); also the ``object``-dtype fallback for wide key spaces.  Byte
    runs work too — ``heapq.merge`` compares canonical byte keys in the
    same lexicographic (= padded ``memcmp``) order.
    """
    width = _check_runs(runs)
    streams = [
        zip(run.keys.as_list(), [priority] * len(run), run.tombstone_mask().tolist())
        for priority, run in enumerate(runs)
    ]
    merged_keys: list = []
    merged_tombstones: list[bool] = []
    previous = None
    for key, _, tombstone in heapq.merge(*streams):
        if key == previous:
            continue  # an older (higher-priority-number) entry: shadowed
        previous = key
        if drop_tombstones and tombstone:
            continue
        merged_keys.append(key)
        merged_tombstones.append(tombstone)
    tombstones_arr = np.array(merged_tombstones, dtype=bool)
    if runs[0].keys.is_bytes:
        max_length = runs[0].keys.max_length
        merged_set: KeySet = ByteKeySet._from_padded(
            np.array(merged_keys, dtype=f"S{max_length}"), max_length
        )
    else:
        dtype = np.int64 if runs[0].keys.is_vector else object
        merged_set = EncodedKeySet._trusted(np.array(merged_keys, dtype=dtype), width)
    return EntryRun(
        merged_set,
        tombstones_arr if tombstones_arr.any() else None,
    )


def merge_key_sets(key_sets: Sequence[KeySet]) -> KeySet:
    """Merge sorted distinct key sets into one (duplicates collapse).

    The tombstone-free specialisation of :func:`merge_entry_runs`; with no
    deletes in play recency cannot change an answer, so this is a plain
    sorted-set union on the same kernel.
    """
    merged = merge_entry_runs([EntryRun(keys) for keys in key_sets])
    return merged.keys
