"""The simulated I/O cost model for LSM probes.

The paper's end-to-end claim is about *I/O*: a range filter earns its memory
by turning disk reads into filter negatives.  This module prices a probe the
way the RocksDB experiment does:

* consulting an SST's fences is free (they live in the table index, always
  resident);
* consulting the SST's filter costs :attr:`CostModel.filter_probe_cost`
  (CPU, zero by default — the paper reports I/O counts);
* a filter positive (or any fence-surviving probe when the SST has no
  filter) charges exactly one data-block read at
  :attr:`CostModel.block_read_cost` — the seek into the table that either
  finds the key or discovers the false positive.

:class:`ProbeResult` carries the per-query accounting a probe produces; its
``false_positive_reads`` (block reads on SSTs that held no matching key) is
the paper's Fig. 9 metric, and ``missed_reads`` is the zero-false-negative
invariant — any nonzero entry means a filter rejected an SST that actually
contained a matching key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

__all__ = ["CostModel", "LevelStats", "ProbeResult", "SstStats"]


@dataclass(frozen=True)
class CostModel:
    """Charge rates for the simulated probe path."""

    #: Cost of fetching one data block after a positive probe.
    block_read_cost: float = 1.0
    #: Cost of one filter membership/intersection probe (CPU; free by default).
    filter_probe_cost: float = 0.0

    def __post_init__(self):
        if self.block_read_cost < 0 or self.filter_probe_cost < 0:
            raise ValueError("cost rates must be non-negative")

    def io_cost(self, blocks_read: int, filter_probes: int) -> float:
        """Total charged cost of a probe run."""
        return (
            blocks_read * self.block_read_cost + filter_probes * self.filter_probe_cost
        )

    def to_dict(self) -> dict:
        return {
            "block_read_cost": self.block_read_cost,
            "filter_probe_cost": self.filter_probe_cost,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CostModel":
        """Inverse of :meth:`to_dict`; unknown keys are rejected, not dropped.

        Missing rates take the dataclass defaults, so a cost section logged
        by an older artifact (or a hand-written config) round-trips into the
        same model the run priced with.
        """
        unknown = sorted(set(data) - {"block_read_cost", "filter_probe_cost"})
        if unknown:
            raise ValueError(f"unknown CostModel field(s) {unknown}")
        return cls(
            block_read_cost=float(data.get("block_read_cost", 1.0)),
            filter_probe_cost=float(data.get("filter_probe_cost", 0.0)),
        )


@dataclass
class LevelStats:
    """Aggregate probe accounting for one LSM level."""

    level: int
    candidates: int = 0  # fence-surviving (query, SST) pairs
    filter_probes: int = 0  # filter consultations (0 when unfiltered)
    blocks_read: int = 0  # charged data-block reads
    required_reads: int = 0  # reads of SSTs that truly held a match
    false_positive_reads: int = 0  # reads of SSTs that held none
    missed_reads: int = 0  # truly-matching SSTs rejected by a filter (bug!)

    def to_dict(self) -> dict:
        return {
            "level": self.level,
            "candidates": self.candidates,
            "filter_probes": self.filter_probes,
            "blocks_read": self.blocks_read,
            "required_reads": self.required_reads,
            "false_positive_reads": self.false_positive_reads,
            "missed_reads": self.missed_reads,
        }


@dataclass
class SstStats:
    """Aggregate probe accounting for one SST (the drift monitor's unit).

    ``empty_trials`` — fence-surviving probes of this SST for queries it
    held no matching entry for — is the per-SST denominator a
    :class:`~repro.obs.drift.DriftMonitor` grades ``false_positive_reads``
    against: the conditional FPR of *this* SST's filter on the live mix.
    """

    candidates: int = 0
    filter_probes: int = 0
    blocks_read: int = 0
    required_reads: int = 0
    false_positive_reads: int = 0
    missed_reads: int = 0

    @property
    def empty_trials(self) -> int:
        """Fence-surviving probes whose query had no matching entry here."""
        return self.candidates - self.required_reads

    def to_dict(self) -> dict:
        return {
            "candidates": self.candidates,
            "filter_probes": self.filter_probes,
            "blocks_read": self.blocks_read,
            "required_reads": self.required_reads,
            "false_positive_reads": self.false_positive_reads,
            "missed_reads": self.missed_reads,
        }


@dataclass
class ProbeResult:
    """Per-query probe accounting across the whole tree.

    Every array is aligned with the probed :class:`~repro.workloads.batch.
    QueryBatch`.  ``missed_reads`` counts truly-matching SSTs whose filter
    answered ``False`` — it must be identically zero for any correct filter
    (no false negatives).  ``LSMTree.probe`` records rather than raises (so
    a buggy third-party filter can be *diagnosed*, per query and per
    level); the benchmark driver fails the run on any nonzero entry.
    """

    candidates: np.ndarray
    filter_probes: np.ndarray
    blocks_read: np.ndarray
    required_reads: np.ndarray
    false_positive_reads: np.ndarray
    missed_reads: np.ndarray
    per_level: list[LevelStats] = field(default_factory=list)

    @classmethod
    def zeros(cls, num_queries: int, num_levels: int) -> "ProbeResult":
        return cls(
            candidates=np.zeros(num_queries, dtype=np.int64),
            filter_probes=np.zeros(num_queries, dtype=np.int64),
            blocks_read=np.zeros(num_queries, dtype=np.int64),
            required_reads=np.zeros(num_queries, dtype=np.int64),
            false_positive_reads=np.zeros(num_queries, dtype=np.int64),
            missed_reads=np.zeros(num_queries, dtype=np.int64),
            per_level=[LevelStats(level) for level in range(num_levels)],
        )

    @property
    def num_queries(self) -> int:
        return int(self.candidates.size)

    def total_blocks_read(self) -> int:
        return int(self.blocks_read.sum())

    def total_false_positive_reads(self) -> int:
        return int(self.false_positive_reads.sum())

    def total_required_reads(self) -> int:
        return int(self.required_reads.sum())

    def total_filter_probes(self) -> int:
        return int(self.filter_probes.sum())

    def io_cost(self, model: CostModel) -> float:
        return model.io_cost(self.total_blocks_read(), self.total_filter_probes())

    def empty_query_mask(self) -> np.ndarray:
        """Queries no SST in the tree holds a matching key for."""
        return self.required_reads == 0

    def to_dict(self, model: CostModel | None = None) -> dict:
        """JSON-ready totals (plus the charged cost when a model is given)."""
        summary = {
            "num_queries": self.num_queries,
            "candidates": int(self.candidates.sum()),
            "filter_probes": self.total_filter_probes(),
            "blocks_read": self.total_blocks_read(),
            "required_reads": self.total_required_reads(),
            "false_positive_reads": self.total_false_positive_reads(),
            "missed_reads": int(self.missed_reads.sum()),
            "num_empty_queries": int(self.empty_query_mask().sum()),
            "per_level": [stats.to_dict() for stats in self.per_level],
        }
        if model is not None:
            summary["io_cost"] = self.io_cost(model)
        return summary
