"""LSM tree substrate with per-SST range filters and a simulated I/O model.

The paper's end-to-end setting: a leveled LSM tree where every SST owns a
range filter self-designed (or budget-derived) from one shared workload
sample, and where the value of a filter is measured in *avoided block
reads*.

* :class:`~repro.lsm.sstable.SSTable` — one sorted key run (a zero-copy
  slice of its level's array) with min/max fences and an optional filter;
* :class:`~repro.lsm.tree.LSMTree` — leveled geometry, per-SST filter
  construction through :mod:`repro.api`, and batched probe routing;
* :class:`~repro.lsm.cost.CostModel` / :class:`~repro.lsm.cost.ProbeResult`
  — the I/O pricing (block read charged only on a filter positive) and the
  per-query accounting, including the paper's false-positive-block-read
  metric.

The benchmark driver lives in :mod:`repro.evaluation.lsm_bench`
(``python -m repro.evaluation.lsm_bench``).
"""

from repro.lsm.cost import CostModel, LevelStats, ProbeResult
from repro.lsm.sstable import SSTable
from repro.lsm.tree import LSMTree

__all__ = ["CostModel", "LevelStats", "ProbeResult", "SSTable", "LSMTree"]
