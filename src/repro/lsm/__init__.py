"""LSM tree substrate with per-SST range filters and a simulated I/O model.

The paper's end-to-end setting: a leveled LSM tree where every SST owns a
range filter self-designed (or budget-derived) from one shared workload
sample, and where the value of a filter is measured in *avoided block
reads*.

* :class:`~repro.lsm.sstable.SSTable` — one sorted key run (a zero-copy
  slice of its level's array) with min/max fences and an optional filter;
* :class:`~repro.lsm.tree.LSMTree` — leveled geometry, per-SST filter
  construction through :mod:`repro.api`, and batched probe routing;
* :class:`~repro.lsm.cost.CostModel` / :class:`~repro.lsm.cost.ProbeResult`
  — the I/O pricing (block read charged only on a filter positive) and the
  per-query accounting, including the paper's false-positive-block-read
  metric.

The **online write path** churns the same substrate:

* :class:`~repro.lsm.memtable.MemTable` — the bounded write buffer
  (last-write-wins puts and tombstoned deletes);
* :class:`~repro.lsm.merge.EntryRun` /
  :func:`~repro.lsm.merge.merge_entry_runs` — newest-wins compaction
  merges on the :func:`repro.kernels.merge_runs` kernel;
* :class:`~repro.lsm.online.OnlineLSMTree` — memtable → flush → leveled
  compaction, re-splitting the global filter budget and rebuilding stale
  filters after every topology change;
* :class:`~repro.lsm.lifecycle.FilterLifecycle` — the closed loop: per-SST
  drift monitors actuating in-place filter redesign from a rolling query
  sample.

The benchmark driver lives in :mod:`repro.evaluation.lsm_bench`
(``python -m repro.evaluation.lsm_bench``; ``--timeline`` exercises the
online path).
"""

from repro.lsm.cost import CostModel, LevelStats, ProbeResult, SstStats
from repro.lsm.lifecycle import FilterLifecycle
from repro.lsm.memtable import MemTable
from repro.lsm.merge import EntryRun, merge_entry_runs, merge_key_sets
from repro.lsm.online import OnlineLSMTree
from repro.lsm.sstable import SSTable
from repro.lsm.tree import LSMTree

__all__ = [
    "CostModel",
    "LevelStats",
    "ProbeResult",
    "SstStats",
    "SSTable",
    "LSMTree",
    "MemTable",
    "EntryRun",
    "merge_entry_runs",
    "merge_key_sets",
    "OnlineLSMTree",
    "FilterLifecycle",
]
