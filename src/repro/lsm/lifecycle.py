"""The closed filter-lifecycle loop: per-SST drift sensing → redesign.

:class:`repro.obs.drift.DriftMonitor` is the sensor; this module is the
actuator the ROADMAP left open.  :class:`FilterLifecycle` watches an
:class:`~repro.lsm.online.OnlineLSMTree` at per-SST granularity: each
filtered SST whose filter exposes a CPFPR prediction (``expected_fpr``)
gets its own rolling monitor, fed from the per-SST probe accounting
(:class:`~repro.lsm.cost.SstStats`) that :meth:`LSMTree.probe` collects.
When a window flags divergence — the live query mix has detached from the
sample the filter self-designed against — the loop closes:

1. a fresh :class:`~repro.workloads.batch.QueryBatch` is drawn from the
   lifecycle's **rolling query sample** (the most recent live queries,
   recorded as they are probed);
2. the tree's shared design sample is swapped
   (:meth:`~repro.lsm.online.OnlineLSMTree.set_design_queries`), so
   subsequent flush/compaction builds also design against the current
   mix, not the stale one;
3. the flagged SST re-runs design at its *unchanged* budget grant
   (``build_filter(sst.spec, sst.keys, fresh_workload)``) and the rebuilt
   filter is swapped in place — no compaction, no key movement;
4. the SST's monitor is re-armed against the new design's prediction.

SSTs compacted away between epochs take their monitors with them (the
replacement tables self-design at build time from the then-current
sample, so they start in-model).  Everything is pure arithmetic over the
observation stream — replaying the same epochs reproduces the same
rebuild schedule byte-for-byte.
"""

from __future__ import annotations

from collections import deque

from repro.api import Workload, build_filter
from repro.lsm.cost import SstStats
from repro.lsm.online import OnlineLSMTree
from repro.lsm.sstable import SSTable
from repro.obs.drift import DriftMonitor, DriftReport
from repro.workloads.batch import QueryBatch, coerce_query_batch

__all__ = ["FilterLifecycle"]

#: Default rolling-sample capacity in queries.
DEFAULT_ROLLING_QUERIES = 2048


class FilterLifecycle:
    """Per-SST drift monitors wired to in-place filter redesign."""

    def __init__(
        self,
        tree: OnlineLSMTree,
        window: int = 8,
        abs_threshold: float = 0.05,
        rel_threshold: float = 0.5,
        min_empty: int = 64,
        rolling_queries: int = DEFAULT_ROLLING_QUERIES,
        metrics=None,
    ):
        if rolling_queries < 1:
            raise ValueError("rolling_queries must hold at least 1 query")
        self.tree = tree
        self.window = window
        self.abs_threshold = abs_threshold
        self.rel_threshold = rel_threshold
        self.min_empty = min_empty
        self.metrics = metrics
        self._monitors: dict[SSTable, DriftMonitor] = {}
        self._flagged: set[SSTable] = set()
        self._rolling: deque[tuple[int, int]] = deque(maxlen=rolling_queries)
        self.stats = {
            "epochs": 0,
            "drift_flags": 0,
            "filters_rebuilt": 0,
            "monitors_pruned": 0,
        }

    # ------------------------------------------------------------------ #
    # Sensing                                                            #
    # ------------------------------------------------------------------ #

    def record_queries(self, queries) -> None:
        """Fold a probed batch into the rolling design sample (newest kept)."""
        batch = coerce_query_batch(queries, self.tree.width)
        for lo, hi in zip(batch.los.tolist(), batch.his.tolist()):
            self._rolling.append((int(lo), int(hi)))

    def rolling_sample(self) -> QueryBatch | None:
        """The rolling sample as a design-ready batch (None while empty)."""
        if not self._rolling:
            return None
        return QueryBatch.from_pairs(list(self._rolling), self.tree.width)

    def _monitor_for(self, sst: SSTable) -> DriftMonitor | None:
        """The SST's monitor, created lazily; None when it has no prediction."""
        monitor = self._monitors.get(sst)
        if monitor is not None:
            return monitor
        if sst.filter is None:
            return None
        predicted = getattr(sst.filter, "expected_fpr", None)
        if predicted is None:
            return None  # fixed baseline: no prediction, nothing to compare
        monitor = DriftMonitor(
            float(predicted),
            window=self.window,
            abs_threshold=self.abs_threshold,
            rel_threshold=self.rel_threshold,
            min_empty=self.min_empty,
            on_drift=lambda report, flagged=sst: self._flagged.add(flagged),
        )
        self._monitors[sst] = monitor
        return monitor

    def _prune_dead_monitors(self) -> None:
        """Drop monitors (and flags) for SSTs compacted out of the tree."""
        live = set(self.tree.sstables())
        dead = [sst for sst in self._monitors if sst not in live]
        for sst in dead:
            del self._monitors[sst]
            self.stats["monitors_pruned"] += 1
        self._flagged &= live

    # ------------------------------------------------------------------ #
    # The loop                                                           #
    # ------------------------------------------------------------------ #

    def observe_epoch(
        self, queries, sst_stats: dict[SSTable, SstStats]
    ) -> dict:
        """Fold one probed epoch in; actuate on every SST that flags drift.

        ``queries`` is the batch that was probed and ``sst_stats`` the
        per-SST accounting :meth:`LSMTree.probe` collected for it.  Every
        monitored SST observes its own ``(false positives, empty trials)``
        pair; flagged SSTs are rebuilt in place from the rolling sample.
        Returns the epoch's verdict summary (JSON-ready).
        """
        self.record_queries(queries)
        self._prune_dead_monitors()
        reports: list[DriftReport] = []
        monitored = 0
        for sst, stats in sst_stats.items():
            monitor = self._monitor_for(sst)
            if monitor is None:
                continue
            monitored += 1
            reports.append(
                monitor.observe(stats.false_positive_reads, stats.empty_trials)
            )
        drifted = [report for report in reports if report.drifted]
        self.stats["epochs"] += 1
        self.stats["drift_flags"] += len(drifted)
        if self.metrics is not None and drifted:
            self.metrics.inc("lifecycle.drift_flags", len(drifted))
        rebuilt = self._actuate()
        return {
            "monitored_ssts": monitored,
            "drifted_ssts": len(drifted),
            "filters_rebuilt": rebuilt,
            "rolling_sample": len(self._rolling),
            "max_observed_fpr": max(
                (report.observed_fpr for report in reports), default=0.0
            ),
            "max_predicted_fpr": max(
                (report.predicted_fpr for report in reports), default=0.0
            ),
        }

    def _actuate(self) -> int:
        """Redesign every flagged SST's filter from the rolling sample."""
        if not self._flagged:
            return 0
        sample = self.rolling_sample()
        if sample is None:
            return 0  # nothing to redesign against yet; flags stay pending
        # Refresh the shared sample first: flush/compaction outputs built
        # after this drift event design against the current mix too.
        self.tree.set_design_queries(sample)
        rebuilt = 0
        for sst in sorted(self._flagged, key=lambda table: table.index):
            spec = sst.spec
            if spec is None:
                continue  # unbudgeted table (shouldn't happen on a filtered tree)
            filt = build_filter(spec, sst.keys, Workload(sst.keys, sample),
                                metrics=self.metrics)
            sst.attach_filter(filt, spec)
            rebuilt += 1
            self.stats["filters_rebuilt"] += 1
            if self.metrics is not None:
                self.metrics.inc("lifecycle.filters_rebuilt")
            # Re-arm against the new design's prediction (when it has one).
            monitor = self._monitors.get(sst)
            predicted = getattr(filt, "expected_fpr", None)
            if monitor is not None:
                if predicted is None:
                    del self._monitors[sst]
                else:
                    monitor.reset(float(predicted))
        self._flagged.clear()
        return rebuilt

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #

    @property
    def num_monitors(self) -> int:
        return len(self._monitors)

    def to_dict(self) -> dict:
        """JSON-ready configuration + lifetime counters."""
        return {
            "window": self.window,
            "abs_threshold": self.abs_threshold,
            "rel_threshold": self.rel_threshold,
            "min_empty": self.min_empty,
            "rolling_capacity": self._rolling.maxlen,
            "rolling_sample": len(self._rolling),
            "num_monitors": self.num_monitors,
            "stats": dict(self.stats),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FilterLifecycle(monitors={self.num_monitors}, "
            f"flagged={len(self._flagged)}, rebuilt={self.stats['filters_rebuilt']})"
        )
