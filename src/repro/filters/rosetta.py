"""Rosetta: per-level Bloom filters with dyadic range decomposition.

Rosetta (Luo et al., SIGMOD 2020) is the Bloom-only baseline Proteus is
measured against.  It keeps one Bloom filter per prefix length ("level"):
level ``l`` stores every distinct ``l``-bit prefix of the key set.  A range
query is decomposed into maximal dyadic intervals — each exactly the span of
one prefix — and each dyadic prefix is resolved by *doubting*: probe it at
its own level, and on a positive recursively probe both children until the
bottom level confirms.  A ``False`` is only ever produced by a Bloom
negative, so the structure inherits the Bloom filters' no-false-negative
guarantee.

Two practical deviations from the ideal structure, both conservative:

* only the bottom ``num_levels`` levels carry Bloom filters (the top of a
  64-level hierarchy is nearly free of information); dyadic prefixes above
  the first filtered level recurse unprobed, and
* the total number of Bloom probes per query is clamped at ``max_probes``;
  on exhaustion the query returns ``True``.

The per-level bit budget is split proportionally to the number of distinct
prefixes stored at each level, which approximates the paper's optimised
allocation (deeper levels hold more distinct prefixes and receive more
memory).

Construction is vectorised for word-sized key spaces: each level's distinct
prefixes come from the :class:`~repro.workloads.batch.EncodedKeySet` prefix
cache (one ``np.unique`` per level) and are inserted through the bulk
``add_many`` hash path — bit-identical to the scalar per-key build
(``vectorize=False``), which the parity suite pins.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.amq.bloom import BloomFilter
from repro.filters.base import RangeFilter, check_spec_params, resolve_spec_inputs
from repro.keys.bytestr import prefix_item_bytes
from repro.workloads.batch import coerce_keys
from repro.workloads.bytekeys import byte_probe_matrix

#: Probe budget per range query; exceeding it returns a conservative positive.
DEFAULT_MAX_PROBES = 256

#: Budget rule for the derived level count: one filtered level per this many
#: bits of the per-key budget (each bottom level stores ~one prefix per key,
#: and a Bloom layer below ~2 bits per item carries no information).
LEVEL_BUDGET_BITS_PER_KEY = 2.0


def dyadic_intervals(lo: int, hi: int, width: int) -> Iterator[tuple[int, int]]:
    """Decompose ``[lo, hi]`` into maximal dyadic intervals.

    Yields ``(prefix, level)`` pairs: each interval is exactly the key span
    of ``prefix`` at ``level`` bits.  At most ``2 * width`` pairs are
    produced for any range.
    """
    if lo > hi:
        raise ValueError(f"empty query range [{lo}, {hi}]")
    position = lo
    while position <= hi:
        # Largest power-of-two block aligned at `position`...
        size = position & -position if position > 0 else 1 << width
        # ...shrunk until it fits inside the remaining range.
        while position + size - 1 > hi:
            size >>= 1
        level = width - size.bit_length() + 1
        yield position >> (width - level), level
        position += size


class Rosetta(RangeFilter):
    """A hierarchy of per-level prefix Bloom filters."""

    def __init__(
        self,
        keys: Iterable[int],
        width: int,
        total_bits: int,
        num_levels: int | None = None,
        max_probes: int = DEFAULT_MAX_PROBES,
        seed: int = 0,
        vectorize: bool = True,
    ):
        if width <= 0:
            raise ValueError("key width must be positive")
        if total_bits <= 0:
            raise ValueError("a Rosetta filter needs a positive bit budget")
        if num_levels is None:
            num_levels = width
        if not 1 <= num_levels <= width:
            raise ValueError(f"level count {num_levels} outside [1, {width}]")
        if max_probes < 1:
            raise ValueError("max_probes must be at least 1")
        self.width = width
        self.max_probes = max_probes
        self.first_level = width - num_levels + 1
        key_set = coerce_keys(keys, width)
        self.num_keys = len(key_set)
        self.is_bytes = key_set.is_bytes
        use_bulk = vectorize and (key_set.is_vector or key_set.is_bytes)
        key_list = None if use_bulk or key_set.is_bytes else key_set.as_list()
        counts = key_set.prefix_counts()
        levels = range(self.first_level, width + 1)
        weight_total = sum(counts[level] for level in levels) or 1
        self._blooms: dict[int, BloomFilter] = {}
        for level in levels:
            # Each level needs at least one bit; with a budget smaller than
            # the level count the build can therefore overshoot total_bits —
            # size_in_bits() is the authoritative footprint, not the request.
            level_bits = max(1, total_bits * counts[level] // weight_total)
            bloom = BloomFilter(level_bits, max(1, counts[level]), seed=seed + level)
            if self.is_bytes:
                # Canonical prefix-byte rows; the scalar path inserts the
                # exact same rows one bytes() at a time, pinning parity.
                prefix_rows = key_set.prefixes(level)
                if use_bulk:
                    bloom.add_bytes_rows(prefix_rows)
                else:
                    for row in prefix_rows:
                        bloom.add_bytes(row.tobytes())
            elif use_bulk:
                # Bulk path: the sorted distinct prefixes come from the key
                # set's cached numpy view and all hash lanes run
                # column-parallel in add_many — bit-identical to the scalar
                # build (same items, and Bloom contents are insertion-order
                # independent), which the parity suite pins.
                bloom.add_many(key_set.prefixes(level))
            else:
                bloom.add_many({key >> (width - level) for key in key_list})
            self._blooms[level] = bloom

    @classmethod
    def from_spec(cls, spec, keys=None, workload=None) -> "Rosetta":
        """Registry protocol: derive the level count from the bit budget.

        The filtered-level count follows the budget rule the paper's setup
        uses — roughly one bottom level per :data:`LEVEL_BUDGET_BITS_PER_KEY`
        bits of the per-key budget, since each bottom level stores about one
        distinct prefix per key — clamped to ``[1, width]``.  An explicit
        ``num_levels`` parameter overrides the rule.
        """
        params = check_spec_params(spec, ("num_levels", "max_probes", "seed"))
        key_set, total_bits = resolve_spec_inputs(spec, keys, workload)
        num_levels = params.get("num_levels")
        if num_levels is None:
            num_levels = max(
                1,
                min(key_set.width, int(spec.bits_per_key / LEVEL_BUDGET_BITS_PER_KEY)),
            )
        return cls(
            key_set,
            key_set.width,
            total_bits,
            num_levels=int(num_levels),
            max_probes=int(params.get("max_probes", DEFAULT_MAX_PROBES)),
            seed=int(params.get("seed", 0)),
        )

    def _probe_level(self, prefix: int, level: int) -> bool:
        """Probe one dyadic prefix through the representation-correct item."""
        bloom = self._blooms[level]
        if self.is_bytes:
            return bloom.contains_bytes(prefix_item_bytes(prefix, level))
        return bloom.contains(prefix)

    def may_contain(self, key: int) -> bool:
        if self.num_keys == 0:
            return False
        return self._probe_level(key, self.width)

    def may_contain_many(self, keys) -> np.ndarray:
        if self.is_bytes and self.num_keys:
            # Bottom level stores whole padded keys — one bulk row probe.
            mat = byte_probe_matrix(keys, self.width)
            if mat is not None:
                return self._blooms[self.width].contains_bytes_rows(mat)
        return super().may_contain_many(keys)

    def may_intersect(self, lo: int, hi: int) -> bool:
        self._check_range(lo, hi)
        if self.num_keys == 0:
            return False
        budget = self.max_probes
        for prefix, level in dyadic_intervals(lo, hi, self.width):
            # _doubt answers True (conservative) when invoked with an
            # exhausted budget, so a definitive False with exactly zero
            # budget left is still a trustworthy negative.
            positive, budget = self._doubt(prefix, level, budget)
            if positive:
                return True
        return False

    def _doubt(self, prefix: int, level: int, budget: int) -> tuple[bool, int]:
        """Resolve a dyadic prefix: (may contain a key, remaining budget)."""
        if budget <= 0:
            return True, 0
        if level >= self.first_level:
            budget -= 1
            if not self._probe_level(prefix, level):
                return False, budget
        if level == self.width:
            return True, budget
        positive, budget = self._doubt(prefix << 1, level + 1, budget)
        if positive:
            return True, budget
        return self._doubt((prefix << 1) | 1, level + 1, budget)

    def size_in_bits(self) -> int:
        return sum(bloom.size_in_bits() for bloom in self._blooms.values())

    def size_breakdown(self) -> dict[str, int]:
        """Per-level charged footprint, one entry per filtered prefix length."""
        return {
            f"level_{level}": bloom.size_in_bits()
            for level, bloom in sorted(self._blooms.items())
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Rosetta(keys={self.num_keys}, width={self.width}, "
            f"levels={len(self._blooms)}, bits={self.size_in_bits()})"
        )
