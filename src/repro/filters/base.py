"""The range-filter interface and the exact ground-truth oracle.

Every filter in :mod:`repro.filters` and :mod:`repro.core` implements
:class:`RangeFilter`: an immutable structure built over a set of keys
(``width``-bit unsigned integers, see :mod:`repro.keys`) that answers

* ``may_contain(key)`` — point-membership, and
* ``may_intersect(lo, hi)`` — does the inclusive range ``[lo, hi]`` contain
  a key?

with *no false negatives*: a ``False`` answer is definite, a ``True`` answer
may be wrong with some false positive rate.  :class:`TrieOracle` is the one
filter with a zero false positive rate — it stores the full key set in a
:class:`~repro.trie.node_trie.ByteTrie` — and serves as the ground truth the
randomized test-suite checks every probabilistic filter against.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Optional

import numpy as np

from repro.keys.keyspace import KeySpace
from repro.keys.lcp import MAX_VECTOR_WIDTH
from repro.trie.node_trie import ByteTrie
from repro.workloads.batch import as_key_array, coerce_keys, coerce_query_batch
from repro.workloads.keyset import KeySet

#: Key width assumed by ``from_spec`` when neither a workload, an
#: :class:`EncodedKeySet`, nor a ``width`` spec parameter pins one — the
#: paper's 64-bit integer setting.
DEFAULT_SPEC_WIDTH = 64


def check_spec_params(spec, allowed: Iterable[str]) -> dict:
    """Validate a :class:`~repro.api.spec.FilterSpec`'s family parameters.

    Rejects unknown parameter names (the registry protocol's typo guard) and
    returns the parameters as a plain mutable dict.  ``width`` is accepted
    for every family — it pins the key width when no workload or encoded key
    set supplies one.
    """
    permitted = set(allowed) | {"width"}
    unknown = sorted(set(spec.params) - permitted)
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {unknown} for filter family {spec.family!r}; "
            f"allowed: {sorted(permitted)}"
        )
    return dict(spec.params)


def resolve_spec_inputs(spec, keys, workload) -> tuple[KeySet, int]:
    """Resolve the shared ``from_spec`` inputs: ``(key_set, total_bits)``.

    ``keys`` may be ``None`` (build over the workload's key set), any
    :class:`~repro.workloads.keyset.KeySet`, or a raw iterable — raw
    integer keys are encoded through the workload's key space when one is
    attached (the LSM per-SST case: one workload, many raw key subsets),
    otherwise interpreted as already encoded in a ``width``-bit space taken
    from the workload, the ``width`` spec parameter, or the 64-bit default;
    raw byte/str keys become a :class:`~repro.workloads.ByteKeySet`
    directly.  The bit budget is ``bits_per_key`` times the number of
    *distinct* keys, exactly as :func:`repro.core.prf.prepare_workload`
    computes it.
    """
    if keys is None:
        if workload is None:
            raise ValueError("from_spec needs keys, a workload, or both")
        key_set = workload.keys
    elif isinstance(keys, KeySet):
        key_set = keys
    else:
        concrete = keys if isinstance(keys, np.ndarray) else list(keys)
        sample = concrete[0] if len(concrete) else None
        raw_bytes = isinstance(sample, (bytes, str, np.bytes_))
        if workload is not None:
            width = workload.width
            if workload.key_space is not None and not raw_bytes:
                concrete = workload.key_space.encode_many(concrete)
        else:
            param = spec.params.get("width")
            if param is not None:
                width = int(param)
            else:
                # Byte keys size their own space; integers take the default.
                width = None if raw_bytes else DEFAULT_SPEC_WIDTH
        key_set = coerce_keys(concrete, width)
    if workload is not None and workload.width != key_set.width:
        raise ValueError(
            f"key set width {key_set.width} does not match "
            f"workload width {workload.width}"
        )
    spec_width = spec.params.get("width")
    if spec_width is not None and int(spec_width) != key_set.width:
        raise ValueError(
            f"spec width {spec_width} conflicts with the resolved "
            f"key set width {key_set.width}"
        )
    total_bits = max(1, int(spec.bits_per_key * len(key_set)))
    return key_set, total_bits


def ragged_ranges(starts: np.ndarray, lengths: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flatten per-query integer ranges into one probe array plus segment starts.

    Given ``starts[i]`` and ``lengths[i] >= 1`` this returns ``(flat,
    seg_starts)`` where ``flat`` concatenates ``range(starts[i], starts[i] +
    lengths[i])`` for every ``i`` and ``seg_starts[i]`` is the offset of
    segment ``i`` in ``flat`` — the layout ``np.logical_or.reduceat`` needs
    to fold per-probe answers back into per-query answers.
    """
    lengths = lengths.astype(np.int64, copy=False)
    seg_ends = np.cumsum(lengths)
    seg_starts = seg_ends - lengths
    total = int(seg_ends[-1]) if lengths.size else 0
    offsets = np.arange(total, dtype=np.int64) - np.repeat(seg_starts, lengths)
    flat = np.repeat(starts.astype(np.int64, copy=False), lengths) + offsets
    return flat, seg_starts


def key_to_bytes(key: int, width: int) -> bytes:
    """Render a ``width``-bit key as big-endian bytes (MSB-padded to bytes).

    Padding the *top* of the integer to a whole number of bytes preserves
    both ordering and prefix structure, so byte-granular tries remain exact
    for widths that are not byte multiples.
    """
    num_bytes = (width + 7) // 8
    return key.to_bytes(num_bytes, "big")


class RangeFilter(ABC):
    """An approximate range-membership structure with no false negatives."""

    #: Number of bits in the integer view of a key.
    width: int
    #: Number of distinct keys the filter was built over.
    num_keys: int
    #: Optional :class:`~repro.keys.keyspace.KeySpace` set by self-designing
    #: builders; when present, raw-domain queries are encoded through it.
    key_space: KeySpace | None = None

    def _encode(self, key) -> int:
        return self.key_space.encode(key) if self.key_space is not None else key

    @abstractmethod
    def may_contain(self, key: int) -> bool:
        """Return False only if ``key`` is definitely not in the key set."""

    @abstractmethod
    def may_intersect(self, lo: int, hi: int) -> bool:
        """Return False only if ``[lo, hi]`` definitely contains no key."""

    # ------------------------------------------------------------------ #
    # Batch API                                                          #
    # ------------------------------------------------------------------ #
    #
    # Both batch methods operate on *encoded* keys — the integer view of
    # the filter's key space — and return a boolean numpy array aligned
    # with the input.  The base implementations loop over the scalar
    # methods, so third-party subclasses inherit correct (if unaccelerated)
    # batch behaviour for free; the filters in this repository override
    # them with vectorised paths for word-sized key spaces.

    def may_contain_many(self, keys) -> np.ndarray:
        """Per-key :meth:`may_contain` over a batch of encoded keys.

        Accepts a numpy array, an ``EncodedKeySet``, or any iterable of
        ints; returns one boolean per input key, in order.
        """
        arr = as_key_array(keys)
        return np.fromiter(
            (self.may_contain(key) for key in arr.tolist()),
            dtype=bool,
            count=arr.size,
        )

    def may_intersect_many(self, queries) -> np.ndarray:
        """Per-query :meth:`may_intersect` over a batch of range queries.

        Accepts a :class:`~repro.workloads.batch.QueryBatch` or any
        iterable of inclusive ``(lo, hi)`` pairs; returns one boolean per
        query, in order.
        """
        batch = coerce_query_batch(queries, self.width)
        return np.fromiter(
            (self.may_intersect(lo, hi) for lo, hi in batch.pairs()),
            dtype=bool,
            count=len(batch),
        )

    @abstractmethod
    def size_in_bits(self) -> int:
        """Return the filter's payload footprint in bits."""

    def bits_per_key(self) -> float:
        """Return the payload footprint divided by the number of keys."""
        return self.size_in_bits() / self.num_keys if self.num_keys else 0.0

    def size_breakdown(self) -> dict[str, int]:
        """Return the charged footprint per component, in bits.

        The values always sum to :meth:`size_in_bits` — that identity is what
        lets the LSM cost accounting sum per-SST filters into per-level
        memory without knowing any family's internals.  Single-component
        filters report one ``"total"`` entry; layered families override this
        with one entry per layer.
        """
        return {"total": self.size_in_bits()}

    def _check_range(self, lo: int, hi: int) -> None:
        if lo > hi:
            raise ValueError(f"empty query range [{lo}, {hi}]")
        if lo < 0 or hi >= (1 << self.width):
            raise ValueError(
                f"query range [{lo}, {hi}] outside the {self.width}-bit key space"
            )

    def __contains__(self, key: int) -> bool:
        return self.may_contain(key)


class TrieOracle(RangeFilter):
    """Exact range filter: zero false positives *and* zero false negatives.

    Stores every key, unabridged, in a byte trie.  Its answers define
    correctness for every other filter: ``other.may_*`` must be ``True``
    whenever the oracle's is.
    """

    def __init__(self, keys, width: int):
        if width <= 0:
            raise ValueError("key width must be positive")
        self.width = width
        key_set = coerce_keys(keys, width)
        self.num_keys = len(key_set)
        if key_set.is_bytes:
            length = (width + 7) // 8
            self._trie = ByteTrie(
                key.ljust(length, b"\x00") for key in key_set.as_list()
            )
            # The padded S-dtype array searchsorts in key order directly.
            self._sorted: np.ndarray | None = key_set.keys
        else:
            self._trie = ByteTrie(
                key_to_bytes(key, width) for key in key_set.as_list()
            )
            # Word-sized key sets keep a sorted array view so batch answers
            # are two searchsorted calls instead of a trie walk per query.
            self._sorted = key_set.keys if width <= MAX_VECTOR_WIDTH else None

    @classmethod
    def from_spec(cls, spec, keys=None, workload=None) -> "TrieOracle":
        """Registry protocol: build the exact oracle (budget-free ground truth).

        The oracle stores every key verbatim, so ``spec.bits_per_key`` is
        ignored — it is registered ``budget_free`` and the sweep driver uses
        it only as ground truth, never as a curve.
        """
        check_spec_params(spec, ())
        key_set, _ = resolve_spec_inputs(spec, keys, workload)
        return cls(key_set, key_set.width)

    def may_contain(self, key: int) -> bool:
        if self.num_keys == 0:
            return False
        return self._trie.match_prefix_of(key_to_bytes(key, self.width)) is not None

    def may_intersect(self, lo: int, hi: int) -> bool:
        self._check_range(lo, hi)
        if self.num_keys == 0:
            return False
        return self._trie.range_overlaps(
            key_to_bytes(lo, self.width), key_to_bytes(hi, self.width)
        )

    def may_contain_many(self, keys) -> np.ndarray:
        if self._sorted is not None and self._sorted.dtype.kind == "S":
            # Byte mode: probe the padded S-dtype view (memcmp == key order).
            arr = keys.keys if isinstance(keys, KeySet) else np.asarray(keys)
            if arr.dtype.kind == "S" and self.num_keys:
                idx = np.searchsorted(self._sorted, arr, side="left")
                safe = np.minimum(idx, self.num_keys - 1)
                return (idx < self.num_keys) & (self._sorted[safe] == arr)
            return super().may_contain_many(keys)
        arr = as_key_array(keys)
        if self._sorted is None or arr.dtype == object or self.num_keys == 0:
            return super().may_contain_many(arr)
        idx = np.searchsorted(self._sorted, arr, side="left")
        safe = np.minimum(idx, self.num_keys - 1)
        return (idx < self.num_keys) & (self._sorted[safe] == arr)

    def may_intersect_many(self, queries) -> np.ndarray:
        batch = coerce_query_batch(queries, self.width)
        byte_batch = batch.los.dtype.kind == "S"
        if (
            self._sorted is None
            or self.num_keys == 0
            or (self._sorted.dtype.kind == "S") != byte_batch
            or not (batch.is_vector or byte_batch)
        ):
            return super().may_intersect_many(batch)
        # [lo, hi] contains a key iff the first key >= lo exists and is <= hi.
        idx = np.searchsorted(self._sorted, batch.los, side="left")
        safe = np.minimum(idx, self.num_keys - 1)
        return (idx < self.num_keys) & (self._sorted[safe] <= batch.his)

    def match(self, key: int) -> Optional[bytes]:
        """Return the stored byte string matching ``key``, if any."""
        return self._trie.match_prefix_of(key_to_bytes(key, self.width))

    def size_in_bits(self) -> int:
        # The oracle stores every key verbatim; charge the raw key bits.
        return self.num_keys * self.width

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrieOracle(keys={self.num_keys}, width={self.width})"
