"""Range filters: the common interface and the paper's fixed baselines.

* :class:`~repro.filters.base.RangeFilter` — the interface every filter in
  this repository implements (``may_contain`` / ``may_intersect``, both with
  zero false negatives, plus size accounting).
* :class:`~repro.filters.base.TrieOracle` — the exact ground truth used by
  the randomized test-suite.
* :class:`~repro.filters.prefix_bloom.PrefixBloomFilter` — fixed-prefix
  Bloom range filter.
* :class:`~repro.filters.prefix_bloom.PointBloomFilter` — plain whole-key
  Bloom filter (the paper's "Bloom" baseline).
* :class:`~repro.filters.surf.SuRF` — SuRF-Base, the trie-only baseline.
* :class:`~repro.filters.rosetta.Rosetta` — per-level Bloom filters with
  dyadic range decomposition.

The self-designing filters (1PBF, 2PBF, Proteus) live in :mod:`repro.core`:
they are these same trie/Bloom ingredients with the design point chosen by
the CPFPR model and Algorithm 1.  Every family also implements the registry
build protocol ``from_spec(spec, keys, workload)`` — see :mod:`repro.api`.
"""

from repro.filters.base import RangeFilter, TrieOracle, key_to_bytes
from repro.filters.prefix_bloom import PointBloomFilter, PrefixBloomFilter
from repro.filters.rosetta import Rosetta, dyadic_intervals
from repro.filters.surf import SuRF

__all__ = [
    "RangeFilter",
    "TrieOracle",
    "key_to_bytes",
    "PrefixBloomFilter",
    "PointBloomFilter",
    "SuRF",
    "Rosetta",
    "dyadic_intervals",
]
