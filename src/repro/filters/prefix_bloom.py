"""Fixed-prefix-length prefix Bloom filter.

The simplest range-filter design the paper considers (Section 2): hash the
``prefix_len``-bit prefix of every key into a Bloom filter.  A point query
probes one prefix; a range query probes every ``prefix_len``-prefix that
intersects the range (the ``Q_l`` set of the CPFPR model).  When a range
spans more prefixes than ``max_probes`` the filter gives up and returns
``True`` — returning a conservative positive is always safe, and the CPFPR
model accounts for exactly this clamp.

With ``prefix_len`` fixed a priori this filter is workload-oblivious; the
protean filters in :mod:`repro.core` are this same structure with the prefix
length *chosen* by Algorithm 1.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.amq.bloom import BloomFilter
from repro.filters.base import (
    RangeFilter,
    check_spec_params,
    ragged_ranges,
    resolve_spec_inputs,
)
from repro.keys.bytestr import (
    byte_slot_bounds,
    expand_slot_rows,
    prefix_item_bytes,
    scalar_slot_clamped,
)
from repro.keys.lcp import MAX_VECTOR_WIDTH
from repro.keys.prefix import prefix_of, prefix_range
from repro.workloads.batch import as_key_array, coerce_keys, coerce_query_batch, slot_bounds
from repro.workloads.bytekeys import ByteQueryBatch, byte_probe_matrix

#: Default clamp on Bloom probes per range query (mirrored by the CPFPR model).
DEFAULT_MAX_PROBES = 64

#: Prefix slots cover ranges of this many keys when no workload pins the
#: widest sample range — the 64-key slot of the paper's fixed-PBF setup.
DEFAULT_SLOT_SPAN_BITS = 6


def derived_prefix_len(width: int, workload=None) -> int:
    """The fixed-PBF prefix length the paper's experimental setup would pick.

    The slot span is matched to the widest range in the workload's query
    sample, so no sample query covers more than two slots; without a
    workload the default 64-key slot is used.
    """
    span_bits = DEFAULT_SLOT_SPAN_BITS
    if workload is not None and len(workload.queries):
        max_span = max(int(span) for span in workload.queries.spans())
        span_bits = (max_span - 1).bit_length()
    return max(1, width - span_bits)


class PrefixBloomFilter(RangeFilter):
    """A Bloom filter over the ``prefix_len``-bit prefixes of the key set."""

    def __init__(
        self,
        keys: Iterable[int],
        width: int,
        prefix_len: int,
        num_bits: int,
        max_probes: int = DEFAULT_MAX_PROBES,
        seed: int = 0,
    ):
        if not 0 < prefix_len <= width:
            raise ValueError(f"prefix length {prefix_len} outside [1, {width}]")
        if max_probes < 1:
            raise ValueError("max_probes must be at least 1")
        self.width = width
        self.prefix_len = prefix_len
        self.max_probes = max_probes
        key_set = coerce_keys(keys, width)
        self.num_keys = len(key_set)
        self.is_bytes = key_set.is_bytes
        prefixes = key_set.prefixes(prefix_len)
        self._bloom = BloomFilter(num_bits, max(1, len(prefixes)), seed=seed)
        if self.is_bytes:
            # Canonical prefix-byte rows, hashed row-parallel; every probe
            # path below encodes to the same bytes, so no path can disagree.
            self.num_prefixes = int(prefixes.shape[0])
            self._bloom.add_bytes_rows(prefixes)
        else:
            self.num_prefixes = int(prefixes.size)
            self._bloom.add_many(prefixes)

    @classmethod
    def from_spec(cls, spec, keys=None, workload=None) -> "PrefixBloomFilter":
        """Registry protocol: a fixed baseline whose knobs derive from the spec.

        The Bloom filter gets the whole ``bits_per_key`` budget (its hash
        count then follows from the load, the paper's ``ceil(m/n ln 2)``
        rule); ``prefix_len`` defaults to the slot width matching the widest
        sample range (:func:`derived_prefix_len`).
        """
        params = check_spec_params(spec, ("prefix_len", "max_probes", "seed"))
        key_set, total_bits = resolve_spec_inputs(spec, keys, workload)
        prefix_len = params.get("prefix_len")
        if prefix_len is None:
            prefix_len = derived_prefix_len(key_set.width, workload)
        return cls(
            key_set,
            key_set.width,
            int(prefix_len),
            total_bits,
            max_probes=int(params.get("max_probes", DEFAULT_MAX_PROBES)),
            seed=int(params.get("seed", 0)),
        )

    def _probe_prefix(self, prefix: int) -> bool:
        """Probe one prefix value through the representation-correct item."""
        if self.is_bytes:
            return self._bloom.contains_bytes(
                prefix_item_bytes(prefix, self.prefix_len)
            )
        return self._bloom.contains(prefix)

    def may_contain(self, key: int) -> bool:
        if self.num_keys == 0:
            return False
        return self._probe_prefix(prefix_of(key, self.prefix_len, self.width))

    def may_intersect(self, lo: int, hi: int) -> bool:
        self._check_range(lo, hi)
        if self.num_keys == 0:
            return False
        plo, phi = prefix_range(lo, hi, self.prefix_len, self.width)
        if self.is_bytes:
            if scalar_slot_clamped(plo, phi, self.prefix_len, self.max_probes):
                return True
        elif phi - plo + 1 > self.max_probes:
            return True
        return any(self._probe_prefix(prefix) for prefix in range(plo, phi + 1))

    def may_contain_many(self, keys) -> np.ndarray:
        if self.is_bytes:
            mat = byte_probe_matrix(keys, self.width)
            if mat is not None and self.num_keys:
                from repro.keys.bytestr import mask_rows

                return self._bloom.contains_bytes_rows(
                    mask_rows(mat, self.prefix_len)
                )
        arr = as_key_array(keys)
        if arr.dtype == object or self.width > MAX_VECTOR_WIDTH:
            # Encoded-domain loop, deliberately bypassing any may_contain
            # override in a subclass (OnePBF re-encodes raw keys there).
            return np.fromiter(
                (PrefixBloomFilter.may_contain(self, key) for key in arr.tolist()),
                dtype=bool,
                count=arr.size,
            )
        if self.num_keys == 0:
            return np.zeros(arr.size, dtype=bool)
        return self._bloom.contains_many(arr >> np.int64(self.width - self.prefix_len))

    def _may_intersect_bytes(self, batch: ByteQueryBatch) -> np.ndarray:
        """Byte-mode batch ranges: slot-window enumeration + bulk row probes."""
        plo_rows, base, span, clamped = byte_slot_bounds(
            batch.lo_matrix, batch.hi_matrix, self.prefix_len, self.max_probes
        )
        out = clamped.copy()
        rows = np.flatnonzero(~clamped)
        if rows.size:
            slot_rows, offsets = expand_slot_rows(
                plo_rows, base, span, self.prefix_len, rows
            )
            hits = self._bloom.contains_bytes_rows(slot_rows)
            out[rows] = np.logical_or.reduceat(hits, offsets[:-1])
        return out

    def may_intersect_many(self, queries) -> np.ndarray:
        batch = coerce_query_batch(queries, self.width)
        if self.is_bytes and isinstance(batch, ByteQueryBatch) and self.num_keys:
            return self._may_intersect_bytes(batch)
        if not batch.is_vector:
            return np.fromiter(
                (
                    PrefixBloomFilter.may_intersect(self, lo, hi)
                    for lo, hi in batch.pairs()
                ),
                dtype=bool,
                count=len(batch),
            )
        if self.num_keys == 0:
            return np.zeros(len(batch), dtype=bool)
        plo, phi, clamped = slot_bounds(
            batch.los, batch.his, self.width, self.prefix_len, self.max_probes
        )
        out = clamped.copy()
        todo = ~clamped
        if todo.any():
            # Queries past the probe clamp answer True without touching the
            # Bloom filter; the rest probe every slot in their [plo, phi].
            flat, seg_starts = ragged_ranges(plo[todo], phi[todo] - plo[todo] + 1)
            hits = self._bloom.contains_many(flat)
            out[todo] = np.logical_or.reduceat(hits, seg_starts)
        return out

    def size_in_bits(self) -> int:
        return self._bloom.size_in_bits()

    def theoretical_probe_fpr(self) -> float:
        """Return the analytic single-probe FPR of the underlying Bloom filter."""
        return self._bloom.theoretical_fpr()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PrefixBloomFilter(prefix_len={self.prefix_len}, "
            f"bits={self._bloom.num_bits}, keys={self.num_keys})"
        )


class PointBloomFilter(PrefixBloomFilter):
    """A plain Bloom filter over whole keys (the paper's "Bloom" baseline).

    Exactly a :class:`PrefixBloomFilter` with ``prefix_len == width``: point
    queries probe the key itself, range queries probe every key in the range
    (clamped at ``max_probes``, beyond which the answer is a conservative
    ``True``) — the structure LSM stores ship by default and the weakest
    range baseline in the paper's comparison.
    """

    def __init__(
        self,
        keys: Iterable[int],
        width: int,
        num_bits: int,
        max_probes: int = DEFAULT_MAX_PROBES,
        seed: int = 0,
    ):
        super().__init__(keys, width, width, num_bits, max_probes=max_probes, seed=seed)

    @classmethod
    def from_spec(cls, spec, keys=None, workload=None) -> "PointBloomFilter":
        """Registry protocol: whole-key Bloom at the ``bits_per_key`` budget."""
        params = check_spec_params(spec, ("max_probes", "seed"))
        key_set, total_bits = resolve_spec_inputs(spec, keys, workload)
        return cls(
            key_set,
            key_set.width,
            total_bits,
            max_probes=int(params.get("max_probes", DEFAULT_MAX_PROBES)),
            seed=int(params.get("seed", 0)),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PointBloomFilter(bits={self._bloom.num_bits}, keys={self.num_keys})"
        )
