"""Fixed-prefix-length prefix Bloom filter.

The simplest range-filter design the paper considers (Section 2): hash the
``prefix_len``-bit prefix of every key into a Bloom filter.  A point query
probes one prefix; a range query probes every ``prefix_len``-prefix that
intersects the range (the ``Q_l`` set of the CPFPR model).  When a range
spans more prefixes than ``max_probes`` the filter gives up and returns
``True`` — returning a conservative positive is always safe, and the CPFPR
model accounts for exactly this clamp.

With ``prefix_len`` fixed a priori this filter is workload-oblivious; the
protean filters in :mod:`repro.core` are this same structure with the prefix
length *chosen* by Algorithm 1.
"""

from __future__ import annotations

from typing import Iterable

from repro.amq.bloom import BloomFilter
from repro.filters.base import RangeFilter
from repro.keys.keyspace import sorted_distinct_keys
from repro.keys.prefix import prefix_of, prefix_range

#: Default clamp on Bloom probes per range query (mirrored by the CPFPR model).
DEFAULT_MAX_PROBES = 64


class PrefixBloomFilter(RangeFilter):
    """A Bloom filter over the ``prefix_len``-bit prefixes of the key set."""

    def __init__(
        self,
        keys: Iterable[int],
        width: int,
        prefix_len: int,
        num_bits: int,
        max_probes: int = DEFAULT_MAX_PROBES,
        seed: int = 0,
    ):
        if not 0 < prefix_len <= width:
            raise ValueError(f"prefix length {prefix_len} outside [1, {width}]")
        if max_probes < 1:
            raise ValueError("max_probes must be at least 1")
        self.width = width
        self.prefix_len = prefix_len
        self.max_probes = max_probes
        distinct_keys = sorted_distinct_keys(keys, width)
        self.num_keys = len(distinct_keys)
        prefixes = {key >> (width - prefix_len) for key in distinct_keys}
        self.num_prefixes = len(prefixes)
        self._bloom = BloomFilter(num_bits, max(1, self.num_prefixes), seed=seed)
        self._bloom.add_many(prefixes)

    def may_contain(self, key: int) -> bool:
        if self.num_keys == 0:
            return False
        return self._bloom.contains(prefix_of(key, self.prefix_len, self.width))

    def may_intersect(self, lo: int, hi: int) -> bool:
        self._check_range(lo, hi)
        if self.num_keys == 0:
            return False
        plo, phi = prefix_range(lo, hi, self.prefix_len, self.width)
        if phi - plo + 1 > self.max_probes:
            return True
        bloom = self._bloom
        return any(bloom.contains(prefix) for prefix in range(plo, phi + 1))

    def size_in_bits(self) -> int:
        return self._bloom.size_in_bits()

    def theoretical_probe_fpr(self) -> float:
        """Return the analytic single-probe FPR of the underlying Bloom filter."""
        return self._bloom.theoretical_fpr()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PrefixBloomFilter(prefix_len={self.prefix_len}, "
            f"bits={self._bloom.num_bits}, keys={self.num_keys})"
        )
