"""SuRF-Base on the byte-trie machinery.

SuRF (Zhang et al., SIGMOD 2018) is the trie-only baseline Proteus is
measured against.  SuRF-Base prunes each key's branch at its *minimum
distinguishing prefix* — the shortest prefix no other key shares — and
answers both point and range queries by trie traversal alone.  Because every
stored prefix covers its key's full subtree, false negatives are impossible;
false positives arise whenever a query hits a pruned subtree that contains
no key.

The pruned prefix set is computed vectorised for word-sized key spaces
(numpy LCPs + per-depth prefix dedup; bit-identity to the scalar path is
pinned in ``tests/test_batch_parity.py``) and the trie is stored one of two
ways:

* ``physical=False`` (default): a pointer-based
  :class:`~repro.trie.node_trie.ByteTrie`, with the footprint its LOUDS-DS
  encoding *would* have reported via
  :func:`repro.trie.size_model.fst_size_estimate` — the paper's size
  accounting, as a model.
* ``physical=True``: the prefixes are encoded as a
  :class:`~repro.trie.fst.FastSuccinctTrie` (LOUDS-Dense top + LOUDS-Sparse
  bottom at the footprint-minimising cutoff); queries — scalar and batched —
  run on the succinct structure and ``size_in_bits()`` /
  ``size_breakdown()`` report the *measured* bits actually stored.  On the
  vectorised path the LOUDS halves are built directly from the sorted
  prefix list by :meth:`FastSuccinctTrie.from_sorted_prefix_bytes` (one
  ``repro.kernels.trie_levels`` pass) without materialising a pointer trie.

``max_depth`` caps the trie depth in bytes — the knob the paper turns to
trade SuRF's memory against its FPR.  Prefixes truncated by the cap may
collide across keys; the trie's prefix-free insertion handles that by
keeping the shorter (covering) prefix, which preserves zero false negatives.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.filters.base import (
    RangeFilter,
    check_spec_params,
    key_to_bytes,
    resolve_spec_inputs,
)
from repro.keys.keyspace import sorted_distinct_keys
from repro.keys.lcp import (
    MAX_VECTOR_WIDTH,
    min_distinguishing_prefix_lengths,
    min_distinguishing_prefix_lengths_array,
)
from repro.keys.bytestr import unique_rows
from repro.trie.fst import FastSuccinctTrie
from repro.trie.node_trie import ByteTrie
from repro.trie.size_model import fst_size_estimate
from repro.workloads.batch import (
    EncodedKeySet,
    as_key_array,
    coerce_keys,
    coerce_query_batch,
)
from repro.workloads.bytekeys import (
    ByteKeySet,
    ByteQueryBatch,
    byte_probe_matrix,
)


class SuRF(RangeFilter):
    """SuRF-Base: a pruned trie of minimum distinguishing key prefixes."""

    def __init__(
        self,
        keys: Iterable[int],
        width: int,
        max_depth: int | None = None,
        physical: bool = False,
        vectorize: bool = True,
    ):
        if width <= 0:
            raise ValueError("key width must be positive")
        self.width = width
        num_bytes = (width + 7) // 8
        if max_depth is None:
            max_depth = num_bytes
        if not 1 <= max_depth <= num_bytes:
            raise ValueError(f"trie depth {max_depth} outside [1, {num_bytes}]")
        self.max_depth = max_depth
        self.physical = physical
        if not isinstance(keys, (EncodedKeySet, ByteKeySet, np.ndarray)):
            keys = list(keys)
            if keys and isinstance(keys[0], (bytes, str, np.bytes_)):
                keys = coerce_keys(keys, width)
        self.is_bytes = isinstance(keys, ByteKeySet)
        self._trie: ByteTrie | None
        self._fst: FastSuccinctTrie | None
        if self.is_bytes:
            # Byte-native prefix extraction; pruning is byte-granular here
            # (width is always a byte multiple), so pad_bits is zero and
            # the distinguishing depth is the adjacent-LCP byte depth.
            prefixes = self._vector_prefixes_bytes(keys, max_depth)
            if physical:
                self._trie = None
                self._fst = FastSuccinctTrie.from_sorted_prefix_bytes(prefixes)
                return
            self._trie = ByteTrie.from_sorted_prefix_free(prefixes)
            self._fst = None
            return
        if vectorize and width <= MAX_VECTOR_WIDTH:
            prefixes = self._vector_prefixes(keys, width, max_depth, num_bytes)
            if physical:
                # Kernel-backed bulk build: the LOUDS halves come straight
                # from the sorted prefix list — no pointer trie at all.
                self._trie = None
                self._fst = FastSuccinctTrie.from_sorted_prefix_bytes(prefixes)
                return
            self._trie = ByteTrie.from_sorted_prefix_free(prefixes)
        else:
            self._trie = self._build_trie_scalar(keys, width, max_depth, num_bytes)
        self._fst = FastSuccinctTrie.from_byte_trie(self._trie) if physical else None

    def _build_trie_scalar(
        self, keys, width: int, max_depth: int, num_bytes: int
    ) -> ByteTrie:
        """Build the pruned trie with the scalar reference loop."""
        if isinstance(keys, EncodedKeySet):
            sorted_keys = keys.as_list()
        else:
            sorted_keys = sorted_distinct_keys(keys, width)
        self.num_keys = len(sorted_keys)
        bit_lengths = min_distinguishing_prefix_lengths(sorted_keys, width)
        # Keys are MSB-padded to whole bytes (key_to_bytes), so a prefix of
        # `bits` key bits occupies padded-encoding bits [pad, pad + bits) and
        # needs ceil((pad + bits) / 8) bytes — ignoring the pad would round
        # distinct keys onto one coarser byte prefix for non-byte widths.
        pad_bits = 8 * num_bytes - width
        prefixes = set()
        for key, bits in zip(sorted_keys, bit_lengths):
            depth = min(max_depth, (pad_bits + bits + 7) // 8)
            prefixes.add(key_to_bytes(key, width)[: max(1, depth)])
        return ByteTrie(prefixes)

    def _vector_prefixes(
        self, keys, width: int, max_depth: int, num_bytes: int
    ) -> list[bytes]:
        """Compute the sorted pruned-prefix list on the numpy bulk path.

        LCPs, distinguishing lengths and byte depths come from vectorised
        array arithmetic; per depth, the distinct prefix *integers* are
        deduplicated before any bytes object is materialised.  Capped-depth
        collisions dedup to equal strings and a natural (uncapped)
        distinguishing prefix is never a prefix of another key's, so the
        merged sorted list is prefix-free up to the covering rule the bulk
        builders (:meth:`ByteTrie.from_sorted_prefix_free` /
        :meth:`FastSuccinctTrie.from_sorted_prefix_bytes`) apply — either
        consumer yields a structure identical to the scalar path's trie.
        """
        if isinstance(keys, EncodedKeySet) and keys.is_vector:
            arr = keys.keys
        elif isinstance(keys, np.ndarray) and keys.dtype.kind in "iu":
            arr = np.unique(keys.astype(np.int64, copy=False))
            if arr.size and not 0 <= int(arr[0]) <= int(arr[-1]) < (1 << width):
                raise ValueError(f"key outside the {width}-bit key space")
        else:
            arr = np.array(sorted_distinct_keys(keys, width), dtype=np.int64)
        self.num_keys = int(arr.size)
        bit_lengths = min_distinguishing_prefix_lengths_array(arr, width)
        pad_bits = 8 * num_bytes - width
        depths = np.maximum(
            1, np.minimum(max_depth, (pad_bits + bit_lengths + 7) // 8)
        )
        prefixes: list[bytes] = []
        for depth in np.unique(depths).tolist():
            shift = np.int64(8 * (num_bytes - depth))
            for value in np.unique(arr[depths == depth] >> shift).tolist():
                prefixes.append(int(value).to_bytes(depth, "big"))
        prefixes.sort()
        return prefixes

    def _vector_prefixes_bytes(self, key_set: ByteKeySet, max_depth: int) -> list[bytes]:
        """Sorted pruned-prefix list for a byte-string key set.

        The distinguishing depth is byte-granular (adjacent-LCP byte depth
        plus one, capped at ``max_depth``); per depth the distinct prefix
        rows dedup before any bytes object is materialised, mirroring
        :meth:`_vector_prefixes` with ``pad_bits == 0``.
        """
        self.num_keys = len(key_set)
        if self.num_keys == 0:
            return []
        depths = np.maximum(
            1, np.minimum(max_depth, key_set.distinguishing_byte_depths())
        )
        matrix = key_set.matrix
        prefixes: list[bytes] = []
        for depth in np.unique(depths).tolist():
            rows = unique_rows(np.ascontiguousarray(matrix[depths == depth, :depth]))
            prefixes.extend(row.tobytes() for row in rows)
        prefixes.sort()
        return prefixes

    @classmethod
    def from_spec(cls, spec, keys=None, workload=None) -> "SuRF":
        """Registry protocol: derive the trie depth from the bit budget.

        ``max_depth`` is the knob the paper turns to trade SuRF's memory for
        FPR; here it is chosen as the *deepest* depth whose footprint fits
        ``bits_per_key * num_keys``.  Trie size is non-decreasing in the
        depth, so the search builds shallow-to-deep and stops at the first
        depth over budget, keeping the previous fit — the cheap tries are
        built first and the expensive ones only when the budget admits them.
        When even the one-byte trie exceeds the budget it is returned anyway
        — ``size_in_bits()`` stays the authoritative footprint, as with
        Rosetta's per-level floors.  An explicit ``max_depth`` parameter
        overrides the search.  ``physical: true`` selects the succinct
        LOUDS-DS storage, in which case the budget search compares
        *measured* sizes.
        """
        params = check_spec_params(spec, ("max_depth", "physical"))
        physical = bool(params.get("physical", False))
        key_set, total_bits = resolve_spec_inputs(spec, keys, workload)
        if "max_depth" in params:
            return cls(
                key_set, key_set.width, int(params["max_depth"]), physical=physical
            )
        num_bytes = (key_set.width + 7) // 8
        best = None
        for depth in range(1, num_bytes + 1):
            candidate = cls(key_set, key_set.width, depth, physical=physical)
            if best is not None and candidate.size_in_bits() > total_bits:
                break
            best = candidate
            if candidate.size_in_bits() > total_bits:
                break  # even the one-byte trie overshoots: take it and stop
            if candidate.trie_height() < depth:
                break  # every key already distinguished: deeper is identical
        assert best is not None
        return best

    def may_contain(self, key: int) -> bool:
        if self.num_keys == 0:
            return False
        encoded = key_to_bytes(key, self.width)
        if self._fst is not None:
            return self._fst.match_prefix_of(encoded)
        assert self._trie is not None
        return self._trie.match_prefix_of(encoded) is not None

    def may_intersect(self, lo: int, hi: int) -> bool:
        self._check_range(lo, hi)
        if self.num_keys == 0:
            return False
        lo_bytes = key_to_bytes(lo, self.width)
        hi_bytes = key_to_bytes(hi, self.width)
        if self._fst is not None:
            return self._fst.range_overlaps(lo_bytes, hi_bytes)
        assert self._trie is not None
        return self._trie.range_overlaps(lo_bytes, hi_bytes)

    def may_contain_many(self, keys) -> np.ndarray:
        """Batched point probes; LOUDS rank-arithmetic when ``physical``."""
        if self.is_bytes:
            mat = byte_probe_matrix(keys, self.width)
            if mat is None:
                # Padded big-integer probes: the scalar loop handles them.
                return super().may_contain_many(keys)
            if self.num_keys == 0:
                return np.zeros(mat.shape[0], dtype=bool)
            if self._fst is not None:
                return self._fst.may_contain_matrix(mat)
            assert self._trie is not None
            # Full padded rows, not the (null-stripped) S values: a pruned
            # prefix can extend past a short key's end into its null padding.
            return np.fromiter(
                (
                    self._trie.match_prefix_of(row.tobytes()) is not None
                    for row in mat
                ),
                dtype=bool,
                count=mat.shape[0],
            )
        if self._fst is None or self.width > MAX_VECTOR_WIDTH:
            return super().may_contain_many(keys)
        arr = as_key_array(keys)
        if arr.dtype == object:
            return super().may_contain_many(arr)
        if self.num_keys == 0:
            return np.zeros(arr.size, dtype=bool)
        return self._fst.may_contain_many(arr, (self.width + 7) // 8)

    def may_intersect_many(self, queries) -> np.ndarray:
        """Batched range probes; LOUDS rank-arithmetic when ``physical``."""
        batch = coerce_query_batch(queries, self.width)
        if self._fst is not None and isinstance(batch, ByteQueryBatch):
            if self.num_keys == 0:
                return np.zeros(len(batch), dtype=bool)
            return self._fst.may_intersect_matrix(batch.lo_matrix, batch.hi_matrix)
        if self._fst is None or not batch.is_vector:
            return super().may_intersect_many(batch)
        if self.num_keys == 0:
            return np.zeros(len(batch), dtype=bool)
        return self._fst.may_intersect_many(
            batch.los, batch.his, (self.width + 7) // 8
        )

    def trie_height(self) -> int:
        """Return the pruned trie's height in bytes."""
        if self._trie is None:
            assert self._fst is not None
            return self._fst.height
        return self._trie.height

    def size_in_bits(self) -> int:
        """Return the LOUDS-DS footprint of the pruned trie.

        *Measured* from the stored bitmaps and arrays when ``physical``;
        otherwise the size model's estimate (the paper's convention for the
        structures it does not materialise).
        """
        if self._fst is not None:
            return self._fst.size_in_bits()
        return self.modelled_size_in_bits()

    def modelled_size_in_bits(self) -> int:
        """Return the size model's LOUDS-DS estimate, physical or not."""
        if self._trie is None:
            assert self._fst is not None
            return self._fst.modelled_size_in_bits()
        edges, internal_nodes = self._trie.level_counts()
        return fst_size_estimate(edges, internal_nodes)

    def size_breakdown(self) -> dict[str, int]:
        """Return per-component charged bits (measured halves when physical)."""
        if self._fst is not None:
            return self._fst.size_breakdown()
        return {"total": self.size_in_bits()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SuRF(keys={self.num_keys}, width={self.width}, "
            f"max_depth={self.max_depth}, height={self.trie_height()}, "
            f"physical={self.physical})"
        )
