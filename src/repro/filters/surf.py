"""SuRF-Base on the byte-trie machinery.

SuRF (Zhang et al., SIGMOD 2018) is the trie-only baseline Proteus is
measured against.  SuRF-Base prunes each key's branch at its *minimum
distinguishing prefix* — the shortest prefix no other key shares — and
answers both point and range queries by trie traversal alone.  Because every
stored prefix covers its key's full subtree, false negatives are impossible;
false positives arise whenever a query hits a pruned subtree that contains
no key.

This implementation keeps the pruned trie in a pointer-based
:class:`~repro.trie.node_trie.ByteTrie` (byte-granular depths: the
distinguishing prefix lengths are rounded up to whole bytes) and reports the
footprint its LOUDS-DS encoding *would* have via
:func:`repro.trie.size_model.fst_size_estimate`, matching the paper's size
accounting.

``max_depth`` caps the trie depth in bytes — the knob the paper turns to
trade SuRF's memory against its FPR.  Prefixes truncated by the cap may
collide across keys; the trie's prefix-free insertion handles that by
keeping the shorter (covering) prefix, which preserves zero false negatives.
"""

from __future__ import annotations

from typing import Iterable

from repro.filters.base import (
    RangeFilter,
    check_spec_params,
    key_to_bytes,
    resolve_spec_inputs,
)
from repro.keys.keyspace import sorted_distinct_keys
from repro.keys.lcp import min_distinguishing_prefix_lengths
from repro.trie.node_trie import ByteTrie
from repro.trie.size_model import fst_size_estimate


class SuRF(RangeFilter):
    """SuRF-Base: a pruned trie of minimum distinguishing key prefixes."""

    def __init__(
        self,
        keys: Iterable[int],
        width: int,
        max_depth: int | None = None,
    ):
        if width <= 0:
            raise ValueError("key width must be positive")
        self.width = width
        num_bytes = (width + 7) // 8
        if max_depth is None:
            max_depth = num_bytes
        if not 1 <= max_depth <= num_bytes:
            raise ValueError(f"trie depth {max_depth} outside [1, {num_bytes}]")
        self.max_depth = max_depth
        sorted_keys = sorted_distinct_keys(keys, width)
        self.num_keys = len(sorted_keys)
        bit_lengths = min_distinguishing_prefix_lengths(sorted_keys, width)
        # Keys are MSB-padded to whole bytes (key_to_bytes), so a prefix of
        # `bits` key bits occupies padded-encoding bits [pad, pad + bits) and
        # needs ceil((pad + bits) / 8) bytes — ignoring the pad would round
        # distinct keys onto one coarser byte prefix for non-byte widths.
        pad_bits = 8 * num_bytes - width
        prefixes = set()
        for key, bits in zip(sorted_keys, bit_lengths):
            depth = min(max_depth, (pad_bits + bits + 7) // 8)
            prefixes.add(key_to_bytes(key, width)[: max(1, depth)])
        self._trie = ByteTrie(prefixes)

    @classmethod
    def from_spec(cls, spec, keys=None, workload=None) -> "SuRF":
        """Registry protocol: derive the trie depth from the bit budget.

        ``max_depth`` is the knob the paper turns to trade SuRF's memory for
        FPR; here it is chosen as the *deepest* depth whose modelled
        LOUDS-DS footprint fits ``bits_per_key * num_keys``.  Trie size is
        non-decreasing in the depth, so the search builds shallow-to-deep
        and stops at the first depth over budget, keeping the previous fit
        — the cheap tries are built first and the expensive ones only when
        the budget admits them.  When even the one-byte trie exceeds the
        budget it is returned anyway — ``size_in_bits()`` stays the
        authoritative footprint, as with Rosetta's per-level floors.  An
        explicit ``max_depth`` parameter overrides the search.
        """
        params = check_spec_params(spec, ("max_depth",))
        key_set, total_bits = resolve_spec_inputs(spec, keys, workload)
        if "max_depth" in params:
            return cls(key_set.keys, key_set.width, int(params["max_depth"]))
        num_bytes = (key_set.width + 7) // 8
        best = None
        for depth in range(1, num_bytes + 1):
            candidate = cls(key_set.keys, key_set.width, depth)
            if best is not None and candidate.size_in_bits() > total_bits:
                break
            best = candidate
            if candidate.size_in_bits() > total_bits:
                break  # even the one-byte trie overshoots: take it and stop
            if candidate.trie_height() < depth:
                break  # every key already distinguished: deeper is identical
        assert best is not None
        return best

    def may_contain(self, key: int) -> bool:
        if self.num_keys == 0:
            return False
        return self._trie.match_prefix_of(key_to_bytes(key, self.width)) is not None

    def may_intersect(self, lo: int, hi: int) -> bool:
        self._check_range(lo, hi)
        if self.num_keys == 0:
            return False
        return self._trie.range_overlaps(
            key_to_bytes(lo, self.width), key_to_bytes(hi, self.width)
        )

    def trie_height(self) -> int:
        """Return the pruned trie's height in bytes."""
        return self._trie.height

    def size_in_bits(self) -> int:
        """Modelled LOUDS-DS footprint of the pruned trie (paper convention)."""
        edges, internal_nodes = self._trie.level_counts()
        return fst_size_estimate(edges, internal_nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SuRF(keys={self.num_keys}, width={self.width}, "
            f"max_depth={self.max_depth}, height={self._trie.height})"
        )
