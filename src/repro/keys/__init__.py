"""Key encoding utilities.

All range filters in this repository operate on keys viewed as unsigned
integers of a fixed bit width (the *key space width*).  64-bit integer keys
use a width of 64; variable-length string keys are padded with trailing null
bytes to the maximum key length and use a width of ``8 * max_len`` bits, which
is exactly the treatment described in Section 7 of the paper.

The :class:`~repro.keys.keyspace.KeySpace` classes encapsulate that mapping;
:mod:`repro.keys.prefix` provides prefix arithmetic and
:mod:`repro.keys.lcp` the longest-common-prefix computations that drive the
CPFPR model.
"""

from repro.keys.keyspace import IntegerKeySpace, KeySpace, StringKeySpace
from repro.keys.lcp import (
    adjacent_lcps,
    lcp_bits,
    query_set_lcp,
    unique_prefix_counts,
)
from repro.keys.prefix import (
    prefix_of,
    prefix_range,
    prefix_range_count,
    prefix_to_range,
)

__all__ = [
    "KeySpace",
    "IntegerKeySpace",
    "StringKeySpace",
    "lcp_bits",
    "adjacent_lcps",
    "query_set_lcp",
    "unique_prefix_counts",
    "prefix_of",
    "prefix_range",
    "prefix_range_count",
    "prefix_to_range",
]
