"""Key encoding utilities.

All range filters in this repository operate on keys viewed as unsigned
integers of a fixed bit width (the *key space width*).  64-bit integer keys
use a width of 64; variable-length string keys are padded with trailing null
bytes to the maximum key length and use a width of ``8 * max_len`` bits, which
is exactly the treatment described in Section 7 of the paper.

The :class:`~repro.keys.keyspace.KeySpace` classes encapsulate that mapping;
:mod:`repro.keys.prefix` provides prefix arithmetic and
:mod:`repro.keys.lcp` the longest-common-prefix computations that drive the
CPFPR model.
"""

from repro.keys.keyspace import (
    IntegerKeySpace,
    KeySpace,
    StringKeySpace,
    sorted_distinct_keys,
)
from repro.keys.lcp import (
    adjacent_lcps,
    lcp_bits,
    min_distinguishing_prefix_lengths,
    query_set_lcp,
    unique_prefix_counts,
)
from repro.keys.prefix import (
    extend_prefix_max,
    extend_prefix_min,
    prefix_of,
    prefix_range,
    prefix_range_count,
    prefix_to_range,
    truncate_to_prefix,
)

__all__ = [
    "KeySpace",
    "IntegerKeySpace",
    "StringKeySpace",
    "sorted_distinct_keys",
    "lcp_bits",
    "adjacent_lcps",
    "min_distinguishing_prefix_lengths",
    "query_set_lcp",
    "unique_prefix_counts",
    "prefix_of",
    "prefix_range",
    "prefix_range_count",
    "prefix_to_range",
    "truncate_to_prefix",
    "extend_prefix_min",
    "extend_prefix_max",
]
