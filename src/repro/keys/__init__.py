"""Key encoding utilities.

All range filters in this repository operate on keys viewed as unsigned
integers of a fixed bit width (the *key space width*).  64-bit integer keys
use a width of 64; variable-length string keys are padded with trailing null
bytes to the maximum key length and use a width of ``8 * max_len`` bits, which
is exactly the treatment described in Section 7 of the paper.

The :class:`~repro.keys.keyspace.KeySpace` classes encapsulate that mapping;
:mod:`repro.keys.prefix` provides prefix arithmetic and
:mod:`repro.keys.lcp` the longest-common-prefix computations that drive the
CPFPR model.
"""

from repro.keys.keyspace import (
    IntegerKeySpace,
    KeySpace,
    StringKeySpace,
    sorted_distinct_keys,
)
from repro.keys.lcp import (
    MAX_VECTOR_WIDTH,
    adjacent_lcps,
    bit_length_many,
    lcp_bits,
    lcp_bits_many,
    min_distinguishing_prefix_lengths,
    query_set_lcp,
    query_set_lcp_many,
    unique_prefix_counts,
    unique_prefix_counts_array,
)
from repro.keys.prefix import (
    distinct_prefixes,
    extend_prefix_max,
    extend_prefix_min,
    prefix_of,
    prefix_range,
    prefix_range_count,
    prefix_to_range,
    truncate_to_prefix,
)

__all__ = [
    "KeySpace",
    "IntegerKeySpace",
    "StringKeySpace",
    "sorted_distinct_keys",
    "MAX_VECTOR_WIDTH",
    "lcp_bits",
    "lcp_bits_many",
    "bit_length_many",
    "adjacent_lcps",
    "min_distinguishing_prefix_lengths",
    "query_set_lcp",
    "query_set_lcp_many",
    "unique_prefix_counts",
    "unique_prefix_counts_array",
    "distinct_prefixes",
    "prefix_of",
    "prefix_range",
    "prefix_range_count",
    "prefix_to_range",
    "truncate_to_prefix",
    "extend_prefix_min",
    "extend_prefix_max",
]
