"""Vectorised primitives over padded byte-matrix key representations.

The byte-key execution path (:class:`repro.workloads.ByteKeySet`) views a
sorted variable-length key set as a dense ``(n, L)`` ``uint8`` matrix of
keys null-padded to the maximum length ``L``.  Padding with trailing nulls
preserves lexicographic order (``memcmp`` semantics), so the matrix rows —
and equivalently numpy's fixed-width ``S{L}`` byte strings over the same
memory — sort and search identically to the big-endian ``8*L``-bit integer
view the scalar filters use.  Everything here exploits that equivalence:

* prefix extraction is column truncation plus one masked byte;
* LCPs come from the first differing byte of a row XOR;
* Bloom items hash through a row-parallel restatement of
  :func:`repro.amq.hashing.hash_bytes_64`, bit-exact with the scalar hash
  of the same canonical prefix bytes;
* range filters enumerate prefix *slots* through a low-64-bit window over
  the trailing eight prefix bytes, with a conservative clamp (shared with
  the scalar byte path) when a slot interval crosses a window boundary.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.amq import hashing
from repro.amq.hashing import mix64, mix64_many

__all__ = [
    "adjacent_lcp_bits",
    "byte_slot_bounds",
    "expand_slot_rows",
    "hash_rows",
    "lcp_bits_rows",
    "mask_rows",
    "pack_rows",
    "prefix_item_bytes",
    "row_values",
    "rows_as_strings",
    "scalar_slot_clamped",
    "strings_as_rows",
    "unique_rows",
    "window_values",
]

#: ``int.bit_length`` for every byte value, for intra-byte LCP refinement.
_BITLEN8 = np.array([v.bit_length() for v in range(256)], dtype=np.int64)


def pack_rows(keys: Sequence[bytes], num_bytes: int) -> np.ndarray:
    """Null-pad ``keys`` to ``num_bytes`` and stack them as a uint8 matrix."""
    joined = b"".join(key.ljust(num_bytes, b"\x00") for key in keys)
    return np.frombuffer(joined, dtype=np.uint8).reshape(len(keys), num_bytes).copy()


def rows_as_strings(mat: np.ndarray) -> np.ndarray:
    """View an ``(n, nb)`` uint8 matrix as an ``S{nb}`` byte-string array.

    Fixed-width byte strings compare by ``memcmp``, so sorting or
    searchsorting the view is exactly sorting the rows in padded key order.
    """
    n, nb = mat.shape
    if nb == 0:
        raise ValueError("cannot view zero-width rows as byte strings")
    return np.ascontiguousarray(mat).view(f"S{nb}").reshape(n)


def strings_as_rows(arr: np.ndarray) -> np.ndarray:
    """Inverse of :func:`rows_as_strings`: ``S{nb}`` array to uint8 matrix."""
    nb = arr.dtype.itemsize
    return np.ascontiguousarray(arr).view(np.uint8).reshape(arr.size, nb)


def mask_rows(mat: np.ndarray, bits: int) -> np.ndarray:
    """Return the ``bits``-bit prefixes of each row as ``ceil(bits/8)`` bytes.

    Columns past the prefix are dropped and the final byte is masked to its
    leading ``bits % 8`` bits — the canonical byte form of a prefix, used
    for hashing, deduplication and slot enumeration alike.
    """
    nb = (bits + 7) // 8
    out = mat[:, :nb].copy()
    rem = bits & 7
    if rem:
        out[:, nb - 1] &= np.uint8((0xFF << (8 - rem)) & 0xFF)
    return out


def unique_rows(mat: np.ndarray) -> np.ndarray:
    """Sorted distinct rows of a uint8 matrix (padded lexicographic order)."""
    if mat.shape[0] == 0:
        return mat
    return strings_as_rows(np.unique(rows_as_strings(mat)))


def row_values(mat: np.ndarray) -> np.ndarray:
    """Big-endian numeric value of each row as ``float64``.

    Exact only below 2**53; the CPFPR byte model consumes these as inputs
    to probability formulas, where that precision is ample.
    """
    nb = mat.shape[1]
    weights = 256.0 ** np.arange(nb - 1, -1, -1)
    return mat.astype(np.float64) @ weights


def lcp_bits_rows(a: np.ndarray, b: np.ndarray, pad_to: int | None = None) -> np.ndarray:
    """Bitwise LCP of corresponding rows of two equal-shape uint8 matrices.

    Identical rows get the full padded width ``8 * columns`` (or ``pad_to``
    bits when the matrices are truncations of wider keys).
    """
    n, nb = a.shape
    full = 8 * nb if pad_to is None else pad_to
    x = np.bitwise_xor(a, b)
    nz = x != 0
    has = nz.any(axis=1)
    first = nz.argmax(axis=1)
    xb = x[np.arange(n), first]
    out = 8 * first + 8 - _BITLEN8[xb]
    out[~has] = full
    return out.astype(np.int64)


def adjacent_lcp_bits(mat: np.ndarray) -> np.ndarray:
    """Bitwise LCPs of each adjacent row pair of a sorted key matrix."""
    if mat.shape[0] <= 1:
        return np.zeros(0, dtype=np.int64)
    return lcp_bits_rows(mat[:-1], mat[1:])


def hash_rows(mat: np.ndarray, seed: int = 0) -> np.ndarray:
    """Row-parallel :func:`repro.amq.hashing.hash_bytes_64`.

    Bit-exact with ``hash_bytes_64(bytes(row), seed)`` for every row: the
    FNV-1a accumulation consumes little-endian 8-byte chunks, so the
    zero-padding of a trailing partial chunk is a no-op, and the length mix
    uses the true row width.
    """
    n, nb = mat.shape
    acc = np.full(n, np.uint64(hashing._FNV_OFFSET ^ mix64(seed)), dtype=np.uint64)
    num_chunks = (nb + 7) // 8
    if num_chunks:
        if num_chunks * 8 != nb:
            buf = np.zeros((n, num_chunks * 8), dtype=np.uint8)
            buf[:, :nb] = mat
        else:
            buf = np.ascontiguousarray(mat)
        chunks = buf.view("<u8")
        prime = np.uint64(hashing._FNV_PRIME)
        for j in range(num_chunks):
            acc = (acc ^ chunks[:, j]) * prime
    return mix64_many(acc ^ np.uint64(nb))


def window_values(mat: np.ndarray) -> np.ndarray:
    """Big-endian uint64 of the trailing ``min(nb, 8)`` bytes of each row."""
    n, nb = mat.shape
    w = min(nb, 8)
    buf = np.zeros((n, 8), dtype=np.uint8)
    buf[:, 8 - w :] = mat[:, nb - w :]
    return buf.view(">u8").reshape(n).astype(np.uint64)


def byte_slot_bounds(
    lo_mat: np.ndarray,
    hi_mat: np.ndarray,
    prefix_bits: int,
    max_probes: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Byte-mode twin of ``repro.workloads.slot_bounds``.

    Returns ``(plo_rows, base, span, clamped)``: the masked lo-prefix rows,
    their low-64-bit window values, the per-query extra-slot count (valid
    where unclamped), and the conservative clamp.  A query is clamped when
    it covers more than ``max_probes`` slots *or* when its slot interval
    crosses a boundary of the low-64-bit window (the bytes above the
    trailing eight differ) — the same rule :func:`scalar_slot_clamped`
    applies, so scalar and batched byte probes answer identically.
    """
    n = lo_mat.shape[0]
    nb = (prefix_bits + 7) // 8
    shift = np.uint64(8 * nb - prefix_bits)
    plo = mask_rows(lo_mat, prefix_bits)
    phi = mask_rows(hi_mat, prefix_bits)
    if nb > 8:
        top_equal = (plo[:, : nb - 8] == phi[:, : nb - 8]).all(axis=1)
    else:
        top_equal = np.ones(n, dtype=bool)
    base = window_values(plo)
    hi64 = window_values(phi)
    diff = np.where(top_equal, hi64 - base, np.uint64(0)) >> shift
    clamped = ~top_equal | (diff > np.uint64(max(0, max_probes - 1)))
    span = np.where(clamped, np.uint64(0), diff).astype(np.int64)
    return plo, base, span, clamped


def expand_slot_rows(
    plo: np.ndarray,
    base: np.ndarray,
    span: np.ndarray,
    prefix_bits: int,
    rows: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Enumerate the covered slot rows for the selected (unclamped) queries.

    ``rows`` indexes into the :func:`byte_slot_bounds` outputs.  Returns the
    flat ``(total, nb)`` slot matrix plus ``offsets`` (length
    ``len(rows) + 1``) delimiting each query's slots within it.
    """
    nb = plo.shape[1]
    shift = np.uint64(8 * nb - prefix_bits)
    counts = span[rows] + 1
    offsets = np.zeros(rows.size + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    total = int(offsets[-1])
    owners = np.repeat(np.arange(rows.size), counts)
    k = np.arange(total, dtype=np.int64) - offsets[:-1][owners]
    slot64 = base[rows][owners] + (k.astype(np.uint64) << shift)
    out = plo[rows][owners].copy()
    w = min(nb, 8)
    be = slot64.astype(">u8").view(np.uint8).reshape(-1, 8)
    out[:, nb - w :] = be[:, 8 - w :]
    return out, offsets


def prefix_item_bytes(prefix: int, prefix_bits: int) -> bytes:
    """Canonical byte encoding of a ``prefix_bits``-bit prefix value.

    Every byte-mode Bloom interaction — vectorised construction, batched
    probes, and the scalar fallbacks — hashes exactly these
    ``ceil(prefix_bits/8)`` bytes, so the paths cannot disagree.
    """
    nb = (prefix_bits + 7) // 8
    return int(prefix << (8 * nb - prefix_bits)).to_bytes(nb, "big")


def scalar_slot_clamped(plo: int, phi: int, prefix_bits: int, max_probes: int) -> bool:
    """Scalar twin of :func:`byte_slot_bounds`'s clamp rule."""
    if phi - plo > max_probes - 1:
        return True
    nb = (prefix_bits + 7) // 8
    if nb <= 8:
        return False
    window = 64 - (8 * nb - prefix_bits)
    return (plo >> window) != (phi >> window)
