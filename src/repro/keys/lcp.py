"""Longest-common-prefix computations used by the CPFPR model.

The model (Section 3 of the paper) needs two quantities derived from the key
set and the sample queries:

* ``|K_l|`` — the number of unique ``l``-bit prefixes of the key set, for
  every prefix length ``l``.  This drives the Bloom filter FPR estimate and
  the trie size estimate.  It is computed from the LCPs of adjacent keys in
  the sorted key set (an ``O(|K|)`` pass, Section 4.3 "Count Key Prefixes").
* ``lcp(Q, K)`` — for an empty query interval ``Q``, the longest common
  prefix between any value in ``Q`` and any key.  Any prefix length at most
  ``lcp(Q, K)`` cannot distinguish the query from the key set and is a
  guaranteed false positive (Section 4.3 "Count Query Prefixes").

Both quantities come in two flavours: the scalar reference implementations
(arbitrary key widths, pure Python) and ``*_many`` numpy batch versions for
word-sized key spaces (width <= 63, so values and spans fit ``int64``).  The
batch versions are bit-exact re-statements of the scalar ones — the CPFPR
model dispatches between them and the parity test-suite holds them equal.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Sequence

import numpy as np

#: Widest key space whose values (and ``hi - lo`` spans) fit ``numpy.int64``.
MAX_VECTOR_WIDTH = 63


def lcp_bits(a: int, b: int, width: int) -> int:
    """Return the length in bits of the longest common prefix of ``a`` and ``b``.

    Both values are interpreted as ``width``-bit unsigned integers.
    """
    if a == b:
        return width
    return width - (a ^ b).bit_length()


def adjacent_lcps(sorted_keys: Sequence[int], width: int) -> list[int]:
    """Return the LCP (in bits) of each adjacent pair in ``sorted_keys``."""
    return [
        lcp_bits(sorted_keys[i], sorted_keys[i + 1], width)
        for i in range(len(sorted_keys) - 1)
    ]


def unique_prefix_counts(sorted_keys: Sequence[int], width: int) -> list[int]:
    """Return ``counts`` where ``counts[l] == |K_l|`` for ``l`` in ``[0, width]``.

    ``|K_0|`` is 1 (the empty prefix) whenever the key set is non-empty.
    ``|K_l|`` equals one plus the number of adjacent key pairs whose LCP is
    shorter than ``l`` (each such pair contributes a branch before depth
    ``l``).  Duplicate keys are tolerated (they share all prefixes).
    """
    if not sorted_keys:
        return [0] * (width + 1)
    # lcp_histogram[d] = number of adjacent pairs with LCP exactly d bits.
    lcp_histogram = [0] * (width + 1)
    for lcp in adjacent_lcps(sorted_keys, width):
        lcp_histogram[lcp] += 1
    counts = [0] * (width + 1)
    counts[0] = 1
    pairs_with_shorter_lcp = 0
    for length in range(1, width + 1):
        pairs_with_shorter_lcp += lcp_histogram[length - 1]
        counts[length] = 1 + pairs_with_shorter_lcp
    return counts


def query_set_lcp(sorted_keys: Sequence[int], lo: int, hi: int, width: int) -> int:
    """Return ``lcp(Q, K)`` for the query interval ``[lo, hi]``.

    If the interval contains a key (i.e. the query is not empty), the LCP is
    the full key width, matching the model's convention that such a query can
    never be filtered.

    For an empty interval the maximum LCP with the key set is attained either
    between ``lo`` and its predecessor key or between ``hi`` and its successor
    key, because for values ``a <= b <= c`` we have
    ``lcp(a, c) = min(lcp(a, b), lcp(b, c))``.
    """
    if not sorted_keys:
        return 0
    left = bisect_left(sorted_keys, lo)
    right = bisect_right(sorted_keys, hi)
    if right > left:
        # At least one key falls inside [lo, hi]: the query is non-empty.
        return width
    best = 0
    if left > 0:
        best = max(best, lcp_bits(sorted_keys[left - 1], lo, width))
    if right < len(sorted_keys):
        best = max(best, lcp_bits(sorted_keys[right], hi, width))
    return best


def min_distinguishing_prefix_lengths(
    sorted_keys: Sequence[int], width: int
) -> list[int]:
    """Return, for each key, the minimum prefix length that uniquely identifies it.

    This is the pruning rule used by SuRF-Base: the branch for each key is cut
    at the shortest prefix that no other key shares.  For a key at position
    ``i`` this is ``1 + max(lcp with left neighbour, lcp with right
    neighbour)`` (capped at the key width).  Duplicate keys get the full
    width.
    """
    n = len(sorted_keys)
    if n == 0:
        return []
    if n == 1:
        return [1]
    lcps = adjacent_lcps(sorted_keys, width)
    lengths = []
    for i in range(n):
        left = lcps[i - 1] if i > 0 else -1
        right = lcps[i] if i < n - 1 else -1
        lengths.append(min(width, max(left, right) + 1))
    return lengths


# --------------------------------------------------------------------- #
# Vectorised batch versions (width <= MAX_VECTOR_WIDTH, int64 arrays)   #
# --------------------------------------------------------------------- #

_POP_M1 = np.uint64(0x5555555555555555)
_POP_M2 = np.uint64(0x3333333333333333)
_POP_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_POP_H01 = np.uint64(0x0101010101010101)


def _popcount64(values: np.ndarray) -> np.ndarray:
    """SWAR popcount over a ``uint64`` array (no numpy-2-only intrinsics)."""
    v = values
    v = v - ((v >> np.uint64(1)) & _POP_M1)
    v = (v & _POP_M2) + ((v >> np.uint64(2)) & _POP_M2)
    v = (v + (v >> np.uint64(4))) & _POP_M4
    return (v * _POP_H01) >> np.uint64(56)


def bit_length_many(values: np.ndarray) -> np.ndarray:
    """``int.bit_length`` over an array of non-negative word-sized integers."""
    v = np.asarray(values).astype(np.uint64)
    for shift in (1, 2, 4, 8, 16, 32):
        v = v | (v >> np.uint64(shift))
    return _popcount64(v).astype(np.int64)


def lcp_bits_many(a: np.ndarray, b: np.ndarray, width: int) -> np.ndarray:
    """Vectorised :func:`lcp_bits`: LCP length of ``a[i]`` and ``b[i]``."""
    return width - bit_length_many(np.bitwise_xor(a, b))


def unique_prefix_counts_array(sorted_keys: np.ndarray, width: int) -> np.ndarray:
    """Vectorised :func:`unique_prefix_counts` over a sorted distinct int64 array."""
    counts = np.zeros(width + 1, dtype=np.int64)
    if sorted_keys.size == 0:
        return counts
    counts[0] = 1
    if sorted_keys.size > 1:
        lcps = lcp_bits_many(sorted_keys[:-1], sorted_keys[1:], width)
        histogram = np.bincount(lcps, minlength=width + 1)
        # counts[l] = 1 + #adjacent pairs with LCP < l.
        counts[1:] = 1 + np.cumsum(histogram)[: width]
    else:
        counts[1:] = 1
    return counts


def min_distinguishing_prefix_lengths_array(
    sorted_keys: np.ndarray, width: int
) -> np.ndarray:
    """Vectorised :func:`min_distinguishing_prefix_lengths` over an int64 array.

    Same contract: ``sorted_keys`` must be sorted (duplicates tolerated);
    the result is bit-exact against the scalar reference, which the parity
    suite pins.
    """
    n = int(sorted_keys.size)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if n == 1:
        return np.ones(1, dtype=np.int64)
    lcps = lcp_bits_many(sorted_keys[:-1], sorted_keys[1:], width)
    left = np.concatenate(([-1], lcps))
    right = np.concatenate((lcps, [-1]))
    return np.minimum(width, np.maximum(left, right) + 1)


def query_set_lcp_many(
    sorted_keys: np.ndarray, los: np.ndarray, his: np.ndarray, width: int
) -> np.ndarray:
    """Vectorised :func:`query_set_lcp` over ``(los[i], his[i])`` intervals.

    Non-empty intervals get the full ``width`` (same convention as the
    scalar version); empty ones get the max LCP against the predecessor of
    ``lo`` and the successor of ``hi``.
    """
    out = np.zeros(los.shape[0], dtype=np.int64)
    n = sorted_keys.size
    if n == 0 or out.size == 0:
        return out
    left = np.searchsorted(sorted_keys, los, side="left")
    right = np.searchsorted(sorted_keys, his, side="right")
    nonempty = right > left
    out[nonempty] = width
    empty = ~nonempty
    has_left = empty & (left > 0)
    if has_left.any():
        neighbours = sorted_keys[left[has_left] - 1]
        out[has_left] = lcp_bits_many(neighbours, los[has_left], width)
    has_right = empty & (right < n)
    if has_right.any():
        neighbours = sorted_keys[right[has_right]]
        candidate = lcp_bits_many(neighbours, his[has_right], width)
        out[has_right] = np.maximum(out[has_right], candidate)
    return out
