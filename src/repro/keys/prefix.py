"""Prefix arithmetic on fixed-width integer key spaces.

A key of width ``w`` bits is an unsigned integer in ``[0, 2**w)``.  Its
*prefix of length l* is the integer formed by its ``l`` most significant
bits, i.e. ``key >> (w - l)``.  A prefix of length ``l`` *covers* the key
range ``[p << (w - l), ((p + 1) << (w - l)) - 1]``.

These definitions are shared by every filter in the repository and by the
CPFPR model, which reasons about the set of ``l``-prefixes intersecting a
query interval (the ``Q_l`` sets of Section 3 of the paper).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.keys.lcp import MAX_VECTOR_WIDTH


def distinct_prefixes(keys: Sequence[int], length: int, width: int) -> np.ndarray:
    """Sorted distinct ``length``-bit prefixes of ``keys`` as a numpy array.

    Word-sized key spaces get an ``int64`` array (vectorised shift +
    ``np.unique``); wider spaces an ``object`` array of Python ints.  This
    is the one prefix-set constructor every Bloom-layer builder shares, so
    the width dispatch cannot drift between filters.
    """
    if not 0 < length <= width:
        raise ValueError(f"prefix length {length} outside [1, {width}]")
    shift = width - length
    if width <= MAX_VECTOR_WIDTH:
        arr = keys if isinstance(keys, np.ndarray) else np.array(keys, dtype=np.int64)
        return np.unique(arr >> np.int64(shift))
    return np.array(sorted({key >> shift for key in keys}), dtype=object)


def prefix_of(key: int, length: int, width: int) -> int:
    """Return the ``length``-bit prefix of ``key`` in a ``width``-bit space.

    ``length == 0`` returns the empty prefix (0); ``length == width`` returns
    the key itself.
    """
    if not 0 <= length <= width:
        raise ValueError(f"prefix length {length} outside [0, {width}]")
    return key >> (width - length)


def prefix_range(lo: int, hi: int, length: int, width: int) -> tuple[int, int]:
    """Return the (inclusive) range of ``length``-prefixes covering ``[lo, hi]``.

    This is the interval ``Q_l`` from the paper: every ``length``-bit prefix
    that is the prefix of at least one value in ``[lo, hi]``.
    """
    if lo > hi:
        raise ValueError(f"empty query range [{lo}, {hi}]")
    shift = width - length
    return lo >> shift, hi >> shift


def prefix_range_count(lo: int, hi: int, length: int, width: int) -> int:
    """Return ``|Q_l|``: the number of ``length``-prefixes covering ``[lo, hi]``."""
    plo, phi = prefix_range(lo, hi, length, width)
    return phi - plo + 1


def prefix_to_range(prefix: int, length: int, width: int) -> tuple[int, int]:
    """Return the (inclusive) key range covered by ``prefix`` of ``length`` bits."""
    if not 0 <= length <= width:
        raise ValueError(f"prefix length {length} outside [0, {width}]")
    shift = width - length
    lo = prefix << shift
    hi = lo + (1 << shift) - 1
    return lo, hi


def truncate_to_prefix(key: int, length: int, width: int) -> int:
    """Zero out all but the first ``length`` bits of ``key`` (keeps width bits)."""
    shift = width - length
    return (key >> shift) << shift


def extend_prefix_min(prefix: int, length: int, width: int) -> int:
    """Smallest ``width``-bit key having ``prefix`` as its ``length``-bit prefix."""
    return prefix << (width - length)


def extend_prefix_max(prefix: int, length: int, width: int) -> int:
    """Largest ``width``-bit key having ``prefix`` as its ``length``-bit prefix."""
    shift = width - length
    return (prefix << shift) | ((1 << shift) - 1)
