"""Key spaces: map user keys onto a fixed-width integer view.

Every filter in this repository is defined over unsigned integers of a fixed
bit width.  :class:`IntegerKeySpace` is the identity mapping for 64-bit
integer keys; :class:`StringKeySpace` pads variable-length byte strings with
trailing null bytes up to a maximum length and interprets them as big-endian
integers, which preserves lexicographic order (Section 7 of the paper).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence

import numpy as np


def sorted_distinct_keys(keys: Iterable[int], width: int) -> list[int]:
    """Sort, dedupe and bounds-check an encoded key set for a ``width``-bit space.

    Every filter and model constructor funnels its key set through this one
    helper so the validation cannot drift between implementations.  Numpy
    integer arrays (the :class:`repro.workloads.EncodedKeySet` backing store)
    take a vectorised path; the result is a plain list of Python ints either
    way.
    """
    if isinstance(keys, np.ndarray) and keys.dtype.kind in "iu":
        if keys.size == 0:
            return []
        deduped = np.unique(keys)
        if not 0 <= int(deduped[0]) <= int(deduped[-1]) < (1 << width):
            raise ValueError(f"key outside the {width}-bit key space")
        return deduped.tolist()
    result = sorted({int(key) for key in keys})
    if result and not 0 <= result[0] <= result[-1] < (1 << width):
        raise ValueError(f"key outside the {width}-bit key space")
    return result


class KeySpace(ABC):
    """A totally ordered key domain viewed as ``width``-bit unsigned integers."""

    #: Number of bits in the integer view of a key.
    width: int

    @abstractmethod
    def encode(self, key) -> int:
        """Map a user key to its integer view."""

    @abstractmethod
    def decode(self, value: int):
        """Map an integer view back to a user key (inverse of :meth:`encode`)."""

    def encode_many(self, keys: Iterable) -> list[int]:
        """Encode an iterable of keys; convenience wrapper around :meth:`encode`."""
        return [self.encode(key) for key in keys]

    @property
    def max_value(self) -> int:
        """Largest integer representable in this key space."""
        return (1 << self.width) - 1

    def validate(self, value: int) -> int:
        """Raise :class:`ValueError` if ``value`` is outside the key space."""
        if not 0 <= value <= self.max_value:
            raise ValueError(
                f"value {value} outside the {self.width}-bit key space"
            )
        return value


class IntegerKeySpace(KeySpace):
    """Fixed-width unsigned integer keys (the paper's 64-bit integer setting)."""

    def __init__(self, width: int = 64):
        if width <= 0:
            raise ValueError("key width must be positive")
        self.width = width

    def encode(self, key: int) -> int:
        return self.validate(int(key))

    def decode(self, value: int) -> int:
        return self.validate(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IntegerKeySpace(width={self.width})"


class StringKeySpace(KeySpace):
    """Variable-length byte-string keys padded to a fixed maximum length.

    Keys shorter than ``max_length`` bytes are padded with trailing null
    bytes, exactly as Proteus does for its prefix Bloom filter (Section 7.1).
    As the paper notes, the filter therefore does not distinguish a short key
    from its null-padded equivalents.
    """

    def __init__(self, max_length: int):
        if max_length <= 0:
            raise ValueError("maximum key length must be positive")
        self.max_length = max_length
        self.width = 8 * max_length

    @classmethod
    def for_keys(cls, keys: Sequence[bytes | str]) -> "StringKeySpace":
        """Build a key space sized for the longest key in ``keys``."""
        if not keys:
            raise ValueError("cannot infer a key space from an empty key set")
        max_length = max(len(cls._as_bytes(key)) for key in keys)
        return cls(max_length)

    @staticmethod
    def _as_bytes(key: bytes | str) -> bytes:
        if isinstance(key, str):
            return key.encode("utf-8")
        return bytes(key)

    def encode(self, key: bytes | str | int) -> int:
        if isinstance(key, int):
            # Already in the padded-integer view (the scalar-loop contract
            # of ByteQueryBatch.pairs); just bounds-check it.
            return self.validate(key)
        raw = self._as_bytes(key)
        if len(raw) > self.max_length:
            raise ValueError(
                f"key of length {len(raw)} exceeds maximum {self.max_length}"
            )
        padded = raw.ljust(self.max_length, b"\x00")
        return int.from_bytes(padded, "big")

    def decode(self, value: int) -> bytes:
        self.validate(value)
        raw = value.to_bytes(self.max_length, "big")
        return raw.rstrip(b"\x00")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StringKeySpace(max_length={self.max_length})"
