"""Common interface for approximate membership query structures."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable


class AMQ(ABC):
    """An approximate set-membership structure over non-negative integer items.

    Implementations may report false positives but never false negatives for
    items that were added.
    """

    @abstractmethod
    def add(self, item: int) -> None:
        """Insert ``item`` into the structure."""

    @abstractmethod
    def contains(self, item: int) -> bool:
        """Return True if ``item`` may be present (no false negatives)."""

    def add_many(self, items: Iterable[int]) -> None:
        """Insert every item in ``items``."""
        for item in items:
            self.add(item)

    def __contains__(self, item: int) -> bool:
        return self.contains(item)

    @abstractmethod
    def size_in_bits(self) -> int:
        """Return the memory footprint of the payload in bits."""

    @abstractmethod
    def theoretical_fpr(self) -> float:
        """Return the analytic single-item false positive probability."""
