"""Counting Bloom filter.

Section 4.1 of the paper notes that replacing Proteus' Bloom filter with a
counting Bloom filter would let it answer range-count queries and support
deletions.  We provide a standard 4-bit-counter-equivalent implementation
(counters are stored as uint8 for simplicity; the reported size assumes the
configured counter width).
"""

from __future__ import annotations

import numpy as np

from repro.amq.bloom import bloom_fpr, bloom_hash_count
from repro.amq.hashing import hash_pair
from repro.amq.interface import AMQ


class CountingBloomFilter(AMQ):
    """A Bloom filter with per-slot counters supporting deletion and counts."""

    def __init__(
        self,
        num_counters: int,
        num_items: int,
        counter_bits: int = 4,
        seed: int = 0,
    ):
        if num_counters <= 0:
            raise ValueError("a counting Bloom filter needs a positive counter count")
        if counter_bits <= 0 or counter_bits > 8:
            raise ValueError("counter width must be between 1 and 8 bits")
        self.num_counters = int(num_counters)
        self.counter_bits = counter_bits
        self.max_count = (1 << counter_bits) - 1
        self.expected_items = max(0, int(num_items))
        self.num_hashes = bloom_hash_count(self.num_counters, max(1, self.expected_items))
        self.seed = seed
        self._counters = np.zeros(self.num_counters, dtype=np.uint8)
        self._inserted = 0

    def _positions(self, item: int) -> list[int]:
        h1, h2 = hash_pair(item, self.seed)
        m = self.num_counters
        return [(h1 + i * h2) % m for i in range(self.num_hashes)]

    def add(self, item: int) -> None:
        for pos in self._positions(item):
            if self._counters[pos] < self.max_count:
                self._counters[pos] += 1
        self._inserted += 1

    def remove(self, item: int) -> None:
        """Remove one occurrence of ``item``.

        Removing an item that was never added corrupts the filter, exactly as
        with any counting Bloom filter; callers are responsible for only
        deleting previously inserted items.
        """
        positions = self._positions(item)
        if any(self._counters[pos] == 0 for pos in positions):
            raise KeyError("attempt to remove an item that is definitely absent")
        for pos in positions:
            if self._counters[pos] < self.max_count:
                self._counters[pos] -= 1
        self._inserted = max(0, self._inserted - 1)

    def contains(self, item: int) -> bool:
        return all(self._counters[pos] > 0 for pos in self._positions(item))

    def count(self, item: int) -> int:
        """Return an upper bound on the number of times ``item`` was added."""
        return int(min(self._counters[pos] for pos in self._positions(item)))

    def size_in_bits(self) -> int:
        return self.num_counters * self.counter_bits

    def theoretical_fpr(self) -> float:
        return bloom_fpr(
            self.num_counters,
            max(self.expected_items, self._inserted, 1),
            num_hashes=self.num_hashes,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CountingBloomFilter(counters={self.num_counters}, "
            f"hashes={self.num_hashes}, items={self._inserted})"
        )
