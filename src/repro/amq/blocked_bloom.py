"""Blocked Bloom filter (cache-line blocked), used in ablation benchmarks.

The paper's protean filters are AMQ-agnostic; this variant trades a slightly
higher FPR for probe locality (all probes of an item land in one block).  It
is exercised by the ablation benchmark to demonstrate the pluggability of the
AMQ layer.
"""

from __future__ import annotations

import math

from repro.amq.bitarray import BitArray
from repro.amq.bloom import MAX_HASH_FUNCTIONS, bloom_fpr
from repro.amq.hashing import hash_pair
from repro.amq.interface import AMQ

#: Block size mirroring a 512-bit cache line.
DEFAULT_BLOCK_BITS = 512


class BlockedBloomFilter(AMQ):
    """A Bloom filter whose probes for one item are confined to a single block."""

    def __init__(
        self,
        num_bits: int,
        num_items: int,
        block_bits: int = DEFAULT_BLOCK_BITS,
        seed: int = 0,
    ):
        if num_bits <= 0:
            raise ValueError("a blocked Bloom filter needs a positive number of bits")
        if block_bits <= 0:
            raise ValueError("block size must be positive")
        self.block_bits = block_bits
        self.num_blocks = max(1, math.ceil(num_bits / block_bits))
        self.num_bits = self.num_blocks * block_bits
        self.expected_items = max(0, int(num_items))
        bits_per_item = self.num_bits / max(1, self.expected_items)
        self.num_hashes = max(
            1, min(MAX_HASH_FUNCTIONS, math.ceil(bits_per_item * math.log(2)))
        )
        self.seed = seed
        self.bits = BitArray(self.num_bits)
        self._inserted = 0

    def _positions(self, item: int) -> list[int]:
        h1, h2 = hash_pair(item, self.seed)
        block = (h1 % self.num_blocks) * self.block_bits
        return [block + ((h1 >> 32) + i * h2) % self.block_bits for i in range(self.num_hashes)]

    def add(self, item: int) -> None:
        self.bits.set_many(self._positions(item))
        self._inserted += 1

    def contains(self, item: int) -> bool:
        return all(self.bits.get(pos) for pos in self._positions(item))

    def size_in_bits(self) -> int:
        return self.bits.size_in_bits()

    def theoretical_fpr(self) -> float:
        # The blocked variant's FPR is slightly above the standard formula;
        # the standard formula at the filter's fixed hash count is still the
        # customary estimate.
        items = max(self.expected_items, self._inserted, 1)
        return bloom_fpr(self.num_bits, items, num_hashes=self.num_hashes)
