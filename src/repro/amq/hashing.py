"""64-bit hashing substrate for the AMQ structures.

The paper uses MurmurHash3 for integer keys and CLHASH for string keys
(Section 4.3, footnote 2; Section 7.1).  Neither exact implementation matters
for filter behaviour — any well-mixed 64-bit hash yields the same Bloom
filter FPR — so we use the MurmurHash3/splitmix64 finaliser for word-sized
integers and an FNV-1a-style rolling hash (with the same finaliser) for
arbitrary-precision integers and byte strings.  This substitution is recorded
in DESIGN.md.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1

#: Multipliers from the MurmurHash3 / splitmix64 finalisers.
_MIX_MULT_1 = 0xFF51AFD7ED558CCD
_MIX_MULT_2 = 0xC4CEB9FE1A85EC53
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def mix64(value: int) -> int:
    """Finalise a 64-bit value with the MurmurHash3 ``fmix64`` routine."""
    value &= _MASK64
    value ^= value >> 33
    value = (value * _MIX_MULT_1) & _MASK64
    value ^= value >> 33
    value = (value * _MIX_MULT_2) & _MASK64
    value ^= value >> 33
    return value


def hash_bytes_64(data: bytes, seed: int = 0) -> int:
    """Hash a byte string to 64 bits (FNV-1a accumulation + fmix64 finaliser)."""
    acc = (_FNV_OFFSET ^ mix64(seed)) & _MASK64
    for chunk_start in range(0, len(data), 8):
        chunk = data[chunk_start : chunk_start + 8]
        acc ^= int.from_bytes(chunk, "little")
        acc = (acc * _FNV_PRIME) & _MASK64
    return mix64(acc ^ len(data))


def hash_int_64(value: int, seed: int = 0) -> int:
    """Hash an arbitrary-precision non-negative integer to 64 bits.

    Word-sized values take the fast path through :func:`mix64`; wider values
    (padded string keys can be thousands of bits) are hashed bytewise.
    """
    if value < 0:
        raise ValueError("hash_int_64 expects a non-negative integer")
    if value <= _MASK64:
        return mix64(value ^ mix64(seed))
    num_bytes = (value.bit_length() + 7) // 8
    return hash_bytes_64(value.to_bytes(num_bytes, "little"), seed)


def hash_bytes_pair(data: bytes, seed: int = 0) -> tuple[int, int]:
    """Double-hashing pair over a byte string (see :func:`hash_pair`).

    The byte-mode Bloom paths hash canonical prefix *bytes* rather than
    integer prefix values; this is the scalar twin of the row-parallel
    :func:`repro.keys.bytestr.hash_rows` pair derivation.
    """
    h1 = hash_bytes_64(data, seed)
    h2 = hash_bytes_64(data, seed ^ 0x9E3779B97F4A7C15) | 1
    return h1, h2 & _MASK64


def hash_pair(value: int, seed: int = 0) -> tuple[int, int]:
    """Return two independent 64-bit hashes of ``value`` for double hashing.

    Bloom filter probe positions are derived as ``h1 + i * h2`` (Kirsch and
    Mitzenmacher), which preserves the asymptotic FPR of ``k`` independent
    hash functions while only computing two.
    """
    h1 = hash_int_64(value, seed)
    h2 = hash_int_64(value, seed ^ 0x9E3779B97F4A7C15) | 1
    return h1, h2 & _MASK64


# --------------------------------------------------------------------- #
# Vectorised batch versions (word-sized values, numpy uint64)           #
# --------------------------------------------------------------------- #

import numpy as np  # noqa: E402  (kept below the scalar substrate it mirrors)

_GOLDEN = 0x9E3779B97F4A7C15


def mix64_many(values: np.ndarray) -> np.ndarray:
    """Vectorised :func:`mix64` over a ``uint64`` array.

    Bit-exact with the scalar version: uint64 multiplication wraps modulo
    2**64, which is precisely the ``& _MASK64`` of the scalar code.
    """
    v = values.astype(np.uint64, copy=True)
    v ^= v >> np.uint64(33)
    v *= np.uint64(_MIX_MULT_1)
    v ^= v >> np.uint64(33)
    v *= np.uint64(_MIX_MULT_2)
    v ^= v >> np.uint64(33)
    return v


def premixed_pair_seeds(seed: int = 0) -> tuple[int, int]:
    """Return the two per-filter seed constants of :func:`hash_pair_many`.

    ``(mix64(seed), mix64(seed ^ GOLDEN))`` — precomputing them once lets
    the compiled kernels in :mod:`repro.kernels` derive both hashes of a
    word-sized value with two ``fmix64`` calls and no Python arithmetic.
    """
    return mix64(seed), mix64(seed ^ _GOLDEN)


def hash_pair_many(values: np.ndarray, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`hash_pair` over non-negative word-sized integers.

    Callers must guarantee ``0 <= value <= 2**64 - 1`` per element (prefix
    integers in a <= 64-bit key space always qualify); wider values must go
    through the scalar :func:`hash_pair`.
    """
    v = np.asarray(values).astype(np.uint64)
    h1 = mix64_many(v ^ np.uint64(mix64(seed)))
    h2 = mix64_many(v ^ np.uint64(mix64(seed ^ _GOLDEN))) | np.uint64(1)
    return h1, h2
