"""64-bit hashing substrate for the AMQ structures.

The paper uses MurmurHash3 for integer keys and CLHASH for string keys
(Section 4.3, footnote 2; Section 7.1).  Neither exact implementation matters
for filter behaviour — any well-mixed 64-bit hash yields the same Bloom
filter FPR — so we use the MurmurHash3/splitmix64 finaliser for word-sized
integers and an FNV-1a-style rolling hash (with the same finaliser) for
arbitrary-precision integers and byte strings.  This substitution is recorded
in DESIGN.md.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1

#: Multipliers from the MurmurHash3 / splitmix64 finalisers.
_MIX_MULT_1 = 0xFF51AFD7ED558CCD
_MIX_MULT_2 = 0xC4CEB9FE1A85EC53
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def mix64(value: int) -> int:
    """Finalise a 64-bit value with the MurmurHash3 ``fmix64`` routine."""
    value &= _MASK64
    value ^= value >> 33
    value = (value * _MIX_MULT_1) & _MASK64
    value ^= value >> 33
    value = (value * _MIX_MULT_2) & _MASK64
    value ^= value >> 33
    return value


def hash_bytes_64(data: bytes, seed: int = 0) -> int:
    """Hash a byte string to 64 bits (FNV-1a accumulation + fmix64 finaliser)."""
    acc = (_FNV_OFFSET ^ mix64(seed)) & _MASK64
    for chunk_start in range(0, len(data), 8):
        chunk = data[chunk_start : chunk_start + 8]
        acc ^= int.from_bytes(chunk, "little")
        acc = (acc * _FNV_PRIME) & _MASK64
    return mix64(acc ^ len(data))


def hash_int_64(value: int, seed: int = 0) -> int:
    """Hash an arbitrary-precision non-negative integer to 64 bits.

    Word-sized values take the fast path through :func:`mix64`; wider values
    (padded string keys can be thousands of bits) are hashed bytewise.
    """
    if value < 0:
        raise ValueError("hash_int_64 expects a non-negative integer")
    if value <= _MASK64:
        return mix64(value ^ mix64(seed))
    num_bytes = (value.bit_length() + 7) // 8
    return hash_bytes_64(value.to_bytes(num_bytes, "little"), seed)


def hash_pair(value: int, seed: int = 0) -> tuple[int, int]:
    """Return two independent 64-bit hashes of ``value`` for double hashing.

    Bloom filter probe positions are derived as ``h1 + i * h2`` (Kirsch and
    Mitzenmacher), which preserves the asymptotic FPR of ``k`` independent
    hash functions while only computing two.
    """
    h1 = hash_int_64(value, seed)
    h2 = hash_int_64(value, seed ^ 0x9E3779B97F4A7C15) | 1
    return h1, h2 & _MASK64
