"""Approximate membership query (AMQ) structures.

The paper's protean range filters are AMQ-agnostic (Section 4.3); this
package provides the standard Bloom filter used by the reference
implementation plus a counting Bloom filter (needed to support range counts,
as noted in Section 4.1) and a blocked Bloom filter used in ablations.

All AMQs here share the :class:`~repro.amq.interface.AMQ` interface and hash
arbitrary-precision integer items (key prefixes) through the functions in
:mod:`repro.amq.hashing`.
"""

from repro.amq.bitarray import BitArray
from repro.amq.blocked_bloom import BlockedBloomFilter
from repro.amq.bloom import BloomFilter, bloom_fpr, bloom_hash_count
from repro.amq.counting_bloom import CountingBloomFilter
from repro.amq.hashing import hash_bytes_64, hash_int_64, hash_pair, mix64
from repro.amq.interface import AMQ

__all__ = [
    "AMQ",
    "BitArray",
    "BloomFilter",
    "BlockedBloomFilter",
    "CountingBloomFilter",
    "bloom_fpr",
    "bloom_hash_count",
    "hash_bytes_64",
    "hash_int_64",
    "hash_pair",
    "mix64",
]
