"""Standard Bloom filter.

This is the AMQ the reference Proteus implementation uses (Section 4.3).
The hash function count follows the paper's rule ``ceil(m/n * ln 2)`` capped
at :data:`MAX_HASH_FUNCTIONS` (32), and the analytic false positive
probability follows Equation 6:

    p = (1 - e^{-ln 2}) ^ ceil(m/n * ln 2)
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.amq.bitarray import BitArray
from repro.amq.hashing import hash_pair
from repro.amq.interface import AMQ

#: The paper caps the hash function count at 32 (Section 4.3, footnote 2).
MAX_HASH_FUNCTIONS = 32


def bloom_hash_count(num_bits: int, num_items: int) -> int:
    """Return the number of hash functions for ``num_bits`` bits and ``num_items`` items."""
    if num_items <= 0 or num_bits <= 0:
        return 1
    optimal = math.ceil(num_bits / num_items * math.log(2))
    return max(1, min(MAX_HASH_FUNCTIONS, optimal))


def bloom_fpr(num_bits: int, num_items: int) -> float:
    """Return the analytic Bloom filter FPR for the paper's configuration (Eq. 6)."""
    if num_items <= 0:
        return 0.0
    if num_bits <= 0:
        return 1.0
    num_hashes = bloom_hash_count(num_bits, num_items)
    return (1.0 - math.exp(-math.log(2))) ** num_hashes


class BloomFilter(AMQ):
    """A standard Bloom filter over non-negative integer items.

    Probe positions are derived with double hashing, which keeps per-probe
    cost low even when the optimal hash count is large (short prefixes can
    have very high bits-per-item ratios).
    """

    def __init__(self, num_bits: int, num_items: int, seed: int = 0):
        if num_bits <= 0:
            raise ValueError("a Bloom filter needs a positive number of bits")
        self.num_bits = int(num_bits)
        self.expected_items = max(0, int(num_items))
        self.num_hashes = bloom_hash_count(self.num_bits, max(1, self.expected_items))
        self.seed = seed
        self.bits = BitArray(self.num_bits)
        self._inserted = 0

    @classmethod
    def from_items(
        cls, items: Sequence[int], num_bits: int, seed: int = 0
    ) -> "BloomFilter":
        """Build a filter sized at ``num_bits`` holding every item in ``items``."""
        bloom = cls(num_bits, len(items), seed=seed)
        bloom.add_many(items)
        return bloom

    def _positions(self, item: int) -> list[int]:
        h1, h2 = hash_pair(item, self.seed)
        m = self.num_bits
        return [(h1 + i * h2) % m for i in range(self.num_hashes)]

    def add(self, item: int) -> None:
        self.bits.set_many(self._positions(item))
        self._inserted += 1

    def add_many(self, items: Iterable[int]) -> None:
        positions: list[int] = []
        count = 0
        for item in items:
            positions.extend(self._positions(item))
            count += 1
        self.bits.set_many(positions)
        self._inserted += count

    def contains(self, item: int) -> bool:
        h1, h2 = hash_pair(item, self.seed)
        m = self.num_bits
        bits = self.bits
        for i in range(self.num_hashes):
            if not bits.get((h1 + i * h2) % m):
                return False
        return True

    def size_in_bits(self) -> int:
        return self.bits.size_in_bits()

    def theoretical_fpr(self) -> float:
        return bloom_fpr(self.num_bits, max(self.expected_items, self._inserted, 1))

    @property
    def inserted_items(self) -> int:
        """Number of items inserted so far."""
        return self._inserted

    def fill_ratio(self) -> float:
        """Fraction of bits currently set (useful for diagnostics and tests)."""
        return self.bits.count() / self.num_bits if self.num_bits else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BloomFilter(bits={self.num_bits}, hashes={self.num_hashes}, "
            f"items={self._inserted})"
        )
