"""Standard Bloom filter.

This is the AMQ the reference Proteus implementation uses (Section 4.3).
The hash function count follows the paper's rule ``ceil(m/n * ln 2)`` capped
at :data:`MAX_HASH_FUNCTIONS` (32).  The analytic false positive probability
uses the general load formula

    p = (1 - e^{-kn/m}) ^ k

rather than Equation 6's ``0.5^k`` shorthand: the two coincide only when
``k`` equals the uncapped optimum ``m/n * ln 2``, and the CPFPR model
routinely evaluates short, over-provisioned prefix sets where ``k`` is
capped at 32 and the real per-probe FPR is far below ``0.5^32``.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro import kernels
from repro.amq.bitarray import BitArray
from repro.amq.hashing import hash_bytes_pair, hash_pair, premixed_pair_seeds
from repro.amq.interface import AMQ

#: The paper caps the hash function count at 32 (Section 4.3, footnote 2).
MAX_HASH_FUNCTIONS = 32


def bloom_hash_count(num_bits: int, num_items: int) -> int:
    """Return the number of hash functions for ``num_bits`` bits and ``num_items`` items."""
    if num_items <= 0 or num_bits <= 0:
        return 1
    optimal = math.ceil(num_bits / num_items * math.log(2))
    return max(1, min(MAX_HASH_FUNCTIONS, optimal))


def bloom_fpr(num_bits: int, num_items: int, num_hashes: int | None = None) -> float:
    """Return the analytic FPR ``(1 - e^{-kn/m})^k`` for the actual load.

    ``num_hashes`` defaults to the paper's rule (:func:`bloom_hash_count`).
    Equation 6's ``0.5^k`` form is recovered when ``k == m/n * ln 2`` exactly;
    for any other load — notably the over-provisioned short-prefix filters
    the CPFPR model enumerates — this general form is the correct one.
    """
    if num_items <= 0:
        return 0.0
    if num_bits <= 0:
        return 1.0
    k = num_hashes if num_hashes is not None else bloom_hash_count(num_bits, num_items)
    if k <= 0:
        raise ValueError("hash function count must be positive")
    return (1.0 - math.exp(-k * num_items / num_bits)) ** k


class BloomFilter(AMQ):
    """A standard Bloom filter over non-negative integer items.

    Probe positions are derived with double hashing, which keeps per-probe
    cost low even when the optimal hash count is large (short prefixes can
    have very high bits-per-item ratios).
    """

    def __init__(self, num_bits: int, num_items: int, seed: int = 0):
        if num_bits <= 0:
            raise ValueError("a Bloom filter needs a positive number of bits")
        self.num_bits = int(num_bits)
        self.expected_items = max(0, int(num_items))
        self.num_hashes = bloom_hash_count(self.num_bits, max(1, self.expected_items))
        self.seed = seed
        self._s1, self._s2 = premixed_pair_seeds(seed)
        self.bits = BitArray(self.num_bits)
        self._inserted = 0

    @classmethod
    def from_items(
        cls, items: Sequence[int], num_bits: int, seed: int = 0
    ) -> "BloomFilter":
        """Build a filter sized at ``num_bits`` holding every item in ``items``."""
        bloom = cls(num_bits, len(items), seed=seed)
        bloom.add_many(items)
        return bloom

    def _positions(self, item: int) -> Iterator[int]:
        # Enhanced double hashing (Dillinger & Manolios), probe i at
        # h1 + i*h2 + (i^3 - i)/6, generated incrementally: the cubic term
        # removes the measurable FPR penalty plain double hashing pays at
        # small m, keeping empirical FPRs on the analytic curve the CPFPR
        # model computes.  A generator so negative lookups stop hashing at
        # their first unset bit.
        h1, h2 = hash_pair(item, self.seed)
        m = self.num_bits
        x, y = h1 % m, h2 % m
        yield x
        for i in range(1, self.num_hashes):
            x = (x + y) % m
            y = (y + i) % m
            yield x

    def add(self, item: int) -> None:
        self.bits.set_many(self._positions(item))
        self._inserted += 1

    @staticmethod
    def _as_word_array(items: Iterable[int]) -> tuple[np.ndarray | None, list | None]:
        """Try to view ``items`` as a non-negative int64 array.

        Returns ``(array, None)`` when the bulk path applies, or ``(None,
        materialised_items)`` when some item is negative, too wide for a
        word, or not an integer — those fall back to the scalar hash, which
        also owns the error reporting for invalid items.
        """
        if isinstance(items, np.ndarray) and items.dtype.kind in "iu":
            arr = items.astype(np.int64, copy=False)
            concrete: list | None = None
        else:
            concrete = list(items)
            # Inspect the natural dtype first: coercing straight to int64
            # would silently truncate floats that the scalar path rejects.
            probe = np.asarray(concrete)
            if probe.dtype.kind not in "iu":
                return None, concrete  # floats, big ints (object), etc.
            arr = probe.astype(np.int64, copy=False)
        if arr.size and arr.min() < 0:
            return None, concrete if concrete is not None else list(items)
        return arr, None

    def _positions_many(self, items: np.ndarray) -> np.ndarray:
        """Return the ``(num_hashes, len(items))`` probe-position matrix.

        Same enhanced-double-hashing recurrence as :meth:`_positions`,
        served by the :mod:`repro.kernels` numpy reference — bit-exact with
        the scalar path (all intermediates stay below 2**64 because
        x, y < m).
        """
        return kernels.bloom_positions(
            items, self._s1, self._s2, self.num_bits, self.num_hashes,
            backend="numpy",
        )

    def _hash_pairs_scalar(self, items: list) -> tuple[np.ndarray, np.ndarray]:
        """Hash arbitrary items (big ints, any width) via the scalar pair."""
        h1 = np.empty(len(items), dtype=np.uint64)
        h2 = np.empty(len(items), dtype=np.uint64)
        for i, item in enumerate(items):
            a, b = hash_pair(item, self.seed)
            h1[i] = a
            h2[i] = b
        return h1, h2

    def _positions_from_hashes(self, h1: np.ndarray, h2: np.ndarray) -> np.ndarray:
        """Probe-position matrix from precomputed hash pairs (fallback path).

        The hashing of non-word items is irreducibly scalar, but the probe
        recurrence is not: this runs it column-parallel so the fallback
        costs one batched pass instead of ``k`` Python iterations per item.
        """
        m = np.uint64(self.num_bits)
        x, y = h1 % m, h2 % m
        out = np.empty((self.num_hashes, h1.shape[0]), dtype=np.uint64)
        out[0] = x
        for i in range(1, self.num_hashes):
            x = (x + y) % m
            y = (y + np.uint64(i)) % m
            out[i] = x
        return out

    def add_many(self, items: Iterable[int]) -> None:
        arr, fallback = self._as_word_array(items)
        if arr is not None:
            if arr.size:
                kernels.bloom_add(
                    self.bits.mutable_words(), self.num_bits, arr,
                    self._s1, self._s2, self.num_hashes,
                )
            self._inserted += int(arr.size)
            return
        h1, h2 = self._hash_pairs_scalar(fallback)
        if h1.size:
            self.bits.set_many(self._positions_from_hashes(h1, h2))
        self._inserted += len(fallback)

    def contains(self, item: int) -> bool:
        bits = self.bits
        return all(bits.get(position) for position in self._positions(item))

    # ------------------------------------------------------------------ #
    # Byte-string items (the ByteKeySet canonical-prefix-bytes domain)   #
    # ------------------------------------------------------------------ #

    def _positions_bytes(self, data: bytes) -> Iterator[int]:
        """Scalar probe positions for a byte item (same recurrence as ints)."""
        h1, h2 = hash_bytes_pair(data, self.seed)
        m = self.num_bits
        x, y = h1 % m, h2 % m
        yield x
        for i in range(1, self.num_hashes):
            x = (x + y) % m
            y = (y + i) % m
            yield x

    def _hash_rows_pair(self, mat: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Row-parallel :func:`repro.amq.hashing.hash_bytes_pair`."""
        # Imported here: repro.keys.bytestr pulls in the hashing substrate,
        # which would otherwise close an import cycle through this module.
        from repro.keys.bytestr import hash_rows

        h1 = hash_rows(mat, self.seed)
        h2 = hash_rows(mat, self.seed ^ 0x9E3779B97F4A7C15) | np.uint64(1)
        return h1, h2

    def add_bytes(self, data: bytes) -> None:
        """Insert one byte-string item."""
        self.bits.set_many(self._positions_bytes(data))
        self._inserted += 1

    def contains_bytes(self, data: bytes) -> bool:
        """Scalar membership probe for a byte-string item."""
        bits = self.bits
        return all(bits.get(position) for position in self._positions_bytes(data))

    def add_bytes_rows(self, mat: np.ndarray) -> None:
        """Insert every row of a ``(n, nb)`` uint8 item matrix in bulk.

        Bit-exact with ``add_bytes(bytes(row))`` per row: the row hash is
        the vectorised :func:`~repro.amq.hashing.hash_bytes_64` and the
        probe recurrence runs column-parallel.
        """
        if mat.shape[0]:
            h1, h2 = self._hash_rows_pair(mat)
            self.bits.set_many(self._positions_from_hashes(h1, h2))
        self._inserted += int(mat.shape[0])

    def contains_bytes_rows(self, mat: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`contains_bytes`: one boolean per row."""
        if mat.shape[0] == 0:
            return np.zeros(0, dtype=bool)
        h1, h2 = self._hash_rows_pair(mat)
        positions = self._positions_from_hashes(h1, h2)
        probed = self.bits.get_many(positions.ravel())
        return probed.reshape(positions.shape).all(axis=0)

    def contains_many(self, items: Iterable[int]) -> np.ndarray:
        """Vectorised :meth:`contains`: one boolean per item.

        Word-sized items are hashed and probed by the kernel backend in
        bulk; anything else (big string-key prefixes, for instance) hashes
        scalar but still probes in one batched pass.
        """
        arr, fallback = self._as_word_array(items)
        if arr is None:
            if not fallback:
                return np.zeros(0, dtype=bool)
            h1, h2 = self._hash_pairs_scalar(fallback)
            positions = self._positions_from_hashes(h1, h2)
            probed = self.bits.get_many(positions.ravel())
            return probed.reshape(positions.shape).all(axis=0)
        if arr.size == 0:
            return np.zeros(0, dtype=bool)
        return kernels.bloom_contains(
            self.bits.words(), self.num_bits, arr,
            self._s1, self._s2, self.num_hashes,
        )

    def size_in_bits(self) -> int:
        return self.bits.size_in_bits()

    def theoretical_fpr(self) -> float:
        return bloom_fpr(
            self.num_bits,
            max(self.expected_items, self._inserted, 1),
            num_hashes=self.num_hashes,
        )

    @property
    def inserted_items(self) -> int:
        """Number of items inserted so far."""
        return self._inserted

    def fill_ratio(self) -> float:
        """Fraction of bits currently set (useful for diagnostics and tests)."""
        return self.bits.count() / self.num_bits if self.num_bits else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BloomFilter(bits={self.num_bits}, hashes={self.num_hashes}, "
            f"items={self._inserted})"
        )
