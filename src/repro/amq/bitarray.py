"""A packed bit array backed by a numpy ``uint8`` buffer.

This is the storage substrate shared by the Bloom filter variants and the
succinct trie encodings.  Bits are addressed MSB-first within a byte so that
the serialised form is deterministic and easy to reason about in tests.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

_BIT_MASKS = np.array([1 << (7 - i) for i in range(8)], dtype=np.uint8)


class BitArray:
    """A fixed-size array of bits with O(1) get/set and vectorised batch ops."""

    __slots__ = ("num_bits", "_buffer")

    def __init__(self, num_bits: int):
        if num_bits < 0:
            raise ValueError("number of bits must be non-negative")
        self.num_bits = num_bits
        self._buffer = np.zeros((num_bits + 7) // 8, dtype=np.uint8)

    def __len__(self) -> int:
        return self.num_bits

    def _check_index(self, index: int) -> int:
        if not 0 <= index < self.num_bits:
            raise IndexError(f"bit index {index} out of range [0, {self.num_bits})")
        return index

    def set(self, index: int) -> None:
        """Set bit ``index`` to 1."""
        self._check_index(index)
        self._buffer[index >> 3] |= _BIT_MASKS[index & 7]

    def clear(self, index: int) -> None:
        """Set bit ``index`` to 0."""
        self._check_index(index)
        self._buffer[index >> 3] &= np.uint8(~_BIT_MASKS[index & 7] & 0xFF)

    def get(self, index: int) -> bool:
        """Return whether bit ``index`` is set."""
        self._check_index(index)
        return bool(self._buffer[index >> 3] & _BIT_MASKS[index & 7])

    def __getitem__(self, index: int) -> bool:
        return self.get(index)

    def __setitem__(self, index: int, value: bool) -> None:
        if value:
            self.set(index)
        else:
            self.clear(index)

    def set_many(self, indices: Iterable[int]) -> None:
        """Set every bit in ``indices`` (vectorised; accepts numpy arrays)."""
        if isinstance(indices, np.ndarray):
            idx = indices.astype(np.int64, copy=False).ravel()
        else:
            idx = np.asarray(list(indices), dtype=np.int64)
        if idx.size == 0:
            return
        if idx.min() < 0 or idx.max() >= self.num_bits:
            raise IndexError("bit index out of range in set_many")
        np.bitwise_or.at(self._buffer, idx >> 3, _BIT_MASKS[idx & 7])

    def get_many(self, indices: Iterable[int]) -> np.ndarray:
        """Return a boolean array with the value of every bit in ``indices``."""
        if isinstance(indices, np.ndarray):
            idx = indices.astype(np.int64, copy=False).ravel()
        else:
            idx = np.asarray(list(indices), dtype=np.int64)
        if idx.size == 0:
            return np.zeros(0, dtype=bool)
        if idx.min() < 0 or idx.max() >= self.num_bits:
            raise IndexError("bit index out of range in get_many")
        return (self._buffer[idx >> 3] & _BIT_MASKS[idx & 7]) != 0

    def count(self) -> int:
        """Return the number of set bits."""
        return int(np.unpackbits(self._buffer)[: self.num_bits].sum())

    def __iter__(self) -> Iterator[bool]:
        bits = np.unpackbits(self._buffer)[: self.num_bits]
        return iter(bool(b) for b in bits)

    def to_bytes(self) -> bytes:
        """Serialise to a bytes object (MSB-first per byte)."""
        return self._buffer.tobytes()

    @classmethod
    def from_bits(cls, bits: Iterable[bool]) -> "BitArray":
        """Build a bit array from an iterable of booleans."""
        bit_list = [bool(b) for b in bits]
        array = cls(len(bit_list))
        array.set_many(i for i, b in enumerate(bit_list) if b)
        return array

    @classmethod
    def from_bytes(cls, data: bytes, num_bits: int) -> "BitArray":
        """Deserialise a bit array previously produced by :meth:`to_bytes`."""
        array = cls(num_bits)
        raw = np.frombuffer(data, dtype=np.uint8)
        if raw.size != array._buffer.size:
            raise ValueError("byte payload does not match the requested bit count")
        array._buffer = raw.copy()
        return array

    def size_in_bits(self) -> int:
        """Memory footprint of the payload in bits (excludes Python overhead)."""
        return int(self._buffer.size) * 8

    def words(self) -> np.ndarray:
        """Expose the underlying byte buffer (read-only view) for rank/select."""
        view = self._buffer.view()
        view.flags.writeable = False
        return view

    def mutable_words(self) -> np.ndarray:
        """Expose the byte buffer *writable*, for in-place kernel inserts.

        Callers (the :mod:`repro.kernels` Bloom insert path) must only set
        bits below :attr:`num_bits`; the trailing pad bits of the last
        byte stay clear so :meth:`to_bytes` stays deterministic.
        """
        return self._buffer
