"""ByteKeySet / ByteQueryBatch: the variable-length byte-string key path.

Four layers of guarantees are pinned here:

* **representation** — ByteKeySet canonicalisation (utf-8, trailing-null
  strip, sort + dedupe), the arrow-style flat layout, zero-copy slicing,
  and agreement between the padded ``S``-dtype order and the padded
  big-endian integer order the scalar filters use;
* **coercion** — ``coerce_keys`` / ``coerce_query_batch`` dispatch byte
  inputs to the byte types and integer inputs to the encoded types, with
  the same validation errors either way;
* **filters** — every registry family built on a byte-string workload has
  zero false negatives against the exact oracle (the acceptance criterion
  of the KeySet redesign);
* **LSM** — the static and online trees run variable-length byte keys end
  to end: fence pruning, per-SST filters, merge parity, and newest-wins
  lookup semantics.
"""

import random

import numpy as np
import pytest

from repro.api import FilterSpec, Workload, build_filter
from repro.filters.base import TrieOracle
from repro.workloads.batch import (
    EncodedKeySet,
    QueryBatch,
    coerce_keys,
    coerce_query_batch,
)
from repro.workloads.bytekeys import ByteKeySet, ByteQueryBatch, byte_probe_matrix


def _random_words(rng, count, max_len=12):
    alphabet = b"abcdefgh"
    words = set()
    while len(words) < count:
        length = rng.randrange(1, max_len + 1)
        words.add(bytes(alphabet[rng.randrange(len(alphabet))] for _ in range(length)))
    return sorted(words)


def _padded_int(key: bytes, max_length: int) -> int:
    return int.from_bytes(key.ljust(max_length, b"\x00"), "big")


class TestByteKeySetRepresentation:
    def test_canonicalisation_sort_dedupe(self):
        ks = ByteKeySet(["abc", b"abc\x00\x00", b"zz", "abc", b"a"])
        assert ks.as_list() == [b"a", b"abc", b"zz"]
        assert ks.max_length == 3 and ks.width == 24
        assert ks.first == b"a" and ks.last == b"zz"
        assert not ks.is_vector and ks.is_bytes

    def test_interior_nulls_survive(self):
        ks = ByteKeySet([b"a\x00b", b"a"])
        assert ks.as_list() == [b"a", b"a\x00b"]
        assert ks.key_at(1) == b"a\x00b"

    def test_max_length_validation(self):
        with pytest.raises(ValueError, match="exceeds maximum"):
            ByteKeySet([b"toolong"], max_length=3)
        with pytest.raises(ValueError, match="must be positive"):
            ByteKeySet([b"a"], max_length=0)

    def test_order_matches_padded_integer_order(self):
        # The load-bearing equivalence: memcmp order of the null-padded
        # S-dtype view == big-endian padded-integer order.
        rng = random.Random(11)
        words = _random_words(rng, 300)
        ks = ByteKeySet(words)
        ints = [_padded_int(key, ks.max_length) for key in ks.as_list()]
        assert ints == sorted(ints)
        assert list(ks.as_ints()) == ints

    def test_flat_buffer_and_offsets(self):
        ks = ByteKeySet([b"bb", b"a", b"ccc"])
        assert ks.buffer.tobytes() == b"abbccc"
        assert ks.offsets.tolist() == [0, 1, 3, 6]
        assert [ks.key_at(i) for i in range(3)] == [b"a", b"bb", b"ccc"]

    def test_slice_is_zero_copy(self):
        rng = random.Random(12)
        ks = ByteKeySet(_random_words(rng, 64))
        sub = ks.slice(10, 30)
        assert len(sub) == 20
        assert sub.as_list() == ks.as_list()[10:30]
        assert np.shares_memory(sub.buffer, ks.buffer)
        assert np.shares_memory(sub.keys, ks.keys)
        with pytest.raises(ValueError, match="outside the key set"):
            ks.slice(5, 100)

    def test_sorted_take_rebuilds_compact_set(self):
        rng = random.Random(13)
        ks = ByteKeySet(_random_words(rng, 100))
        indices = np.array([7, 3, 50, 21], dtype=np.int64)
        sub = ks.sorted_take(indices)
        expected = sorted(ks.as_list()[i] for i in (7, 3, 50, 21))
        assert sub.as_list() == expected
        assert sub.max_length == ks.max_length
        # The rebuilt buffer is compact: exactly the chosen keys' bytes.
        assert sub.buffer.size == sum(len(key) for key in expected)

    def test_prefixes_match_brute_force(self):
        rng = random.Random(14)
        words = _random_words(rng, 120, max_len=6)
        ks = ByteKeySet(words)
        for bits in (0, 3, 8, 13, 24, ks.width):
            got = {row.tobytes() for row in ks.prefixes(bits)}
            nbytes = (bits + 7) // 8
            drop = 8 * nbytes - bits
            expected = set()
            for key in words:
                value = int.from_bytes(
                    key.ljust(ks.max_length, b"\x00")[:nbytes], "big"
                )
                expected.add(((value >> drop) << drop).to_bytes(nbytes, "big"))
            if bits == 0:
                expected = {b""}
            assert got == expected, bits
        with pytest.raises(ValueError):
            ks.prefixes(ks.width + 1)

    def test_prefix_counts_match_brute_force(self):
        rng = random.Random(15)
        words = _random_words(rng, 80, max_len=4)
        ks = ByteKeySet(words)
        counts = ks.prefix_counts()
        ints = [_padded_int(key, ks.max_length) for key in words]
        for bits in range(ks.width + 1):
            shift = ks.width - bits
            assert counts[bits] == len({value >> shift for value in ints}), bits


class TestCoercion:
    def test_byte_inputs_dispatch_to_byte_types(self):
        ks = coerce_keys([b"pear", "apple", b"fig"], None)
        assert isinstance(ks, ByteKeySet)
        assert ks.as_list() == [b"apple", b"fig", b"pear"]
        batch = coerce_query_batch([(b"a", b"b"), (b"p", b"q")], ks.width)
        assert isinstance(batch, ByteQueryBatch)
        assert not batch.is_vector

    def test_integer_inputs_keep_encoded_types(self):
        ks = coerce_keys([5, 2, 9], 16)
        assert isinstance(ks, EncodedKeySet) and not ks.is_bytes
        batch = coerce_query_batch([(1, 4)], 16)
        assert isinstance(batch, QueryBatch)
        assert not isinstance(batch, ByteQueryBatch)

    def test_keyset_passthrough(self):
        ks = ByteKeySet([b"x", b"yy"])
        assert coerce_keys(ks, ks.width) is ks

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            coerce_keys([b"overlong-key"], 16)  # 12 bytes into a 2-byte space

    def test_probe_matrix_dispatch(self):
        ks = ByteKeySet([b"ab", b"c"])
        mat = byte_probe_matrix(ks, ks.width)
        assert mat.shape == (2, 2) and mat.tobytes() == b"ab" + b"c\x00"
        from_list = byte_probe_matrix([b"c", "ab"], ks.width)
        assert from_list.tobytes() == b"c\x00" + b"ab"
        assert byte_probe_matrix([1, 2], 16) is None
        with pytest.raises(ValueError, match="exceeds maximum"):
            byte_probe_matrix([b"toolong"], 16)


class TestByteQueryBatch:
    def test_pairs_yield_padded_integers(self):
        batch = ByteQueryBatch([b"a", b"x"], [b"b", b"xy"], max_length=2)
        assert list(batch.pairs()) == [
            (_padded_int(b"a", 2), _padded_int(b"b", 2)),
            (_padded_int(b"x", 2), _padded_int(b"xy", 2)),
        ]
        assert list(batch.byte_pairs()) == [(b"a", b"b"), (b"x", b"xy")]
        assert batch.spans().tolist() == [
            _padded_int(b"b", 2) - _padded_int(b"a", 2) + 1,
            _padded_int(b"xy", 2) - _padded_int(b"x", 2) + 1,
        ]

    def test_points_and_select(self):
        batch = ByteQueryBatch.points([b"q", b"rr", b"s"], max_length=2)
        assert list(batch.byte_pairs()) == [(b"q", b"q"), (b"rr", b"rr"), (b"s", b"s")]
        sub = batch.select(np.array([2, 0]))
        assert isinstance(sub, ByteQueryBatch)
        assert sub.max_length == 2
        assert list(sub.byte_pairs()) == [(b"s", b"s"), (b"q", b"q")]

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="empty query range"):
            ByteQueryBatch([b"z"], [b"a"], max_length=2)
        with pytest.raises(ValueError, match="outside the .*key space"):
            ByteQueryBatch([b"toolong"], [b"z"], max_length=2)


class TestByteWorkloadFilters:
    @pytest.fixture(scope="class")
    def string_workload(self):
        rng = random.Random(21)
        words = _random_words(rng, 600, max_len=10)
        queries = []
        for _ in range(300):
            a = rng.choice(words)
            if rng.random() < 0.4:
                # Keep prefix + b"\xff" inside the 10-byte space.
                prefix = a[: rng.randrange(1, min(len(a), 9) + 1)]
                queries.append((prefix, prefix + b"\xff"))
            else:
                b = rng.choice(words)
                lo, hi = sorted((a, b))
                queries.append((lo, hi))
        workload = Workload(words, queries)
        # Held-out probes: real keys (must hit) + perturbed keys (mostly miss).
        probes = rng.sample(words, 100) + [
            word[:-1] + b"z" for word in rng.sample(words, 100)
        ]
        eval_batch = coerce_query_batch(
            [(probe, probe) for probe in probes], workload.width
        )
        return workload, eval_batch

    def test_workload_attaches_string_space(self, string_workload):
        workload, _ = string_workload
        assert isinstance(workload.keys, ByteKeySet)
        assert isinstance(workload.queries, ByteQueryBatch)
        assert workload.key_space is not None
        assert workload.key_space.width == workload.width

    @pytest.mark.parametrize(
        "family", ["prefix_bloom", "surf", "rosetta", "1pbf", "2pbf", "proteus"]
    )
    def test_zero_false_negatives_every_family(self, family, string_workload):
        workload, eval_batch = string_workload
        filt = build_filter(FilterSpec(family, 14.0), workload.keys, workload)
        oracle = TrieOracle(workload.keys.keys, workload.width)
        for batch in (workload.queries, eval_batch):
            truth = oracle.may_intersect_many(batch)
            answers = filt.may_intersect_many(batch)
            assert not (~answers & truth).any(), family
        # Every key is a batch-positive point probe as raw bytes.
        assert filt.may_contain_many(workload.keys).all(), family


class TestByteLSM:
    def test_build_requires_a_keyset(self):
        from repro.lsm.tree import LSMTree

        with pytest.raises(TypeError, match="KeySet"):
            LSMTree.build([b"a", b"b"])

    def test_static_tree_end_to_end(self):
        from repro.lsm.tree import LSMTree

        rng = random.Random(22)
        words = _random_words(rng, 1200, max_len=9)
        keys = ByteKeySet(words)
        tree = LSMTree.build(keys, sst_keys=128, seed=5)
        assert tree.width == keys.width
        design = coerce_query_batch(
            [
                tuple(sorted((rng.choice(words), rng.choice(words))))
                for _ in range(200)
            ],
            keys.width,
        )
        tree.attach_filters(
            FilterSpec("proteus", 12.0), Workload(keys, design)
        )
        probes = ByteQueryBatch.points(
            rng.sample(words, 150) + [w[:-1] + b"\xff" for w in rng.sample(words, 150)],
            keys.max_length,
        )
        result = tree.probe(probes)
        assert int(result.missed_reads.sum()) == 0
        # Every SST's fences are native byte scalars in padded order.
        for level in tree.levels:
            for sst in level:
                assert isinstance(sst.min_key, bytes)
                assert sst.min_key <= sst.max_key

    def test_online_tree_newest_wins_lookup(self):
        from repro.lsm.online import OnlineLSMTree

        rng = random.Random(23)
        words = _random_words(rng, 400, max_len=8)
        width = 8 * 8
        tree = OnlineLSMTree(
            width,
            spec=FilterSpec("prefix_bloom", 12.0),
            sst_keys=64,
            memtable_capacity=64,
        )
        live = set()
        for _ in range(1500):
            word = rng.choice(words)
            if rng.random() < 0.25:
                tree.delete(word)
                live.discard(word)
            else:
                tree.put(word)
                live.add(word)
        tree.flush()
        answers = tree.lookup_many(words)
        assert answers.tolist() == [word in live for word in words]
        # Probe accounting over the snapshot: filters never drop a match.
        probes = ByteQueryBatch.points(words, 8)
        assert int(tree.probe(probes).missed_reads.sum()) == 0

    def test_memtable_canonicalises_and_validates(self):
        from repro.lsm.memtable import MemTable

        table = MemTable(width=32, capacity=8)
        table.put("abc")  # str: utf-8 encoded
        table.put(b"abc\x00")  # trailing nulls: canonicalised to b"abc"
        table.delete(b"zz")
        run = table.seal()
        assert run.keys.as_list() == [b"abc", b"zz"]
        assert run.tombstone_mask().tolist() == [False, True]
        with pytest.raises(ValueError):
            table.put(b"five!")  # 5 bytes > 32-bit space

    @pytest.mark.parametrize("drop", [False, True])
    def test_byte_merge_matches_scalar_reference(self, drop):
        from repro.lsm.merge import (
            EntryRun,
            merge_entry_runs,
            merge_entry_runs_scalar,
        )

        rng = random.Random(24)
        runs = []
        for _ in range(4):
            words = _random_words(rng, rng.randrange(20, 120), max_len=6)
            tombstones = np.array([rng.random() < 0.3 for _ in words])
            runs.append(EntryRun(ByteKeySet(words, max_length=6), tombstones))
        fast = merge_entry_runs(runs, drop_tombstones=drop)
        slow = merge_entry_runs_scalar(runs, drop_tombstones=drop)
        assert fast.keys.as_list() == slow.keys.as_list()
        assert fast.tombstone_mask().tolist() == slow.tombstone_mask().tolist()
        assert isinstance(fast.keys, ByteKeySet)
