"""Randomized oracle tests: every filter vs the exact TrieOracle.

The single invariant every range filter in the repository must uphold is
**zero false negatives**: whenever the oracle answers True (a key really is
present / really falls in the range), the filter must answer True too, for
point and range queries alike.  Each filter is driven through the same
seeded mixed workload (uniform ranges, point lookups, near-miss ranges).
"""

import random

import pytest

from conftest import mixed_queries, random_keys
from repro.api import FilterSpec, Workload, build_filter
from repro.core.prf import TwoPBF
from repro.filters.base import TrieOracle
from repro.filters.prefix_bloom import PrefixBloomFilter
from repro.filters.rosetta import Rosetta, dyadic_intervals
from repro.filters.surf import SuRF
from repro.keys.keyspace import IntegerKeySpace

WIDTH = 32
NUM_KEYS = 1500


@pytest.fixture(scope="module")
def workload():
    rng = random.Random(101)
    keys = random_keys(rng, NUM_KEYS, WIDTH)
    queries = mixed_queries(rng, keys, 600, WIDTH)
    return keys, queries, TrieOracle(keys, WIDTH)


def _budget(bits_per_key: float = 12.0) -> int:
    return int(bits_per_key * NUM_KEYS)


FILTER_FACTORIES = {
    "prefix_bloom_16": lambda keys, queries: PrefixBloomFilter(
        keys, WIDTH, prefix_len=16, num_bits=_budget()
    ),
    "prefix_bloom_full": lambda keys, queries: PrefixBloomFilter(
        keys, WIDTH, prefix_len=WIDTH, num_bits=_budget()
    ),
    "surf": lambda keys, queries: SuRF(keys, WIDTH),
    "surf_shallow": lambda keys, queries: SuRF(keys, WIDTH, max_depth=2),
    "rosetta": lambda keys, queries: Rosetta(
        keys, WIDTH, total_bits=_budget(16.0), num_levels=16
    ),
    "one_pbf": lambda keys, queries: _self_designed("1pbf", keys, queries),
    "two_pbf": lambda keys, queries: _self_designed("2pbf", keys, queries),
    "proteus": lambda keys, queries: _self_designed("proteus", keys, queries),
}


def _self_designed(family, keys, queries, bits_per_key=12.0):
    workload = Workload(keys, queries, key_space=IntegerKeySpace(WIDTH))
    return build_filter(FilterSpec(family, float(bits_per_key)), workload.keys, workload)


@pytest.mark.parametrize("name", sorted(FILTER_FACTORIES))
def test_zero_false_negatives(name, workload):
    keys, queries, oracle = workload
    filt = FILTER_FACTORIES[name](keys, queries)
    for key in keys:
        assert filt.may_contain(key), f"{name}: false negative on point {key}"
    for lo, hi in queries:
        if oracle.may_intersect(lo, hi):
            assert filt.may_intersect(lo, hi), (
                f"{name}: false negative on range [{lo}, {hi}]"
            )
    # Point queries through the range interface must agree with may_contain.
    rng = random.Random(102)
    for _ in range(200):
        key = keys[rng.randrange(len(keys))]
        assert filt.may_intersect(key, key)


def test_oracle_is_exact(workload):
    keys, queries, oracle = workload
    key_set = set(keys)
    rng = random.Random(103)
    for _ in range(500):
        key = rng.randrange(1 << WIDTH)
        assert oracle.may_contain(key) == (key in key_set)
    sorted_keys = sorted(key_set)
    import bisect

    for lo, hi in queries:
        index = bisect.bisect_left(sorted_keys, lo)
        truth = index < len(sorted_keys) and sorted_keys[index] <= hi
        assert oracle.may_intersect(lo, hi) == truth


def test_oracle_empty_key_set():
    oracle = TrieOracle([], WIDTH)
    assert not oracle.may_contain(42)
    assert not oracle.may_intersect(0, (1 << WIDTH) - 1)


def test_dyadic_intervals_cover_exactly():
    rng = random.Random(104)
    width = 12
    for _ in range(200):
        lo = rng.randrange(1 << width)
        hi = rng.randrange(lo, 1 << width)
        covered = []
        for prefix, level in dyadic_intervals(lo, hi, width):
            shift = width - level
            covered.append((prefix << shift, (prefix << shift) + (1 << shift) - 1))
        covered.sort()
        assert covered[0][0] == lo
        assert covered[-1][1] == hi
        for (_, prev_hi), (next_lo, _) in zip(covered, covered[1:]):
            assert next_lo == prev_hi + 1  # contiguous, no overlap, no gap


def test_surf_non_byte_width_keeps_distinguishing_bits():
    # Regression: with a 9-bit width the keys are MSB-padded to 2 bytes; the
    # byte-depth rounding must count the 7 pad bits or both keys collapse to
    # the all-zero byte prefix covering the entire space.
    filt = SuRF([0, 64], width=9)
    assert filt.may_contain(0) and filt.may_contain(64)
    assert not filt.may_contain(200)
    assert not filt.may_intersect(128, 180)
    assert filt.may_intersect(60, 70)


def test_rosetta_definitive_negative_on_last_probe():
    # Regression: a Bloom negative that lands exactly when the probe budget
    # reaches zero is still a trustworthy negative, not a conservative True.
    filt = Rosetta([200], width=8, total_bits=1024, max_probes=1)
    assert not filt.may_intersect(8, 11)
    assert filt.may_intersect(199, 201)


def test_two_pbf_survives_tiny_budget():
    # Regression: the 1PBF-fallback and no-empty-queries paths must never
    # hand a zero-bit layer to BloomFilter.  Deliberately exercised through
    # the deprecated ``build`` shim: these are its last in-tree callers and
    # pin both the shim's routing and its DeprecationWarning.
    with pytest.warns(DeprecationWarning, match="TwoPBF.build is deprecated"):
        filt = TwoPBF.build(
            [5], [(1, 2)], bits_per_key=1.0, key_space=IntegerKeySpace(8)
        )
    assert filt.may_contain(5)
    assert filt.design.trie_bits >= 1 and filt.design.bloom_bits >= 1
    with pytest.warns(DeprecationWarning):
        no_empty = TwoPBF.build(
            [5], [(5, 5)], bits_per_key=1.0, key_space=IntegerKeySpace(8)
        )
    assert no_empty.may_contain(5)
    # A 1-bit key space cannot host two layers: clear error, not a crash deep
    # in the fallback path.
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValueError, match="at least 2 bits"):
            TwoPBF.build([0], [(1, 1)], bits_per_key=4.0, key_space=IntegerKeySpace(1))


def test_filters_report_sizes(workload):
    keys, queries, _ = workload
    for name, factory in FILTER_FACTORIES.items():
        filt = factory(keys, queries)
        assert filt.size_in_bits() > 0, name
        assert filt.bits_per_key() > 0, name
