"""The serving layer: micro-batcher, shard router, worker processes, shm.

Four clusters of coverage:

* **MicroBatcher** — unit behaviour (size flush, delay flush, close
  flush, point = degenerate range) plus a seeded concurrency stress:
  many async producers interleaving point and range lookups against a
  ground truth, asserting every caller got exactly *its* answer (no
  cross-talk, no drops) across forced batch-boundary races;
* **routing** — ``plan_shard_bounds`` / ``split_key_set`` /
  ``route_queries`` edge cases: straddling ranges fan out to every
  overlapped shard, gap queries route nowhere, single-key shards;
* **service** — inline and process modes answer identically to the
  unsharded tree for the same seeded workload, for int and byte keys;
  ``from_online`` freezes a live tree's snapshot (the parent keeps
  ingesting afterwards without perturbing served answers);
* **shared-memory lifecycle** — closing the service (or failing to
  start it, or a worker being SIGKILLed mid-flight) never leaks a
  ``/dev/shm`` segment; a killed worker surfaces as :class:`ServeError`,
  not a hang.

Process-mode tests use the real ``spawn`` start method — that is what
exercises attach-by-name in the workers — and are kept small so the
suite stays fast on one core.
"""

import asyncio
import os
import random
import signal

import numpy as np
import pytest

from repro.api import FilterSpec, derive_shard_specs
from repro.lsm.online import OnlineLSMTree
from repro.lsm.tree import LSMTree
from repro.serve import (
    MicroBatcher,
    ServeError,
    ShardedLookupService,
    attach_tree,
    plan_shard_bounds,
    route_queries,
    shard_fences,
    snapshot_tree,
    split_key_set,
)
from repro.workloads.batch import QueryBatch, coerce_keys

WIDTH = 24


def _population(seed=7, size=3000):
    rng = random.Random(seed)
    return sorted(rng.sample(range(1 << WIDTH), size))


def _truth(keys, lo, hi):
    arr = np.asarray(keys)
    idx = np.searchsorted(arr, lo)
    return bool(idx < arr.size and arr[idx] <= hi)


# --------------------------------------------------------------------- #
# MicroBatcher                                                          #
# --------------------------------------------------------------------- #


class RecordingBackend:
    """A synchronous answer_batch that records every batch it saw."""

    def __init__(self, keys):
        self.keys = np.asarray(keys)
        self.batches = []

    def __call__(self, los, his):
        self.batches.append(len(los))
        idx = np.searchsorted(self.keys, los)
        safe = np.minimum(idx, self.keys.size - 1)
        return (idx < self.keys.size) & (self.keys[safe] <= his)


def test_batcher_size_flush_coalesces_exactly_max_batch():
    keys = _population()
    backend = RecordingBackend(keys)

    async def run():
        async with MicroBatcher(backend, max_batch=8, max_delay=60.0) as batcher:
            # max_delay is effectively "never": only the size trigger can
            # flush, so issuing exactly max_batch lookups must release
            # them all as one batch.
            lookups = [
                batcher.lookup(key - 5, key + 5) for key in keys[:8]
            ]
            return await asyncio.gather(*lookups)

    answers = asyncio.run(run())
    assert answers == [True] * 8
    assert backend.batches[0] == 8


def test_batcher_delay_flush_releases_partial_batch():
    keys = _population()
    backend = RecordingBackend(keys)

    async def run():
        async with MicroBatcher(backend, max_batch=1000, max_delay=0.005) as b:
            return await asyncio.gather(b.point(keys[0]), b.point(keys[0] + 1))

    answers = asyncio.run(run())
    assert answers[0] is True
    assert backend.batches == [2]  # delay fired well below max_batch


def test_batcher_close_flushes_pending_and_rejects_new_lookups():
    keys = _population()
    backend = RecordingBackend(keys)

    async def run():
        batcher = MicroBatcher(backend, max_batch=1000, max_delay=60.0)
        pending = asyncio.ensure_future(batcher.lookup(keys[0], keys[0]))
        await asyncio.sleep(0)  # let the lookup enqueue
        await batcher.close()
        answer = await pending
        with pytest.raises(RuntimeError, match="closed"):
            await batcher.lookup(0, 1)
        return answer

    assert asyncio.run(run()) is True


def test_batcher_backend_failure_propagates_to_every_waiter():
    def exploding(los, his):
        raise RuntimeError("backend down")

    async def run():
        async with MicroBatcher(exploding, max_batch=4, max_delay=0.001) as b:
            lookups = [b.point(i) for i in range(4)]
            return await asyncio.gather(*lookups, return_exceptions=True)

    results = asyncio.run(run())
    assert all(isinstance(r, RuntimeError) for r in results)


def test_batcher_concurrency_stress_no_crosstalk_no_drops():
    """N producers, interleaved point/range mixes, forced boundary races.

    max_batch=16 with 12 producers × 25 requests guarantees many flushes
    land mid-producer, so requests from different producers share
    batches constantly; per-request truth must still come back to the
    producer that asked.
    """
    keys = _population(seed=23)
    backend = RecordingBackend(keys)
    rng = random.Random(99)
    producers = 12
    per_producer = 25
    plans = []  # per producer: list of (lo, hi, expected)
    for _ in range(producers):
        plan = []
        for _ in range(per_producer):
            if rng.random() < 0.5:
                key = rng.choice(keys) if rng.random() < 0.5 else rng.randrange(1 << WIDTH)
                plan.append((key, key, _truth(keys, key, key)))
            else:
                lo = rng.randrange(1 << WIDTH)
                hi = min((1 << WIDTH) - 1, lo + rng.randrange(2048))
                plan.append((lo, hi, _truth(keys, lo, hi)))
        plans.append(plan)

    async def producer(batcher, plan, jitter_seed):
        jitter = random.Random(jitter_seed)
        answers = []
        for lo, hi, _ in plan:
            if jitter.random() < 0.2:
                await asyncio.sleep(0)  # shuffle arrival order across producers
            answers.append(await batcher.lookup(lo, hi))
        return answers

    async def run():
        async with MicroBatcher(backend, max_batch=16, max_delay=0.001) as b:
            return await asyncio.gather(
                *[producer(b, plan, i) for i, plan in enumerate(plans)]
            )

    all_answers = asyncio.run(run())
    for plan, answers in zip(plans, all_answers):
        assert len(answers) == per_producer  # no drops
        assert answers == [expected for _, _, expected in plan]  # no cross-talk
    assert sum(backend.batches) == producers * per_producer
    assert max(backend.batches) > 1  # coalescing actually happened


# --------------------------------------------------------------------- #
# Routing                                                               #
# --------------------------------------------------------------------- #


def test_plan_shard_bounds_covers_everything_without_overlap():
    for num_keys, shards in [(10, 3), (7, 7), (5, 9), (1000, 4)]:
        bounds = plan_shard_bounds(num_keys, shards)
        assert bounds[0][0] == 0 and bounds[-1][1] == num_keys
        sizes = [stop - start for start, stop in bounds]
        assert all(size > 0 for size in sizes)
        assert sum(sizes) == num_keys
        assert max(sizes) - min(sizes) <= 1
        # Contiguous: each shard starts where the previous one stopped.
        assert all(b[0] == a[1] for a, b in zip(bounds, bounds[1:]))


def test_route_queries_straddles_and_gaps():
    key_set = coerce_keys(list(range(0, 4000, 10)), WIDTH)
    shards = split_key_set(key_set, 4)
    mins, maxs = shard_fences(shards)
    boundary = int(maxs[0])  # last key of shard 0
    los = np.array([boundary, boundary + 1, 0], dtype=np.int64)
    his = np.array([int(mins[1]), boundary + 5, 3990], dtype=np.int64)
    first, last = route_queries(mins, maxs, los, his)
    assert (first[0], last[0]) == (0, 2)  # straddles shards 0 and 1
    assert first[1] >= last[1]  # gap between fences: routes nowhere
    assert (first[2], last[2]) == (0, 4)  # full-space range hits all four


def test_self_designing_spec_without_workload_fails_at_the_boundary():
    keys = _population(size=300)
    with pytest.raises(ValueError, match="self-designing.*workload"):
        ShardedLookupService.build(
            coerce_keys(keys, WIDTH),
            num_shards=2,
            spec=FilterSpec("proteus", 12.0),
            mode="inline",
        )


def test_derive_shard_specs_preserves_global_budget():
    spec = FilterSpec("bloom", 10.0)
    counts = [100, 50, 25]
    shard_specs = derive_shard_specs(spec, counts)
    granted = sum(s.bits_per_key * n for s, n in zip(shard_specs, counts))
    assert granted == pytest.approx(spec.bits_per_key * sum(counts))


# --------------------------------------------------------------------- #
# Service: inline and process answers match the unsharded tree          #
# --------------------------------------------------------------------- #


def _eval_queries(keys, seed=5, count=600):
    rng = random.Random(seed)
    los, his = [], []
    for _ in range(count):
        if rng.random() < 0.5:
            key = rng.choice(keys) if rng.random() < 0.4 else rng.randrange(1 << WIDTH)
            los.append(key), his.append(key)
        else:
            lo = rng.randrange(1 << WIDTH)
            los.append(lo), his.append(min((1 << WIDTH) - 1, lo + rng.randrange(4096)))
    return np.array(los, dtype=np.int64), np.array(his, dtype=np.int64)


@pytest.mark.parametrize("mode", ["inline", "process"])
def test_service_matches_monolithic_tree_int_keys(mode):
    keys = _population(seed=11, size=2000)
    los, his = _eval_queries(keys)
    spec = FilterSpec("bloom", 12.0)
    monolith = LSMTree.build(coerce_keys(keys, WIDTH), sst_keys=256, seed=0)
    expected = np.array(
        [_truth(keys, int(lo), int(hi)) for lo, hi in zip(los, his)]
    )
    with ShardedLookupService.build(
        coerce_keys(keys, WIDTH),
        num_shards=3,
        spec=spec,
        sst_keys=256,
        mode=mode,
    ) as service:
        answers, stats = service.serve_batch(los, his)
        assert (answers == expected).all()
        assert stats["filter_probes"] > 0
        assert sum(stats["shard_queries"]) + stats["routed_none"] >= los.size
        assert service.describe()["num_shards"] == 3
    assert monolith.num_keys == sum(service.shard_sizes)


@pytest.mark.parametrize("mode", ["inline", "process"])
def test_service_matches_truth_byte_keys(mode):
    rng = random.Random(31)
    words = sorted(
        {
            bytes(rng.choice(b"abcdxyz") for _ in range(rng.randrange(1, 6)))
            for _ in range(600)
        }
    )
    pairs = []
    for _ in range(200):
        lo = bytes(rng.choice(b"abcdxyz") for _ in range(rng.randrange(1, 4)))
        hi = lo + b"zz" if rng.random() < 0.5 else lo  # still <= 5 bytes
        pairs.append((lo, hi))
    expected = [any(lo <= w <= hi for w in words) for lo, hi in pairs]
    with ShardedLookupService.build(
        words, num_shards=2, sst_keys=128, mode=mode
    ) as service:
        answers, _ = service.serve_batch(
            [lo for lo, _ in pairs], [hi for _, hi in pairs]
        )
    assert answers.tolist() == expected


def test_service_points_and_answer_batch():
    keys = _population(seed=17, size=800)
    with ShardedLookupService.build(
        coerce_keys(keys, WIDTH), num_shards=2, mode="inline"
    ) as service:
        probes = keys[:20] + [keys[0] + 1, keys[-1] + 1]
        answers, stats = service.serve_batch(probes)  # his=None: point mode
        assert answers[:20].all()
        assert stats["required_reads"] >= 20
        plain = service.answer_batch(probes, probes)
        assert (plain == answers).all()


def test_service_closed_rejects_and_close_is_idempotent():
    keys = _population(size=300)
    service = ShardedLookupService.build(
        coerce_keys(keys, WIDTH), num_shards=2, mode="inline"
    )
    service.close()
    service.close()
    with pytest.raises(ServeError, match="closed"):
        service.serve_batch([1], [2])


def test_from_online_snapshot_is_isolated_from_later_writes():
    tree = OnlineLSMTree(
        WIDTH, spec=FilterSpec("bloom", 12.0), sst_keys=64, memtable_capacity=64
    )
    keys = _population(seed=41, size=700)
    for key in keys[:600]:
        tree.put(key)
    tree.delete(keys[0])
    tree.flush()
    live = set(keys[1:600])
    with ShardedLookupService.from_online(tree, num_shards=2, mode="inline") as service:
        # The parent keeps ingesting and compacting after the snapshot...
        for key in keys[600:]:
            tree.put(key)
        tree.flush()
        probes = keys[:700]
        answers, _ = service.serve_batch(probes)
        # ...but served answers stay frozen at snapshot time: the
        # tombstoned key and the post-snapshot keys are absent.
        assert answers.tolist() == [key in live for key in probes]
        assert tree.lookup_many(probes).tolist() == [
            key != keys[0] for key in probes
        ]


def test_from_online_requires_a_flushed_tree():
    tree = OnlineLSMTree(WIDTH)
    tree.put(3)
    with pytest.raises(ValueError, match="no SSTs"):
        ShardedLookupService.from_online(tree)


# --------------------------------------------------------------------- #
# Shared-memory lifecycle                                               #
# --------------------------------------------------------------------- #


def _segment_names(service):
    return [
        segment.name for worker in service._workers for segment in worker.segments
    ]


def _shm_exists(name):
    return os.path.exists(f"/dev/shm/{name.lstrip('/')}")


def test_process_service_cleans_up_all_segments_on_close():
    keys = _population(seed=53, size=1000)
    service = ShardedLookupService.build(
        coerce_keys(keys, WIDTH), num_shards=2, spec=FilterSpec("bloom", 10.0)
    )
    names = _segment_names(service)
    assert names and all(_shm_exists(name) for name in names)
    answers, _ = service.serve_batch(keys[:10])
    assert answers.all()
    service.close()
    assert not any(_shm_exists(name) for name in names)
    for worker in service._workers:
        assert not worker.process.is_alive()


def test_killed_worker_raises_serve_error_and_still_cleans_up():
    keys = _population(seed=59, size=1000)
    service = ShardedLookupService.build(coerce_keys(keys, WIDTH), num_shards=2)
    names = _segment_names(service)
    try:
        os.kill(service._workers[0].process.pid, signal.SIGKILL)
        service._workers[0].process.join(10)
        with pytest.raises(ServeError, match="died"):
            service.serve_batch(keys[:10])
    finally:
        service.close()
    assert not any(_shm_exists(name) for name in names)


def test_failed_worker_spawn_unlinks_the_orphaned_segments(monkeypatch):
    """A shard whose Process cannot even start must not leak its segments.

    Regression: those segments are created *before* the worker handle is
    registered, so the generic close() path never saw them.
    """
    import multiprocessing.context as mp_context

    before = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()

    def exploding_process(self, *args, **kwargs):
        raise OSError("no processes for you")

    monkeypatch.setattr(mp_context.SpawnContext, "Process", exploding_process)
    keys = _population(seed=67, size=500)
    with pytest.raises(OSError, match="no processes"):
        ShardedLookupService.build(coerce_keys(keys, WIDTH), num_shards=2)
    after = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()
    leaked = [name for name in after - before if name.startswith("psm_")]
    assert not leaked, leaked


def test_snapshot_attach_roundtrip_zero_copy():
    keys = _population(seed=61, size=900)
    tree = LSMTree.build(coerce_keys(keys, WIDTH), sst_keys=128, seed=0)
    spec, segments, filters = snapshot_tree(tree)
    try:
        attached, held = attach_tree(spec, filters)
        try:
            batch = QueryBatch(
                np.array(keys[:50], dtype=np.int64),
                np.array(keys[:50], dtype=np.int64),
                WIDTH,
            )
            result = attached.probe(batch)
            assert result.candidates.all()
            assert attached.num_keys == tree.num_keys
        finally:
            del attached, batch, result
            for segment in held:
                segment.close()
    finally:
        for segment in segments:
            segment.close()
            segment.unlink()
    assert not any(_shm_exists(segment.name) for segment in segments)
