"""Tests for the LSM substrate: geometry, fences, filters, cost accounting."""

import json

import numpy as np
import pytest

from repro.api import FilterSpec, Workload, build_filter
from repro.evaluation.lsm_bench import check_report, main, run_lsm_bench
from repro.lsm import CostModel, LSMTree, ProbeResult, SSTable
from repro.workloads import EncodedKeySet, QueryBatch

WIDTH = 32


@pytest.fixture(scope="module")
def workload() -> Workload:
    return Workload.generate(num_keys=3000, num_queries=1200, width=WIDTH, seed=11)


@pytest.fixture(scope="module")
def tree(workload) -> LSMTree:
    return LSMTree.build(workload.keys, sst_keys=256, fanout=4, seed=11)


class TestGeometry:
    def test_levels_follow_leveled_capacities(self, tree):
        # 3000 keys at 256 keys/SST, fanout 4: 256 + 1024 + remainder.
        sizes = [sum(len(sst) for sst in level) for level in tree.levels]
        assert sizes == [256, 1024, 1720]
        assert [len(level) for level in tree.levels] == [1, 4, 7]
        assert tree.num_keys == 3000

    def test_every_key_lands_in_exactly_one_sst(self, tree, workload):
        seen = np.concatenate([sst.keys.keys for sst in tree.sstables()])
        assert sorted(seen.tolist()) == workload.keys.as_list()

    def test_ssts_within_a_level_are_disjoint_and_ordered(self, tree):
        for level in tree.levels:
            for left, right in zip(level, level[1:]):
                assert left.max_key < right.min_key

    def test_sst_slices_are_zero_copy_views(self, tree):
        for level in tree.levels:
            if len(level) < 2:
                continue
            base = level[0].keys.keys.base
            assert base is not None
            for sst in level:
                assert sst.keys.keys.base is base

    def test_build_is_seed_deterministic(self, workload):
        one = LSMTree.build(workload.keys, sst_keys=256, fanout=4, seed=11)
        two = LSMTree.build(workload.keys, sst_keys=256, fanout=4, seed=11)
        for left, right in zip(one.sstables(), two.sstables()):
            assert left.keys.keys.tolist() == right.keys.keys.tolist()

    def test_build_rejects_bad_inputs(self, workload):
        with pytest.raises(TypeError):
            LSMTree.build([1, 2, 3])
        with pytest.raises(ValueError):
            LSMTree.build(EncodedKeySet([], WIDTH))
        with pytest.raises(ValueError):
            LSMTree.build(workload.keys, sst_keys=0)
        with pytest.raises(ValueError):
            LSMTree.build(workload.keys, fanout=0)

    def test_sstable_rejects_empty_and_width_mismatch(self, workload):
        with pytest.raises(ValueError):
            SSTable(0, 0, EncodedKeySet([], WIDTH))
        sst = SSTable(0, 0, EncodedKeySet([1, 2, 3], WIDTH))
        narrow = build_filter(FilterSpec("bloom", 8.0, {"width": 8}), [1, 2, 3])
        with pytest.raises(ValueError):
            sst.attach_filter(narrow)


class TestEmptyLevels:
    """Regression: a level compacted away entirely (empty list between
    populated levels) used to break fence construction — the dtype probe
    indexed ``level[0]`` on a level with no SSTs."""

    def _tree_with_gap(self) -> tuple[LSMTree, list[int], list[int]]:
        shallow = list(range(100, 160))
        deep = list(range(1000, 1100))
        levels = [
            [SSTable(0, 0, EncodedKeySet(shallow, WIDTH))],
            [],  # level 1 merged wholesale into level 2, not yet refilled
            [
                SSTable(2, 0, EncodedKeySet(deep[:50], WIDTH)),
                SSTable(2, 1, EncodedKeySet(deep[50:], WIDTH)),
            ],
        ]
        return LSMTree(levels, WIDTH), shallow, deep

    def test_probe_routes_around_the_gap(self):
        tree, shallow, deep = self._tree_with_gap()
        points = QueryBatch.points(shallow + deep, WIDTH)
        result = tree.probe(points)
        assert int(result.missed_reads.sum()) == 0
        assert (result.required_reads == 1).all()
        # The gap level contributes nothing — not even candidates.
        assert result.per_level[1].candidates == 0
        ranges = QueryBatch.from_pairs([(0, 1 << 20), (500, 900)], WIDTH)
        spanning = tree.probe(ranges)
        assert int(spanning.required_reads[0]) == 3  # all three SSTs match
        assert int(spanning.required_reads[1]) == 0  # falls in the key gap

    def test_filters_attach_across_the_gap(self, workload):
        tree, shallow, deep = self._tree_with_gap()
        tree.attach_filters(FilterSpec("bloom", 10.0), workload)
        assert tree.filter_bits_per_level()[1] == 0
        result = tree.probe(QueryBatch.points(shallow + deep, WIDTH))
        assert int(result.missed_reads.sum()) == 0

    def test_fully_empty_tree_is_still_rejected(self):
        with pytest.raises(ValueError):
            LSMTree([], WIDTH)
        with pytest.raises(ValueError):
            LSMTree([[], []], WIDTH)


class TestFencePruning:
    def test_candidates_match_brute_force_fence_overlap(self, tree, workload):
        batch = workload.queries
        result = tree.probe(batch)
        ssts = tree.sstables()
        for i, (lo, hi) in enumerate(batch.pairs()):
            expected = sum(1 for sst in ssts if sst.overlaps(lo, hi))
            assert int(result.candidates[i]) == expected

    def test_fences_never_prune_a_matching_sst(self, tree, workload):
        # Every SST that truly holds a key of [lo, hi] must survive its
        # fences — pruning is only ever exact.
        result = tree.probe(workload.queries)
        for i, (lo, hi) in enumerate(workload.queries.pairs()):
            truly = sum(
                1
                for sst in tree.sstables()
                if bool(
                    sst.matches_many(
                        np.array([lo], dtype=np.int64), np.array([hi], dtype=np.int64)
                    )[0]
                )
            )
            assert int(result.required_reads[i]) == truly
            assert int(result.candidates[i]) >= truly

    def test_unfiltered_probe_reads_every_candidate(self, tree, workload):
        tree.clear_filters()
        result = tree.probe(workload.queries)
        assert (result.blocks_read == result.candidates).all()
        assert result.total_filter_probes() == 0


class TestPerSstFilters:
    @pytest.fixture(scope="class")
    def filtered_tree(self, workload):
        filtered = LSMTree.build(workload.keys, sst_keys=256, fanout=4, seed=11)
        filtered.attach_filters(FilterSpec("proteus", 12.0), workload)
        return filtered

    def test_zero_false_negatives_through_the_tree(self, filtered_tree, workload):
        # Every present key's point probe must reach its SST: zero missed
        # reads, and at least one required (and charged) read per key.
        points = QueryBatch.points(workload.keys.as_list(), WIDTH)
        result = filtered_tree.probe(points)
        assert int(result.missed_reads.sum()) == 0
        assert (result.required_reads >= 1).all()
        assert (result.blocks_read >= result.required_reads).all()

    def test_zero_false_negatives_for_every_family(self, workload):
        small = Workload.generate(num_keys=600, num_queries=400, width=WIDTH, seed=3)
        points = QueryBatch.points(small.keys.as_list(), WIDTH)
        for family in ("bloom", "prefix_bloom", "surf", "rosetta", "1pbf", "2pbf"):
            little = LSMTree.build(small.keys, sst_keys=128, fanout=4, seed=3)
            little.attach_filters(FilterSpec(family, 12.0), small)
            result = little.probe(points)
            assert int(result.missed_reads.sum()) == 0, family
            assert (result.required_reads >= 1).all(), family

    def test_filtered_reads_are_a_subset_of_candidates(self, filtered_tree, workload):
        result = filtered_tree.probe(workload.queries)
        assert (result.blocks_read <= result.candidates).all()
        assert (result.filter_probes == result.candidates).all()

    def test_per_level_stats_reconcile_with_per_query_arrays(
        self, filtered_tree, workload
    ):
        # The two accountings of one probe — per-query arrays and per-level
        # aggregates — must agree exactly, field by field: every routed
        # (query, SST) pair is counted once on each side.
        result = filtered_tree.probe(workload.queries)
        fields = (
            "candidates",
            "filter_probes",
            "blocks_read",
            "required_reads",
            "false_positive_reads",
            "missed_reads",
        )
        for field in fields:
            per_query_total = int(getattr(result, field).sum())
            per_level_total = sum(
                getattr(stats, field) for stats in result.per_level
            )
            assert per_query_total == per_level_total, field
        # And the unfiltered tree agrees too (filter_probes identically 0).
        bare = LSMTree.build(workload.keys, sst_keys=256, fanout=4, seed=11)
        bare_result = bare.probe(workload.queries)
        for field in fields:
            assert int(getattr(bare_result, field).sum()) == sum(
                getattr(stats, field) for stats in bare_result.per_level
            ), field

    def test_per_level_memory_sums_match_each_filter(self, filtered_tree):
        per_level = filtered_tree.filter_bits_per_level()
        for level, expected in zip(filtered_tree.levels, per_level):
            assert expected == sum(sst.filter.size_in_bits() for sst in level)
        assert filtered_tree.filter_size_bits() == sum(per_level)

    def test_size_breakdown_sums_to_size_in_bits(self, filtered_tree):
        for sst in filtered_tree.sstables():
            breakdown = sst.filter.size_breakdown()
            assert sum(breakdown.values()) == sst.filter.size_in_bits()

    def test_equal_policy_preserves_the_global_bit_grant(self, workload):
        equal = LSMTree.build(workload.keys, sst_keys=256, fanout=4, seed=11)
        equal.attach_filters(FilterSpec("bloom", 12.0), workload, policy="equal")
        specs = [sst.spec for sst in equal.sstables()]
        granted = sum(
            spec.bits_per_key * len(sst)
            for spec, sst in zip(specs, equal.sstables())
        )
        assert granted == pytest.approx(12.0 * workload.num_keys)
        # Equal split: every SST asked for the same total bits.
        totals = {round(spec.bits_per_key * len(sst)) for spec, sst in zip(specs, equal.sstables())}
        assert len(totals) <= 2  # rounding may straddle one bit

    def test_clear_filters_restores_the_baseline(self, workload):
        tree = LSMTree.build(workload.keys, sst_keys=256, fanout=4, seed=11)
        tree.attach_filters(FilterSpec("bloom", 8.0), workload)
        assert tree.filter_size_bits() > 0
        tree.clear_filters()
        assert tree.filter_size_bits() == 0
        result = tree.probe(workload.queries)
        assert (result.blocks_read == result.candidates).all()


class TestCostModel:
    def test_io_cost_prices_blocks_and_probes(self):
        model = CostModel(block_read_cost=2.0, filter_probe_cost=0.25)
        assert model.io_cost(blocks_read=10, filter_probes=8) == 22.0
        with pytest.raises(ValueError):
            CostModel(block_read_cost=-1.0)

    def test_from_dict_round_trips_to_dict(self):
        model = CostModel(block_read_cost=2.0, filter_probe_cost=0.25)
        assert CostModel.from_dict(model.to_dict()) == model
        # Missing rates fall back to the dataclass defaults.
        assert CostModel.from_dict({}) == CostModel()
        assert CostModel.from_dict({"block_read_cost": 3.0}) == CostModel(3.0, 0.0)

    def test_from_dict_rejects_unknown_and_negative_fields(self):
        with pytest.raises(ValueError, match="blok_read_cost"):
            CostModel.from_dict({"blok_read_cost": 1.0})
        with pytest.raises(ValueError):
            CostModel.from_dict({"filter_probe_cost": -0.5})

    def test_probe_result_totals_and_empty_mask(self):
        result = ProbeResult.zeros(4, 2)
        result.blocks_read[:] = [2, 0, 1, 0]
        result.required_reads[:] = [1, 0, 0, 0]
        result.filter_probes[:] = [3, 1, 2, 1]
        assert result.total_blocks_read() == 3
        assert result.empty_query_mask().tolist() == [False, True, True, True]
        summary = result.to_dict(CostModel(filter_probe_cost=1.0))
        assert summary["io_cost"] == 3 + 7
        assert summary["num_empty_queries"] == 3

    def test_probe_on_empty_batch_is_all_zero(self, tree):
        result = tree.probe(QueryBatch.from_pairs([], WIDTH))
        assert result.num_queries == 0
        assert result.total_blocks_read() == 0


class TestLsmBench:
    @pytest.fixture(scope="class")
    def report(self):
        return run_lsm_bench(
            families=("bloom", "proteus"),
            num_keys=1200, num_queries=500, sst_keys=128, seed=5,
        )

    def test_report_is_seed_deterministic(self, report):
        again = run_lsm_bench(
            families=("bloom", "proteus"),
            num_keys=1200, num_queries=500, sst_keys=128, seed=5,
        )
        assert json.dumps(report, sort_keys=True) == json.dumps(again, sort_keys=True)

    def test_filtered_configs_beat_the_no_filter_baseline(self, report):
        assert check_report(report) == []
        baseline = report["configs"]["no_filter"]["probe"]
        for name in ("bloom", "proteus"):
            probe = report["configs"][name]["probe"]
            assert probe["blocks_read"] <= baseline["blocks_read"]
            assert probe["false_positive_reads"] < baseline["false_positive_reads"]

    def test_report_memory_accounting_is_consistent(self, report):
        for name in ("bloom", "proteus"):
            config = report["configs"][name]
            assert sum(config["filter_bits_per_level"]) == config["filter_bits"]
            assert config["filter_bits_per_key"] == pytest.approx(
                config["filter_bits"] / report["tree"]["num_keys"]
            )

    def test_check_report_flags_violations(self, report):
        broken = json.loads(json.dumps(report))
        broken["configs"]["bloom"]["probe"]["blocks_read"] = (
            broken["configs"]["no_filter"]["probe"]["blocks_read"] + 1
        )
        broken["configs"]["proteus"]["probe"]["false_positive_reads"] = 10**9
        flagged = check_report(broken)
        assert any("bloom: blocks_read" in line for line in flagged)
        assert any("proteus" in line for line in flagged)

    def test_budget_free_family_is_rejected(self):
        with pytest.raises(ValueError, match="oracle"):
            run_lsm_bench(families=("oracle",), num_keys=200, num_queries=100)

    def test_cli_writes_report_and_checks(self, tmp_path):
        output = tmp_path / "lsm.json"
        code = main(
            [
                "--keys", "800", "--queries", "300", "--sst-keys", "128",
                "--families", "bloom,proteus", "--check",
                "--output", str(output),
            ]
        )
        assert code == 0
        written = json.loads(output.read_text())
        assert set(written["configs"]) == {"no_filter", "bloom", "proteus"}

    def test_instrumented_run_grows_metrics_trace_and_drift_sections(self):
        from repro.obs.metrics import MetricsRegistry, validate_metrics_payload

        registry = MetricsRegistry()
        report = run_lsm_bench(
            families=("bloom", "proteus"),
            num_keys=1200, num_queries=500, sst_keys=128, seed=5,
            metrics=registry, trace_sample=100, drift_batches=4,
        )
        assert validate_metrics_payload(report["metrics"]) == []
        counters = report["metrics"]["counters"]
        assert counters["build.filters"] == counters["attach.ssts"]
        assert counters["probe.configs"] == 3  # no_filter + two families
        for name in ("no_filter", "bloom", "proteus"):
            trace = report["configs"][name]["trace"]
            assert trace["reconciled"] is True
            assert trace["num_queries"] == 100
        # Only families with a CPFPR prediction get a drift section.
        assert "drift" not in report["configs"]["bloom"]
        drift = report["configs"]["proteus"]["drift"]
        assert drift["num_batches"] == 4
        assert 0.0 <= drift["predicted_fpr"] <= 1.0

    def test_instrumentation_does_not_change_the_report(self):
        from repro.obs.metrics import MetricsRegistry

        plain = run_lsm_bench(
            families=("proteus",), num_keys=800, num_queries=300,
            sst_keys=128, seed=7,
        )
        instrumented = run_lsm_bench(
            families=("proteus",), num_keys=800, num_queries=300,
            sst_keys=128, seed=7,
            metrics=MetricsRegistry(), trace_sample=50, drift_batches=4,
        )
        instrumented.pop("metrics")
        # Drift rides on the probe result and runs by default; traces only
        # appear when sampled.  Strip both overlays from both reports — the
        # measurements underneath must be byte-identical.
        for report in (plain, instrumented):
            for config in report["configs"].values():
                config.pop("trace", None)
                config.pop("drift", None)
        assert json.dumps(plain, sort_keys=True) == json.dumps(
            instrumented, sort_keys=True
        )

    def test_cli_writes_validating_metrics_payload(self, tmp_path):
        from repro.obs.metrics import validate_metrics_payload

        metrics_out = tmp_path / "metrics.json"
        code = main(
            [
                "--keys", "800", "--queries", "300", "--sst-keys", "128",
                "--families", "proteus",
                "--metrics-out", str(metrics_out),
                "--trace-sample", "50",
            ]
        )
        assert code == 0
        payload = json.loads(metrics_out.read_text())
        assert payload["driver"] == "lsm_bench"
        assert validate_metrics_payload(payload["metrics"]) == []
        assert payload["traces"]["proteus"]["reconciled"] is True
        assert "proteus" in payload["drift"]
        assert "build_filters_total" in payload["prometheus"]
