"""Tests for the repro.workloads package: batch types and generators."""

import random

import numpy as np
import pytest

from repro.keys.keyspace import StringKeySpace
from repro.keys.lcp import (
    bit_length_many,
    lcp_bits,
    lcp_bits_many,
    query_set_lcp,
    query_set_lcp_many,
    unique_prefix_counts,
    unique_prefix_counts_array,
)
from repro.workloads import (
    EncodedKeySet,
    QueryBatch,
    clustered_keys,
    generate_workload,
    random_keys,
    zipf_keys,
)

WIDTH = 32


class TestVectorisedLcpHelpers:
    def test_bit_length_many_matches_python(self):
        rng = random.Random(1)
        values = [0, 1, 2, 3, (1 << 63) - 1] + [rng.randrange(1 << 63) for _ in range(500)]
        arr = np.array(values, dtype=np.int64)
        assert bit_length_many(arr).tolist() == [v.bit_length() for v in values]

    def test_lcp_bits_many_matches_scalar(self):
        rng = random.Random(2)
        a = [rng.randrange(1 << WIDTH) for _ in range(300)]
        b = [rng.randrange(1 << WIDTH) for _ in range(300)]
        batch = lcp_bits_many(
            np.array(a, dtype=np.int64), np.array(b, dtype=np.int64), WIDTH
        )
        assert batch.tolist() == [lcp_bits(x, y, WIDTH) for x, y in zip(a, b)]

    def test_unique_prefix_counts_array_matches_scalar(self):
        rng = random.Random(3)
        keys = sorted(set(rng.randrange(1 << WIDTH) for _ in range(800)))
        arr = np.array(keys, dtype=np.int64)
        assert unique_prefix_counts_array(arr, WIDTH).tolist() == (
            unique_prefix_counts(keys, WIDTH)
        )
        assert unique_prefix_counts_array(np.array([], dtype=np.int64), 8).tolist() == (
            unique_prefix_counts([], 8)
        )
        assert unique_prefix_counts_array(np.array([7], dtype=np.int64), 8).tolist() == (
            unique_prefix_counts([7], 8)
        )

    def test_query_set_lcp_many_matches_scalar(self):
        rng = random.Random(4)
        keys = sorted(set(rng.randrange(1 << WIDTH) for _ in range(500)))
        arr = np.array(keys, dtype=np.int64)
        queries = []
        for _ in range(400):
            lo = rng.randrange(1 << WIDTH)
            queries.append((lo, min((1 << WIDTH) - 1, lo + rng.randrange(1, 2000))))
        los = np.array([lo for lo, _ in queries], dtype=np.int64)
        his = np.array([hi for _, hi in queries], dtype=np.int64)
        batch = query_set_lcp_many(arr, los, his, WIDTH)
        assert batch.tolist() == [
            query_set_lcp(keys, lo, hi, WIDTH) for lo, hi in queries
        ]


class TestEncodedKeySet:
    def test_sorted_distinct_and_bounds(self):
        ks = EncodedKeySet([5, 1, 5, 3], 8)
        assert ks.as_list() == [1, 3, 5]
        assert len(ks) == 3 and ks.is_vector
        with pytest.raises(ValueError):
            EncodedKeySet([300], 8)
        with pytest.raises(ValueError):
            EncodedKeySet([-1], 8)

    def test_prefixes_and_counts(self):
        ks = EncodedKeySet([0b0001, 0b0010, 0b1000], 4)
        assert ks.prefixes(1).tolist() == [0, 1]
        assert ks.prefixes(2).tolist() == [0b00, 0b10]
        assert ks.prefix_counts() == unique_prefix_counts([1, 2, 8], 4)

    def test_wide_space_object_fallback(self):
        ks = EncodedKeySet([1 << 127, 5], 128)
        assert not ks.is_vector
        assert ks.as_list() == [5, 1 << 127]
        assert ks.prefixes(1).tolist() == [0, 1]
        assert ks.prefix_counts()[0] == 1

    def test_from_raw_string_key_space(self):
        space = StringKeySpace(4)
        ks = EncodedKeySet.from_raw([b"abc", b"abd"], space)
        assert ks.width == 32 and len(ks) == 2

    def test_slice_is_a_zero_copy_view(self):
        ks = EncodedKeySet(range(100), 16)
        view = ks.slice(10, 40)
        assert isinstance(view, EncodedKeySet)
        assert view.as_list() == list(range(10, 40))
        # The pin of the satellite: basic slicing must share the buffer —
        # the view's base *is* the parent array, no copy anywhere.
        assert view.keys.base is ks.keys
        assert np.shares_memory(view.keys, ks.keys)

    def test_slice_bounds_and_invariants(self):
        ks = EncodedKeySet([2, 4, 6, 8], 8)
        assert ks.slice(0, 4).as_list() == [2, 4, 6, 8]
        assert ks.slice(2, 2).as_list() == []
        assert ks.slice(1, 3).prefix_counts() == unique_prefix_counts([4, 6], 8)
        for start, stop in ((-1, 2), (3, 2), (0, 5)):
            with pytest.raises(ValueError):
                ks.slice(start, stop)

    def test_slice_of_wide_space_keys(self):
        ks = EncodedKeySet([5, 1 << 80, 1 << 90], 128)
        view = ks.slice(1, 3)
        assert not view.is_vector
        assert view.as_list() == [1 << 80, 1 << 90]
        assert view.keys.base is ks.keys


class TestQueryBatch:
    def test_roundtrip_and_points(self):
        batch = QueryBatch.from_pairs([(1, 4), (9, 9)], 8)
        assert batch.to_list() == [(1, 4), (9, 9)]
        assert batch.spans().tolist() == [4, 1]
        points = QueryBatch.points([3, 7], 8)
        assert points.to_list() == [(3, 3), (7, 7)]

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryBatch.from_pairs([(5, 3)], 8)
        with pytest.raises(ValueError):
            QueryBatch.from_pairs([(-2, 3)], 8)
        with pytest.raises(ValueError):
            QueryBatch.from_pairs([(0, 256)], 8)
        with pytest.raises(ValueError):
            QueryBatch.from_pairs([(0, 1 << 70)], 16)

    def test_empty_batch(self):
        batch = QueryBatch.from_pairs([], 8)
        assert len(batch) == 0 and batch.to_list() == []

    def test_select_carries_validation_state(self):
        batch = QueryBatch.from_pairs([(1, 4), (9, 9), (20, 30)], 8)
        sub = batch.select(np.array([True, False, True]))
        assert sub.to_list() == [(1, 4), (20, 30)]
        assert sub.width == batch.width and sub._validated


class TestGenerators:
    def test_deterministic_and_distinct(self):
        for generator in (random_keys, zipf_keys, clustered_keys):
            first = generator(random.Random(11), 2000, WIDTH)
            second = generator(random.Random(11), 2000, WIDTH)
            assert first == second, generator.__name__
            assert len(set(first)) == 2000, generator.__name__
            assert all(0 <= key < (1 << WIDTH) for key in first), generator.__name__

    def test_distribution_shapes(self):
        # Zipf keys pile up low: the median is far below the space midpoint.
        zipf = zipf_keys(random.Random(12), 2000, WIDTH)
        assert sorted(zipf)[1000] < (1 << WIDTH) // 4
        # Clustered keys have long runs of shared high bits: many adjacent
        # pairs agree on their top 16 bits, unlike uniform keys.
        clustered = sorted(clustered_keys(random.Random(13), 2000, WIDTH))
        close = sum(
            1
            for a, b in zip(clustered, clustered[1:])
            if (a >> 16) == (b >> 16)
        )
        assert close > 1000

    def test_saturated_spaces_top_up(self):
        assert len(set(zipf_keys(random.Random(14), 256, 8))) == 256
        assert len(set(clustered_keys(random.Random(15), 256, 8))) == 256
        with pytest.raises(ValueError):
            zipf_keys(random.Random(16), 300, 8)

    def test_generate_workload(self):
        keys, batch = generate_workload(
            1000, 400, WIDTH, seed=17, key_dist="clustered", query_family="correlated"
        )
        assert len(keys) == 1000 and len(batch) == 400
        keys2, batch2 = generate_workload(
            1000, 400, WIDTH, seed=17, key_dist="clustered", query_family="correlated"
        )
        assert keys.as_list() == keys2.as_list()
        assert batch.to_list() == batch2.to_list()
        with pytest.raises(ValueError, match="key distribution"):
            generate_workload(10, 10, 8, key_dist="nope")
        with pytest.raises(ValueError, match="query family"):
            generate_workload(10, 10, 8, query_family="nope")
