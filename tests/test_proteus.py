"""End-to-end Proteus tests: the acceptance criteria of this subsystem, the
lazy top-level package import, and string-key support."""

import random

import pytest

import repro
from conftest import mixed_queries, random_keys
from repro.api import FilterSpec, Workload, build_filter
from repro.core.design import FilterDesign
from repro.core.proteus import Proteus
from repro.filters.base import TrieOracle
from repro.keys.keyspace import IntegerKeySpace, StringKeySpace

WIDTH = 32


class TestLazyPackage:
    def test_import_repro_succeeds(self):
        assert repro.__version__

    def test_reexports_resolve(self):
        assert repro.Proteus is Proteus
        assert repro.IntegerKeySpace is IntegerKeySpace
        assert "Proteus" in dir(repro)

    def test_unknown_attribute_raises_attribute_error(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_an_export

    def test_trie_encoders_resolve_lazily(self):
        import repro.trie  # resolves lazily; the encoders are physical now

        from repro.trie.fst import FastSuccinctTrie

        assert repro.trie.FastSuccinctTrie is FastSuccinctTrie
        # Star-import pulls every encoder alongside the original names.
        namespace: dict = {}
        exec("from repro.trie import *", namespace)
        assert "ByteTrie" in namespace
        assert "FastSuccinctTrie" in namespace
        assert "LoudsDenseTrie" in namespace
        assert "LoudsSparseTrie" in namespace


class TestBuildAcceptance:
    @pytest.fixture(scope="class")
    def built(self):
        rng = random.Random(51)
        keys = random_keys(rng, 10_000, WIDTH)
        queries = mixed_queries(rng, keys, 1000, WIDTH)
        workload = Workload(keys, queries, key_space=IntegerKeySpace(WIDTH))
        filt = build_filter(FilterSpec("proteus", 14.0), workload.keys, workload)
        return keys, queries, filt

    def test_returns_configured_filter(self, built):
        keys, _, filt = built
        assert isinstance(filt, Proteus)
        assert isinstance(filt.design, FilterDesign)
        assert filt.num_keys == len(set(keys))
        assert 0.0 <= filt.expected_fpr <= 1.0

    def test_budget_respected(self, built):
        keys, _, filt = built
        budget = int(14 * len(set(keys)))
        # BitArray rounds the Bloom layer up to whole bytes.
        assert filt.size_in_bits() <= budget + 8

    def test_zero_false_negatives_points(self, built):
        keys, _, filt = built
        assert all(filt.may_contain(key) for key in keys)

    def test_zero_false_negatives_ranges(self, built):
        keys, queries, filt = built
        oracle = TrieOracle(keys, WIDTH)
        for lo, hi in queries:
            if oracle.may_intersect(lo, hi):
                assert filt.may_intersect(lo, hi)
        # Fresh ranges straddling known keys must also be positive.
        rng = random.Random(52)
        top = (1 << WIDTH) - 1
        for _ in range(300):
            key = keys[rng.randrange(len(keys))]
            lo = max(0, key - rng.randrange(0, 100))
            hi = min(top, key + rng.randrange(0, 100))
            assert filt.may_intersect(lo, hi)

    def test_wide_ranges_conservative(self, built):
        keys, _, filt = built
        # A range wider than the probe clamp must return True, never crash.
        assert filt.may_intersect(0, (1 << WIDTH) - 1)


class TestDirectConstruction:
    def test_explicit_design_layers(self):
        rng = random.Random(53)
        keys = random_keys(rng, 500, WIDTH)
        design = FilterDesign("proteus", 12, 24, 2_000, 6_000, 0.1)
        filt = Proteus(keys, WIDTH, design)
        assert all(filt.may_contain(key) for key in keys)
        with pytest.raises(ValueError):
            Proteus(keys, WIDTH, FilterDesign("proteus", 24, 12, 0, 100, 0.0))

    def test_trie_only_design(self):
        rng = random.Random(54)
        keys = random_keys(rng, 500, WIDTH)
        filt = Proteus(keys, WIDTH, FilterDesign("proteus", 10, 0, 2_000, 0, 0.0))
        assert all(filt.may_contain(key) for key in keys)
        oracle = TrieOracle(keys, WIDTH)
        for lo, hi in mixed_queries(rng, keys, 200, WIDTH):
            if oracle.may_intersect(lo, hi):
                assert filt.may_intersect(lo, hi)

    def test_empty_key_set(self):
        filt = Proteus([], WIDTH, FilterDesign("proteus", 0, 16, 0, 100, 0.0))
        assert not filt.may_contain(1)
        assert not filt.may_intersect(0, 100)


class TestStringKeys:
    def test_built_prfs_encode_raw_queries(self):
        # Regression: OnePBF/TwoPBF stored their key space but queried the
        # raw domain without encoding, crashing on string keys.  Kept on the
        # legacy ``build`` classmethod deliberately — this doubles as the pin
        # that the shim still works and announces its deprecation.
        from repro.core.prf import OnePBF, TwoPBF

        words = ["ab", "cd", "ef", "gh", "zz"]
        space = StringKeySpace.for_keys(words)
        for cls in (OnePBF, TwoPBF):
            with pytest.warns(DeprecationWarning, match=f"{cls.__name__}.build"):
                filt = cls.build(
                    words, [("aa", "ac"), ("x", "y")], bits_per_key=16, key_space=space
                )
            assert filt.may_contain("ab")
            assert filt.may_intersect("aa", "ac")
            assert all(filt.may_contain(w) for w in words)

    def test_string_workload_end_to_end(self):
        rng = random.Random(55)
        alphabet = "abcdef"
        words = sorted(
            {
                "".join(rng.choice(alphabet) for _ in range(rng.randrange(2, 6)))
                for _ in range(400)
            }
        )
        space = StringKeySpace.for_keys(words)
        queries = []
        for _ in range(150):
            a = "".join(rng.choice(alphabet) for _ in range(3))
            b = "".join(rng.choice(alphabet) for _ in range(3))
            lo, hi = sorted((a, b))
            queries.append((lo, hi))
        workload = Workload(words, queries, key_space=space)
        filt = Proteus.from_spec(FilterSpec("proteus", 14.0), workload.keys, workload)
        encoded = space.encode_many(words)
        oracle = TrieOracle(encoded, space.width)
        assert all(filt.may_contain(word) for word in words)
        for lo, hi in queries:
            if oracle.may_intersect(space.encode(lo), space.encode(hi)):
                assert filt.may_intersect(lo, hi)
