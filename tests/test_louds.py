"""Physical succinct tries: LOUDS navigation, sizes and integration.

Four layers of guarantees are pinned here:

* **navigation** — FastSuccinctTrie answers point and range probes exactly
  like the pointer ByteTrie it encodes, across every dense/sparse cutoff,
  including the edge cases the ISSUE calls out (empty trie, single key,
  all-keys-share-prefix, cutoff boundary) and rank/select round-trips;
* **build** — the vectorised uniform-prefix bulk build is byte-identical
  to the ByteTrie-walk build;
* **size** — measured footprints bracket the size model's prediction
  within the documented tolerance (and hit it exactly at the pinned
  layouts);
* **integration** — SuRF's ``physical=True`` mode and Proteus'
  ``trie_impl="fst"`` answer identically to their reference
  implementations with zero false negatives, through the registry.
"""

import random

import numpy as np
import pytest

from conftest import clustered_keys, mixed_queries, random_keys
from repro.api import FilterSpec, Workload, build_filter
from repro.core.proteus import Proteus
from repro.filters.base import TrieOracle, key_to_bytes
from repro.filters.surf import SuRF
from repro.trie.bitvector import RankSelectBitVector
from repro.trie.fst import FastSuccinctTrie, FSTPrefixIndex
from repro.trie.node_trie import ByteTrie
from repro.trie.size_model import (
    DENSE_BITS_PER_NODE,
    SPARSE_BITS_PER_EDGE,
    fst_prefix_cutoff,
    fst_size_estimate,
)
from repro.trie.sorted_index import SortedPrefixIndex
from repro.workloads.batch import EncodedKeySet, QueryBatch

WIDTH = 32

#: Documented measured/predicted slack, mirrored from
#: repro.evaluation.size_check.DEFAULT_TOLERANCE.
SIZE_TOLERANCE = 0.10


def _assert_matches_byte_trie(trie, fst, rng, width_bytes, samples=300):
    top = (1 << (8 * width_bytes)) - 1
    for _ in range(samples):
        key = rng.randrange(top + 1)
        encoded = key.to_bytes(width_bytes, "big")
        assert fst.match_prefix_of(encoded) == (
            trie.match_prefix_of(encoded) is not None
        ), encoded
        lo = rng.randrange(top)
        hi = min(top, lo + rng.randrange(1, 4096))
        lo_b, hi_b = lo.to_bytes(width_bytes, "big"), hi.to_bytes(width_bytes, "big")
        assert fst.range_overlaps(lo_b, hi_b) == trie.range_overlaps(lo_b, hi_b), (
            lo,
            hi,
        )


class TestRankSelect:
    def test_rank1_many_matches_scalar(self):
        rng = random.Random(31)
        bits = [rng.random() < 0.35 for _ in range(1037)]  # non-byte-aligned
        vector = RankSelectBitVector(bits)
        indices = np.arange(-3, len(bits) + 5)
        batch = vector.rank1_many(indices)
        assert list(batch) == [vector.rank1(int(i)) for i in indices]

    def test_select_rank_round_trip(self):
        rng = random.Random(32)
        bits = [rng.random() < 0.2 for _ in range(900)]
        vector = RankSelectBitVector(bits)
        for position, bit in enumerate(bits):
            if bit:
                # select1 of the rank *through* a set bit lands back on it.
                assert vector.select1(vector.rank1(position + 1)) == position
        for rank in range(1, vector.count_ones() + 1):
            position = vector.select1(rank)
            assert vector.get(position)
            assert vector.rank1(position + 1) == rank

    def test_get_many_matches_scalar(self):
        bits = [True, False, True, True, False, False, True]
        vector = RankSelectBitVector(bits)
        assert list(vector.get_many(np.arange(len(bits)))) == bits


class TestLoudsNavigation:
    @pytest.mark.parametrize("cutoff", [None, 0, "height"])
    def test_matches_byte_trie_brute_force(self, cutoff):
        rng = random.Random(41)
        width_bytes = 3
        prefixes = {
            bytes(rng.randrange(5) for _ in range(rng.randrange(1, width_bytes + 1)))
            for _ in range(80)
        }
        trie = ByteTrie(prefixes)
        resolved = trie.height if cutoff == "height" else cutoff
        fst = FastSuccinctTrie.from_byte_trie(trie, resolved)
        if resolved is not None:
            assert fst.cutoff == resolved
        assert len(fst) == trie.num_leaves
        _assert_matches_byte_trie(trie, fst, rng, width_bytes)

    def test_empty_trie(self):
        fst = FastSuccinctTrie.from_byte_trie(ByteTrie())
        assert len(fst) == 0 and fst.height == 0
        assert fst.size_in_bits() == 0
        assert not fst.match_prefix_of(b"\x00")
        assert not fst.range_overlaps(b"\x00", b"\xff")
        assert not fst.may_contain_many(np.array([0, 7], dtype=np.int64), 1).any()
        assert not fst.may_intersect_many(
            np.array([0], dtype=np.int64), np.array([255], dtype=np.int64), 1
        ).any()
        empty_bulk = FastSuccinctTrie.from_uniform_prefixes(
            np.zeros(0, dtype=np.int64), 4
        )
        assert len(empty_bulk) == 0 and empty_bulk.size_in_bits() == 0

    def test_single_key(self):
        fst = FastSuccinctTrie.from_prefixes([b"\x12\x34\x56"])
        # A lone 3-byte chain: sparse wins every level (10 < 512 bits).
        assert fst.cutoff == 0
        assert fst.size_in_bits() == 3 * SPARSE_BITS_PER_EDGE
        assert fst.match_prefix_of(b"\x12\x34\x56\x99")
        assert not fst.match_prefix_of(b"\x12\x34\x57")
        assert not fst.match_prefix_of(b"\x12\x34")  # key shorter than prefix
        assert fst.range_overlaps(b"\x12\x34\x00", b"\x12\x34\xff")
        assert not fst.range_overlaps(b"\x12\x35\x00", b"\x12\xff\xff")

    def test_all_keys_share_prefix(self):
        # Every key under one byte prefix: level 1 is a single edge, the
        # branching happens below — exercises deep sparse chains and the
        # dense/sparse crossing in one structure.
        rng = random.Random(43)
        keys = sorted({(0xAB << 16) | rng.randrange(1 << 8) for _ in range(64)})
        prefixes = [int(k).to_bytes(3, "big") for k in keys]
        trie = ByteTrie(prefixes)
        for cutoff in (0, 1, 2, 3):
            fst = FastSuccinctTrie.from_byte_trie(trie, cutoff)
            _assert_matches_byte_trie(trie, fst, rng, 3, samples=200)

    def test_cutoff_boundary_sizes(self):
        # 2-level trie, explicit cutoffs: measured size must be exactly the
        # per-level dense/sparse charge for that layout.
        trie = ByteTrie([b"aa", b"ab", b"b"])
        edges, internal = trie.level_counts()
        assert edges == [2, 2]
        for cutoff in (0, 1, 2):
            fst = FastSuccinctTrie.from_byte_trie(trie, cutoff)
            expected = sum(
                DENSE_BITS_PER_NODE * internal[level]
                if level < cutoff
                else SPARSE_BITS_PER_EDGE * edges[level]
                for level in range(len(edges))
            )
            assert fst.size_in_bits() == expected, cutoff
            breakdown = fst.size_breakdown()
            assert breakdown["dense"] + breakdown["sparse"] == expected
        with pytest.raises(ValueError):
            FastSuccinctTrie.from_byte_trie(trie, 3)

    def test_default_cutoff_minimises_over_prefixes(self):
        rng = random.Random(44)
        keys = random_keys(rng, 800, WIDTH)
        trie = ByteTrie(key_to_bytes(k, WIDTH) for k in keys)
        edges, internal = trie.level_counts()
        cutoff, total = fst_prefix_cutoff(edges, internal)
        fst = FastSuccinctTrie.from_byte_trie(trie)
        assert fst.cutoff == cutoff
        assert fst.size_in_bits() == total
        assert fst_size_estimate(edges, internal) <= total
        others = [
            FastSuccinctTrie.from_byte_trie(trie, c).size_in_bits()
            for c in range(len(edges) + 1)
        ]
        assert total == min(others)

    def test_batched_probes_match_scalar(self):
        rng = random.Random(45)
        keys = sorted({rng.randrange(1 << WIDTH) for _ in range(500)})
        fst = FastSuccinctTrie.from_uniform_prefixes(
            np.array(keys, dtype=np.int64), 4
        )
        probes = np.array(
            keys[:100] + [rng.randrange(1 << WIDTH) for _ in range(400)],
            dtype=np.int64,
        )
        scalar = [fst.match_prefix_of(int(k).to_bytes(4, "big")) for k in probes]
        assert list(fst.may_contain_many(probes, 4)) == scalar
        los, his = [], []
        for _ in range(400):
            lo = rng.randrange(1 << WIDTH)
            his.append(min((1 << WIDTH) - 1, lo + rng.randrange(1, 100_000)))
            los.append(lo)
        los = np.array(los, dtype=np.int64)
        his = np.array(his, dtype=np.int64)
        scalar = [
            fst.range_overlaps(int(lo).to_bytes(4, "big"), int(hi).to_bytes(4, "big"))
            for lo, hi in zip(los, his)
        ]
        assert list(fst.may_intersect_many(los, his, 4)) == scalar


class TestBulkBuild:
    @pytest.mark.parametrize("num_bytes", [1, 2, 4])
    def test_uniform_bulk_build_is_byte_identical(self, num_bytes):
        rng = random.Random(46)
        space = 1 << (8 * num_bytes)
        values = np.unique(
            np.array([rng.randrange(space) for _ in range(700)], dtype=np.int64)
        )
        reference_trie = ByteTrie(
            int(v).to_bytes(num_bytes, "big") for v in values.tolist()
        )
        for cutoff in (None, 0, num_bytes):
            bulk = FastSuccinctTrie.from_uniform_prefixes(values, num_bytes, cutoff)
            reference = FastSuccinctTrie.from_byte_trie(reference_trie, cutoff)
            assert bulk.cutoff == reference.cutoff
            assert bulk.size_in_bits() == reference.size_in_bits()
            assert (bulk._dense is None) == (reference._dense is None)
            if bulk._dense is not None:
                assert bulk._dense.to_bytes() == reference._dense.to_bytes()
            assert (bulk._sparse is None) == (reference._sparse is None)
            if bulk._sparse is not None:
                assert bulk._sparse.to_bytes() == reference._sparse.to_bytes()
                assert bulk._sparse.num_roots == reference._sparse.num_roots


class TestEncoderValidation:
    def test_dense_bitmap_sizes_checked(self):
        from repro.amq.bitarray import BitArray
        from repro.trie.louds_dense import LoudsDenseTrie

        with pytest.raises(ValueError, match="256 bits per node"):
            LoudsDenseTrie(BitArray(256), BitArray(512), 2)
        with pytest.raises(ValueError, match="non-negative"):
            LoudsDenseTrie(BitArray(0), BitArray(0), -1)

    def test_sparse_invariants_checked(self):
        from repro.amq.bitarray import BitArray
        from repro.trie.louds_sparse import LoudsSparseTrie

        labels = np.array([5, 7], dtype=np.uint8)
        with pytest.raises(ValueError, match="parallel"):
            LoudsSparseTrie(labels, BitArray(1), BitArray(2), 1)
        no_first = BitArray(2)
        with pytest.raises(ValueError, match="open a node"):
            LoudsSparseTrie(labels, BitArray(2), no_first, 1)
        first = BitArray(2)
        first.set(0)
        with pytest.raises(ValueError, match="non-negative"):
            LoudsSparseTrie(labels, BitArray(2), first, -1)
        descending = np.array([7, 5], dtype=np.uint8)
        with pytest.raises(ValueError, match="strictly increasing"):
            LoudsSparseTrie(descending, BitArray(2), first, 1)
        # Degenerate but legal: zero edges.
        empty = LoudsSparseTrie(
            np.zeros(0, dtype=np.uint8), BitArray(0), BitArray(0), 0
        )
        exists, _, _ = empty.probe_many(
            np.array([0], dtype=np.int64), np.array([0], dtype=np.int64)
        )
        assert not exists.any()
        assert empty.size_in_bits() == 0

    def test_uniform_bulk_build_validates_inputs(self):
        with pytest.raises(ValueError, match="byte length"):
            FastSuccinctTrie.from_uniform_prefixes(np.array([1], dtype=np.int64), 0)
        with pytest.raises(ValueError, match="cutoff"):
            FastSuccinctTrie.from_uniform_prefixes(
                np.array([1], dtype=np.int64), 2, cutoff=3
            )

    def test_rank1_many_on_empty_vector(self):
        vector = RankSelectBitVector([])
        assert list(vector.rank1_many(np.array([0, 5]))) == [0, 0]


class TestFSTPrefixIndex:
    def test_matches_sorted_index_brute_force(self):
        rng = random.Random(47)
        width, length = 24, 10
        keys = [rng.randrange(1 << width) for _ in range(400)]
        reference = SortedPrefixIndex.from_keys(keys, length, width)
        succinct = FSTPrefixIndex.from_keys(
            np.array(keys, dtype=np.int64), length, width
        )
        assert len(reference) == len(succinct)
        for prefix in range(1 << length):
            assert reference.contains(prefix) == succinct.contains(prefix)
        for _ in range(300):
            key = rng.randrange(1 << width)
            assert reference.contains_prefix_of(key) == succinct.contains_prefix_of(
                key
            )
            lo = rng.randrange(1 << width)
            hi = min((1 << width) - 1, lo + rng.randrange(1, 50_000))
            assert reference.overlaps(lo, hi) == succinct.overlaps(lo, hi)
        prefixes = np.array(
            [rng.randrange(1 << length) for _ in range(300)], dtype=np.int64
        )
        assert (
            succinct.contains_many(prefixes) == reference.contains_many(prefixes)
        ).all()
        los = np.array([rng.randrange(1 << width) for _ in range(300)], dtype=np.int64)
        his = np.minimum((1 << width) - 1, los + 9999)
        assert (
            succinct.overlaps_many(los, his) == reference.overlaps_many(los, his)
        ).all()

    def test_wide_key_space_falls_back(self):
        keys = [3, 1 << 70, (1 << 70) + 5, 1 << 79]
        reference = SortedPrefixIndex.from_keys(keys, 70, 80)
        succinct = FSTPrefixIndex.from_keys(keys, 70, 80)
        assert not succinct.is_vector
        for key in keys:
            assert succinct.contains_prefix_of(key)
        for lo, hi in [(0, 10), (1 << 60, 1 << 61), (1 << 70, (1 << 70) + 2)]:
            assert succinct.overlaps(lo, hi) == reference.overlaps(lo, hi)

    def test_validation(self):
        with pytest.raises(ValueError):
            FSTPrefixIndex([4], length=2, width=8)  # 4 needs 3 bits
        with pytest.raises(ValueError):
            FSTPrefixIndex([0], length=0, width=8)
        with pytest.raises(ValueError):
            FSTPrefixIndex([0], length=2, width=8).overlaps(5, 4)


class TestPhysicalSuRF:
    @pytest.fixture(scope="class")
    def workload(self):
        rng = random.Random(48)
        keys = random_keys(rng, 1500, WIDTH)
        queries = mixed_queries(rng, keys, 600, WIDTH)
        return keys, queries

    def test_zero_false_negatives_and_parity(self, workload):
        keys, queries = workload
        pointer = SuRF(keys, WIDTH)
        physical = SuRF(keys, WIDTH, physical=True)
        oracle = TrieOracle(keys, WIDTH)
        batch = QueryBatch.from_pairs(queries, WIDTH)
        truth = oracle.may_intersect_many(batch)
        answers = physical.may_intersect_many(batch)
        assert not (~answers & truth).any()
        assert (answers == pointer.may_intersect_many(batch)).all()
        assert physical.may_contain_many(np.array(keys, dtype=np.int64)).all()
        for lo, hi in queries[:150]:
            assert physical.may_intersect(lo, hi) == pointer.may_intersect(lo, hi)

    def test_measured_size_within_tolerance(self, workload):
        keys, _ = workload
        for max_depth in (2, 4):
            physical = SuRF(keys, WIDTH, max_depth, physical=True)
            predicted = physical.modelled_size_in_bits()
            measured = physical.size_in_bits()
            assert predicted <= measured <= predicted * (1 + SIZE_TOLERANCE)
            breakdown = physical.size_breakdown()
            assert breakdown["dense"] + breakdown["sparse"] == measured

    def test_from_spec_physical_param(self, workload):
        keys, queries = workload
        workload_bundle = Workload(
            EncodedKeySet(keys, WIDTH), QueryBatch.from_pairs(queries, WIDTH)
        )
        modelled = build_filter(
            FilterSpec("surf", 14.0), workload_bundle.keys, workload_bundle
        )
        physical = build_filter(
            FilterSpec("surf", 14.0, {"physical": True}),
            workload_bundle.keys,
            workload_bundle,
        )
        assert physical.physical and not modelled.physical
        assert physical.size_breakdown().keys() == {"dense", "sparse"}
        # Same keys, same depth rule: answers agree whenever depths agree.
        if physical.max_depth == modelled.max_depth:
            batch = workload_bundle.queries
            assert (
                physical.may_intersect_many(batch)
                == modelled.may_intersect_many(batch)
            ).all()

    def test_empty_and_single_key_filters(self):
        empty = SuRF([], WIDTH, physical=True)
        assert not empty.may_contain(3)
        assert not empty.may_intersect(0, (1 << WIDTH) - 1)
        assert empty.size_in_bits() == 0
        single = SuRF([123456], WIDTH, physical=True)
        assert single.may_contain(123456)
        assert single.may_intersect(0, (1 << WIDTH) - 1)


class TestProteusFstTrie:
    def test_fst_trie_layer_matches_sorted(self):
        rng = random.Random(49)
        keys = clustered_keys(rng, 2000, WIDTH)
        queries = mixed_queries(rng, keys, 800, WIDTH)
        workload = Workload(
            EncodedKeySet(keys, WIDTH), QueryBatch.from_pairs(queries, WIDTH)
        )
        sorted_impl = build_filter(
            FilterSpec("proteus", 16.0), workload.keys, workload
        )
        fst_impl = build_filter(
            FilterSpec(
                "proteus", 16.0, {"max_probes": 16, "seed": 0, "trie_impl": "fst"}
            ),
            workload.keys,
            workload,
        )
        assert fst_impl.trie_impl == "fst"
        assert fst_impl.design == sorted_impl.design
        batch = workload.queries
        assert (
            fst_impl.may_intersect_many(batch)
            == sorted_impl.may_intersect_many(batch)
        ).all()
        probes = np.array(
            keys[:300] + [rng.randrange(1 << WIDTH) for _ in range(300)],
            dtype=np.int64,
        )
        assert (
            fst_impl.may_contain_many(probes) == sorted_impl.may_contain_many(probes)
        ).all()
        for lo, hi in queries[:150]:
            assert fst_impl.may_intersect(lo, hi) == sorted_impl.may_intersect(lo, hi)
        if fst_impl.design.trie_depth > 0:
            assert fst_impl.trie_layer_measured_bits() > 0

    def test_unknown_trie_impl_rejected(self):
        from repro.core.design import FilterDesign

        design = FilterDesign("proteus", 8, 16, 100, 1000, 0.1)
        with pytest.raises(ValueError, match="trie_impl"):
            Proteus([1, 2, 3], WIDTH, design, trie_impl="fancy")


class TestSizeCheckDriver:
    def test_tiny_run_and_check(self, tmp_path, capsys):
        from repro.evaluation.size_check import check_report, main, run_size_check

        report = run_size_check(
            num_keys=400,
            num_queries=200,
            key_dists=("uniform",),
            query_families=("mixed",),
        )
        assert report["summary"]["false_negatives"] == 0
        assert report["summary"]["parity_mismatches"] == 0
        assert report["summary"]["size_violations"] == 0
        assert check_report(report) == []
        out = tmp_path / "size_check.json"
        code = main(["--keys", "300", "--queries", "150", "--check",
                     "--output", str(out)])
        assert code == 0
        assert out.exists()
        capsys.readouterr()

    def test_check_report_flags_violations(self):
        from repro.evaluation.size_check import check_report

        report = {
            "config": {"tolerance": 0.05},
            "summary": {
                "size_violations": 1,
                "worst_measured_over_predicted": 1.2,
                "false_negatives": 2,
                "parity_mismatches": 3,
            },
        }
        violations = check_report(report)
        assert len(violations) == 3
