"""The repro.kernels backend registry and the kernels' numpy-parity contract.

numpy is the reference backend: it defines each kernel's semantics, and any
compiled backend (cc, numba) present in the environment must match it bit
for bit on the same inputs.  These tests also pin the registry's selection
rules — explicit argument > ``REPRO_KERNEL_BACKEND`` > preference order,
silent fallback for known-but-unavailable backends, ValueError for unknown
names — and the dispatch counters exposed through ``repro.obs``.
"""

import random

import numpy as np
import pytest

import repro.kernels as kernels
from repro.amq.bitarray import BitArray
from repro.amq.bloom import BloomFilter
from repro.amq.hashing import premixed_pair_seeds
from repro.evaluation.kernel_bench import _check_regressions, run_kernel_bench
from repro.obs.metrics import MetricsRegistry
from repro.trie.bitvector import RankSelectBitVector
from repro.trie.fst import FastSuccinctTrie
from repro.trie.node_trie import ByteTrie

COMPILED = [name for name in kernels.available_backends() if name != "numpy"]


# --------------------------------------------------------------------- #
# Registry                                                              #
# --------------------------------------------------------------------- #


def test_numpy_backend_is_always_available():
    assert "numpy" in kernels.available_backends()


def test_unknown_backend_raises_everywhere():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        kernels.get_backend_name("no-such-backend")
    with pytest.raises(ValueError, match="unknown kernel backend"):
        kernels.bloom_positions(
            np.array([1], dtype=np.int64), 1, 3, 64, 2, backend="no-such-backend"
        )


def test_known_but_unavailable_backend_falls_back_silently():
    # numba is an extras dependency; whether or not it is installed, asking
    # for it must resolve to *some* backend without raising.
    assert kernels.get_backend_name("numba") in ("numba", "numpy")


def test_env_var_selects_default_backend(monkeypatch):
    monkeypatch.setenv(kernels.ENV_VAR, "numpy")
    kernels.reset_default_backend()
    try:
        assert kernels.get_backend_name() == "numpy"
    finally:
        monkeypatch.delenv(kernels.ENV_VAR)
        kernels.reset_default_backend()


def test_use_backend_forces_and_restores():
    before = kernels.get_backend_name()
    with kernels.use_backend("numpy") as forced:
        assert forced == "numpy"
        assert kernels.get_backend_name() == "numpy"
    assert kernels.get_backend_name() == before


def test_dispatch_counters_flow_into_metrics():
    registry = MetricsRegistry()
    kernels.attach_metrics(registry)
    try:
        with kernels.use_backend("numpy"):
            kernels.bloom_positions(np.array([5], dtype=np.int64), 1, 3, 64, 2)
    finally:
        kernels.attach_metrics(None)
    counters = registry.to_dict()["counters"]
    assert counters["kernels.dispatch.numpy.bloom_positions"] == 1
    # Detached: further dispatches must not touch the registry.
    kernels.bloom_positions(np.array([5], dtype=np.int64), 1, 3, 64, 2)
    assert registry.to_dict()["counters"] == counters


# --------------------------------------------------------------------- #
# Kernel semantics (numpy reference)                                    #
# --------------------------------------------------------------------- #


def test_bloom_positions_matches_scalar_probe_sequence():
    bloom = BloomFilter(4_097, 300, seed=13)
    values = np.array([0, 1, 9_999, (1 << 62) + 17], dtype=np.int64)
    s1, s2 = premixed_pair_seeds(13)
    matrix = kernels.bloom_positions(
        values, s1, s2, bloom.num_bits, bloom.num_hashes, backend="numpy"
    )
    for column, value in enumerate(values.tolist()):
        assert matrix[:, column].tolist() == list(bloom._positions(value))


def test_bitvector_kernel_matches_get_and_rank_pair():
    rng = np.random.default_rng(3)
    for num_bits in (1, 7, 8, 9, 4_093):
        bits = BitArray(num_bits)
        bits.set_many(np.nonzero(rng.random(num_bits) < 0.4)[0])
        vector = RankSelectBitVector(bits)
        positions = np.concatenate(
            [[0, num_bits - 1], rng.integers(0, num_bits, size=200)]
        )
        got_bits, got_ranks = vector.get_and_rank1_many(positions)
        assert (got_bits == vector.get_many(positions)).all(), num_bits
        assert (got_ranks == vector.rank1_many(positions + 1)).all(), num_bits


def test_get_and_rank1_many_validates_and_handles_empty():
    vector = RankSelectBitVector([True, False, True])
    got_bits, got_ranks = vector.get_and_rank1_many(np.array([], dtype=np.int64))
    assert got_bits.size == 0 and got_ranks.size == 0
    with pytest.raises(IndexError):
        vector.get_and_rank1_many(np.array([3], dtype=np.int64))
    with pytest.raises(IndexError):
        vector.get_and_rank1_many(np.array([-1], dtype=np.int64))


def _random_prefix_set(rng: random.Random) -> list[bytes]:
    out = set()
    for _ in range(rng.randrange(1, 120)):
        length = rng.randint(1, 5)
        out.add(bytes(rng.randrange(256) for _ in range(length)))
    return sorted(out)


def test_bulk_fst_builder_matches_byte_trie_encoding():
    # trie_levels' end-to-end contract: the kernel-backed builder must
    # reproduce the ByteTrie walk's succinct payload byte for byte, on
    # variable-length, covering-pruned inputs.
    rng = random.Random(29)
    for _ in range(10):
        prefixes = _random_prefix_set(rng)
        reference = FastSuccinctTrie.from_byte_trie(ByteTrie(prefixes))
        bulk = FastSuccinctTrie.from_sorted_prefix_bytes(prefixes)
        assert bulk.cutoff == reference.cutoff
        assert bulk.num_leaves == reference.num_leaves
        assert bulk.size_breakdown() == reference.size_breakdown()
        assert bulk.modelled_size_in_bits() == reference.modelled_size_in_bits()
        for half in ("_dense", "_sparse"):
            ours, theirs = getattr(bulk, half), getattr(reference, half)
            assert (ours is None) == (theirs is None)
            if ours is not None:
                assert ours.to_bytes() == theirs.to_bytes()


def test_bulk_fst_builder_rejects_empty_prefix():
    with pytest.raises(ValueError, match="empty prefix"):
        FastSuccinctTrie.from_sorted_prefix_bytes([b""])


def test_bloom_object_fallback_batches_identically():
    # Satellite: the non-word fallback hashes scalar but probes in one
    # batched pass — answers and stored bytes must equal the scalar loop.
    wide = [1 << 70, (1 << 70) + 5, 3, 1 << 99]
    scalar = BloomFilter(2_048, len(wide), seed=3)
    batched = BloomFilter(2_048, len(wide), seed=3)
    for item in wide:
        scalar.add(item)
    batched.add_many(np.array(wide, dtype=object))
    assert scalar.bits.to_bytes() == batched.bits.to_bytes()
    assert batched.inserted_items == len(wide)
    probes = wide + [7, (1 << 80) + 1]
    answers = batched.contains_many(np.array(probes, dtype=object))
    assert list(answers) == [scalar.contains(item) for item in probes]
    assert batched.contains_many(np.array([], dtype=object)).size == 0


# --------------------------------------------------------------------- #
# Compiled backends vs the numpy reference                              #
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", COMPILED)
def test_compiled_bloom_kernels_are_bit_identical(backend):
    rng = np.random.default_rng(5)
    values = rng.integers(0, 1 << 62, size=2_000, dtype=np.int64)
    s1, s2 = premixed_pair_seeds(11)
    num_bits, k = 16_384, 7
    reference = np.zeros(num_bits // 8, dtype=np.uint8)
    compiled = np.zeros(num_bits // 8, dtype=np.uint8)
    kernels.bloom_add(reference, num_bits, values, s1, s2, k, backend="numpy")
    kernels.bloom_add(compiled, num_bits, values, s1, s2, k, backend=backend)
    assert reference.tobytes() == compiled.tobytes()
    probes = np.concatenate(
        [values[:500], rng.integers(0, 1 << 62, size=500, dtype=np.int64)]
    )
    want = kernels.bloom_contains(
        reference, num_bits, probes, s1, s2, k, backend="numpy"
    )
    got = kernels.bloom_contains(
        reference, num_bits, probes, s1, s2, k, backend=backend
    )
    assert (want == got).all()


@pytest.mark.parametrize("backend", COMPILED)
def test_compiled_bitvector_kernel_is_bit_identical(backend):
    rng = np.random.default_rng(6)
    for num_bits in (8, 13, 9_001):
        bits = BitArray(num_bits)
        bits.set_many(np.nonzero(rng.random(num_bits) < 0.5)[0])
        vector = RankSelectBitVector(bits)
        positions = np.concatenate(
            [[0, num_bits - 1], rng.integers(0, num_bits, size=300)]
        )
        want = kernels.bitvector_get_rank1(
            vector._byte_buffer, vector._byte_cumulative, num_bits, positions,
            backend="numpy",
        )
        got = kernels.bitvector_get_rank1(
            vector._byte_buffer, vector._byte_cumulative, num_bits, positions,
            backend=backend,
        )
        assert (want[0] == got[0]).all() and (want[1] == got[1]).all()


@pytest.mark.parametrize("backend", COMPILED)
def test_compiled_trie_levels_kernel_is_bit_identical(backend):
    rng = random.Random(31)
    for _ in range(8):
        prefixes = _random_prefix_set(rng)
        with kernels.use_backend("numpy"):
            want = FastSuccinctTrie.from_sorted_prefix_bytes(prefixes)
        with kernels.use_backend(backend):
            got = FastSuccinctTrie.from_sorted_prefix_bytes(prefixes)
        assert want.size_breakdown() == got.size_breakdown()
        for half in ("_dense", "_sparse"):
            ours, theirs = getattr(want, half), getattr(got, half)
            if ours is not None:
                assert ours.to_bytes() == theirs.to_bytes()


# --------------------------------------------------------------------- #
# kernel_bench harness                                                  #
# --------------------------------------------------------------------- #


def test_kernel_bench_reports_parity_and_speedups():
    # rounds=2 also covers the conservative-floor aggregation (the
    # committed reference is a per-round minimum of speedups).
    report = run_kernel_bench(scale=0.005, seed=3, repeats=1, rounds=2)
    assert report["workload"]["rounds"] == 2
    assert set(report["benchmarks"]) == {
        "bloom_add", "bloom_contains", "bitvector_get_rank1", "trie_levels",
    }
    for kernel_name, parity in report["parity"].items():
        assert all(parity.values()), kernel_name
    for backend in report["backends"]:
        if backend == "numpy":
            continue
        for kernel_name in report["benchmarks"]:
            assert report["speedups"][kernel_name][backend] > 0


def test_kernel_bench_regression_check():
    current = {"speedups": {"bloom_add": {"cc": 2.0}}}
    committed = {"speedups": {"bloom_add": {"cc": 3.0}, "trie_levels": {"cc": 9.0}}}
    # trie_levels missing from the current report: skipped, not failed.
    failures = _check_regressions(current, committed, tolerance=0.2)
    assert set(failures) == {"bloom_add.cc"}
    assert failures["bloom_add.cc"] == (2.0, pytest.approx(2.4))
    assert not _check_regressions(current, committed, tolerance=0.5)
