"""Unit tests for the trie substrate: byte trie (including the unsorted-insert
regression), rank/select vector, sorted prefix index and size models."""

import random

import pytest

from repro.trie.bitvector import RankSelectBitVector
from repro.trie.node_trie import ByteTrie
from repro.trie.size_model import (
    binary_trie_size_estimate,
    fst_size_estimate,
    louds_dense_level_bits,
    louds_sparse_level_bits,
)
from repro.trie.sorted_index import SortedPrefixIndex


class TestByteTrie:
    def test_prefix_free_construction(self):
        trie = ByteTrie([b"ab", b"a", b"abc", b"b"])
        assert sorted(trie.leaves()) == [b"a", b"b"]
        assert trie.num_leaves == 2
        assert trie.height == 1

    def test_match_and_range_brute_force(self):
        rng = random.Random(21)
        prefixes = {
            bytes(rng.randrange(4) for _ in range(rng.randrange(1, 4)))
            for _ in range(60)
        }
        trie = ByteTrie(prefixes)
        stored = set(trie.leaves())
        width_bytes = 3

        def covers(key: bytes) -> bool:
            return any(key[: len(p)] == p for p in stored)

        for _ in range(300):
            key = bytes(rng.randrange(4) for _ in range(width_bytes))
            expected = next(
                (p for p in sorted(stored, key=len) if key[: len(p)] == p), None
            )
            assert trie.match_prefix_of(key) == expected
        top = (1 << (8 * width_bytes)) - 1
        stored_list = sorted(stored)
        for iteration in range(200):
            if iteration % 2:
                lo_int = rng.randrange(top)
            else:
                # Anchor near a stored prefix interval to exercise positives.
                anchor = rng.choice(stored_list)
                base = int.from_bytes(
                    anchor.ljust(width_bytes, b"\x00"), "big"
                )
                lo_int = max(0, min(top - 1, base + rng.randrange(-1024, 1024)))
            hi_int = min(top, lo_int + rng.randrange(1, 2048))
            lo = lo_int.to_bytes(width_bytes, "big")
            hi = hi_int.to_bytes(width_bytes, "big")
            expected = any(
                covers(v.to_bytes(width_bytes, "big"))
                for v in range(lo_int, hi_int + 1)
            )
            assert trie.range_overlaps(lo, hi) == expected

    def test_unsorted_insert_prunes_covered_leaves(self):
        # Regression: inserting a prefix *above* existing longer leaves must
        # discard them from num_leaves/height, not just detach them.
        trie = ByteTrie([b"ab", b"ax", b"b"])
        assert trie.num_leaves == 3
        assert trie.height == 2
        trie.insert(b"a")
        assert sorted(trie.leaves()) == [b"a", b"b"]
        assert trie.num_leaves == 2
        assert trie.height == 1

    def test_duplicate_insert_not_double_counted(self):
        trie = ByteTrie([b"abc"])
        trie.insert(b"abc")
        assert trie.num_leaves == 1

    def test_covered_insert_is_dropped(self):
        trie = ByteTrie([b"a"])
        trie.insert(b"abc")
        assert sorted(trie.leaves()) == [b"a"]
        assert trie.num_leaves == 1
        assert trie.height == 1

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            ByteTrie([b""])

    def test_level_accounting(self):
        trie = ByteTrie([b"aa", b"ab", b"b"])
        assert trie.edges_per_level() == [2, 2]
        assert len(trie) == 3


class TestRankSelectBitVector:
    def test_rank_select_brute_force(self):
        rng = random.Random(22)
        bits = [rng.random() < 0.4 for _ in range(1500)]
        vector = RankSelectBitVector(bits)
        prefix_ones = 0
        positions = []
        for index, bit in enumerate(bits):
            assert vector.rank1(index) == prefix_ones
            assert vector.rank0(index) == index - prefix_ones
            if bit:
                prefix_ones += 1
                positions.append(index)
        assert vector.count_ones() == prefix_ones
        for rank, position in enumerate(positions, start=1):
            assert vector.select1(rank) == position
        with pytest.raises(ValueError):
            vector.select1(0)
        with pytest.raises(ValueError):
            vector.select1(prefix_ones + 1)


class TestSortedPrefixIndex:
    def test_contains_and_overlaps_brute_force(self):
        rng = random.Random(23)
        width, length = 16, 6
        keys = rng.sample(range(1 << width), 400)
        index = SortedPrefixIndex.from_keys(keys, length, width)
        stored = {k >> (width - length) for k in keys}
        assert len(index) == len(stored)
        for prefix in range(1 << length):
            assert index.contains(prefix) == (prefix in stored)
        for _ in range(300):
            lo = rng.randrange(1 << width)
            hi = min((1 << width) - 1, lo + rng.randrange(1, 5000))
            expected = any(
                lo >> (width - length) <= p <= hi >> (width - length)
                for p in stored
            )
            assert index.overlaps(lo, hi) == expected

    def test_validation(self):
        with pytest.raises(ValueError):
            SortedPrefixIndex([4], length=2, width=8)  # 4 needs 3 bits
        with pytest.raises(ValueError):
            SortedPrefixIndex([0], length=0, width=8)
        with pytest.raises(ValueError):
            SortedPrefixIndex([0], length=2, width=8).overlaps(5, 4)


class TestSizeModels:
    def test_binary_trie_size_monotone(self):
        counts = [1, 2, 4, 8, 16, 20, 20, 20]
        sizes = [binary_trie_size_estimate(counts, d) for d in range(len(counts))]
        assert sizes[0] == 0
        assert sizes == sorted(sizes)
        assert sizes[3] == 2 * (1 + 2 + 4)
        with pytest.raises(ValueError):
            binary_trie_size_estimate(counts, len(counts))

    def test_fst_size_picks_cheaper_encoding_per_level(self):
        # A level with 1 node and 200 edges: dense (512) beats sparse (2000).
        # A level with 100 nodes and 120 edges: sparse (1200) beats dense.
        assert fst_size_estimate([200, 120], [1, 100]) == 512 + 1200
        assert louds_dense_level_bits(1) == 512
        assert louds_sparse_level_bits(3) == 30
