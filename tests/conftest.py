"""Shared workload generators for the randomized test-suite.

Everything is seeded: a failing test reproduces byte-for-byte.  Queries are
inclusive ``(lo, hi)`` pairs; point queries are ``(k, k)``.  The mixed
generator combines uniform ranges (mostly empty, far from keys) with
correlated near-miss ranges (just above an existing key, sharing a long
prefix with it) — the two workload families the paper designs against.
"""

from __future__ import annotations

import random
from typing import Sequence


def random_keys(rng: random.Random, count: int, width: int) -> list[int]:
    """Return ``count`` distinct uniform ``width``-bit keys."""
    return rng.sample(range(1 << width), count)


def uniform_queries(
    rng: random.Random, count: int, width: int, max_range: int
) -> list[tuple[int, int]]:
    """Uniform range queries of span ``1..max_range``."""
    top = (1 << width) - 1
    queries = []
    for _ in range(count):
        lo = rng.randrange(top - max_range)
        queries.append((lo, lo + rng.randrange(1, max_range + 1)))
    return queries


def point_queries(rng: random.Random, count: int, width: int) -> list[tuple[int, int]]:
    """Uniform point queries."""
    return [(k, k) for k in (rng.randrange(1 << width) for _ in range(count))]


def correlated_queries(
    rng: random.Random,
    keys: Sequence[int],
    count: int,
    width: int,
    max_offset: int = 32,
    max_range: int = 64,
) -> list[tuple[int, int]]:
    """Near-miss ranges starting just above an existing key."""
    top = (1 << width) - 1
    queries = []
    for _ in range(count):
        key = keys[rng.randrange(len(keys))]
        lo = min(top - 1, key + 1 + rng.randrange(max_offset))
        queries.append((lo, min(top, lo + rng.randrange(1, max_range + 1))))
    return queries


def mixed_queries(
    rng: random.Random, keys: Sequence[int], count: int, width: int
) -> list[tuple[int, int]]:
    """An even blend of uniform ranges, point queries and near-miss ranges."""
    third = count // 3
    return (
        uniform_queries(rng, third, width, 1000)
        + point_queries(rng, third, width)
        + correlated_queries(rng, keys, count - 2 * third, width)
    )
