"""Shared workload generators for the randomized test-suite.

The sampling itself lives in :mod:`repro.workloads.generators` — the
package the test-suite is exercising — and is re-exported here so tests
keep importing ``from conftest import ...``.  The generator implementations
(and therefore every seeded workload) are unchanged from the original
hand-rolled conftest versions: same ``random.Random`` call sequences, same
seeds, byte-for-byte identical workloads.
"""

from __future__ import annotations

from repro.workloads.generators import (
    clustered_keys,
    correlated_queries,
    mixed_queries,
    point_queries,
    random_keys,
    uniform_queries,
    zipf_keys,
)

__all__ = [
    "random_keys",
    "zipf_keys",
    "clustered_keys",
    "uniform_queries",
    "point_queries",
    "correlated_queries",
    "mixed_queries",
]
