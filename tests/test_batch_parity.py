"""Scalar-vs-batched parity: the batched execution layer must be a pure
re-statement of the scalar reference paths.

Three layers of parity are pinned:

* every filter's ``may_contain_many`` / ``may_intersect_many`` equals a
  loop over the scalar ``may_contain`` / ``may_intersect`` — including the
  filters that only have the base-class fallback (SuRF, Rosetta) and the
  object-dtype fallback for wide key spaces;
* the vectorised CPFPR model agrees with the scalar model (``vectorize=
  False``) to float-summation noise across a grid of design points;
* Algorithm 1 picks the *identical design point* through either model on
  seeded workloads (expected FPR may differ in the last ulps — the design
  fields must match exactly).

Since PR 7 the batched paths dispatch through ``repro.kernels``; the
filter-parity tests therefore run once per *available backend* (forced via
``kernels.use_backend``), and a dedicated cross-backend test pins that
every backend builds byte-identical structures, returns identical batch
answers, and leads Algorithm 1 to the identical design point.
"""

import random

import numpy as np
import pytest

import repro.kernels as kernels
from conftest import correlated_queries, mixed_queries, random_keys
from repro.amq.bloom import BloomFilter
from repro.api import FilterSpec, Workload, build_filter
from repro.core.cpfpr import CPFPRModel
from repro.core.design import design_one_pbf, design_proteus, design_two_pbf
from repro.core.prf import OnePBF, TwoPBF
from repro.core.proteus import Proteus
from repro.filters.base import TrieOracle
from repro.filters.prefix_bloom import PrefixBloomFilter
from repro.filters.rosetta import Rosetta
from repro.filters.surf import SuRF
from repro.keys.keyspace import IntegerKeySpace
from repro.workloads.batch import QueryBatch

WIDTH = 32
NUM_KEYS = 2000


@pytest.fixture(scope="module")
def workload():
    rng = random.Random(71)
    keys = random_keys(rng, NUM_KEYS, WIDTH)
    queries = mixed_queries(rng, keys, 600, WIDTH)
    probes = keys[:200] + [rng.randrange(1 << WIDTH) for _ in range(400)]
    return keys, queries, probes


def _self_designed(family, keys, queries, bits_per_key=12.0, width=WIDTH):
    """Build a self-designing family through the registry protocol."""
    workload = Workload(keys, queries, key_space=IntegerKeySpace(width))
    return build_filter(FilterSpec(family, float(bits_per_key)), workload.keys, workload)


FILTER_FACTORIES = {
    "oracle": lambda keys, queries: TrieOracle(keys, WIDTH),
    "prefix_bloom": lambda keys, queries: PrefixBloomFilter(
        keys, WIDTH, prefix_len=16, num_bits=24_000
    ),
    "surf": lambda keys, queries: SuRF(keys, WIDTH),
    "surf_physical": lambda keys, queries: SuRF(keys, WIDTH, physical=True),
    "rosetta": lambda keys, queries: Rosetta(
        keys, WIDTH, total_bits=32_000, num_levels=16
    ),
    "one_pbf": lambda keys, queries: _self_designed("1pbf", keys, queries),
    "two_pbf": lambda keys, queries: _self_designed("2pbf", keys, queries),
    "proteus": lambda keys, queries: _self_designed("proteus", keys, queries),
}


@pytest.mark.parametrize("backend", kernels.available_backends())
@pytest.mark.parametrize("name", sorted(FILTER_FACTORIES))
def test_filter_batch_equals_scalar_loop(name, backend, workload):
    keys, queries, probes = workload
    with kernels.use_backend(backend):
        filt = FILTER_FACTORIES[name](keys, queries)
        point_batch = filt.may_contain_many(np.array(probes, dtype=np.int64))
        point_loop = [filt.may_contain(key) for key in probes]
        range_batch = filt.may_intersect_many(QueryBatch.from_pairs(queries, WIDTH))
        range_loop = [filt.may_intersect(lo, hi) for lo, hi in queries]
    assert point_batch.dtype == bool and list(point_batch) == point_loop, name
    assert range_batch.dtype == bool and list(range_batch) == range_loop, name


@pytest.fixture(scope="module")
def byte_workload():
    """A variable-length byte-string workload (bundled DBLP-style corpus)."""
    from repro.workloads import load_dataset

    workload = load_dataset("dblp", num_keys=1200, num_queries=400, seed=9)
    rng = random.Random(83)
    raw = workload.keys.as_list()
    probes = rng.sample(raw, 150) + [key[:-2] + b"zz" for key in rng.sample(raw, 150)]
    return workload, probes


#: Same families as FILTER_FACTORIES, but keyed by ByteKeySet workloads —
#: the fixed baselines coerce raw byte keys, the self-designing families
#: go through the registry (spec params default as in FILTER_FACTORIES).
BYTE_FILTER_FACTORIES = {
    "oracle": lambda wl: TrieOracle(wl.keys.keys, wl.width),
    "prefix_bloom": lambda wl: build_filter(
        FilterSpec("prefix_bloom", 12.0), wl.keys, wl
    ),
    "surf": lambda wl: build_filter(FilterSpec("surf", 12.0), wl.keys, wl),
    "rosetta": lambda wl: build_filter(FilterSpec("rosetta", 12.0), wl.keys, wl),
    "one_pbf": lambda wl: build_filter(FilterSpec("1pbf", 12.0), wl.keys, wl),
    "two_pbf": lambda wl: build_filter(FilterSpec("2pbf", 12.0), wl.keys, wl),
    "proteus": lambda wl: build_filter(FilterSpec("proteus", 12.0), wl.keys, wl),
}


@pytest.mark.parametrize("backend", kernels.available_backends())
@pytest.mark.parametrize("name", sorted(BYTE_FILTER_FACTORIES))
def test_byte_filter_batch_equals_scalar_loop(name, backend, byte_workload):
    # Byte-mode parity: batched probes take raw byte strings (S-dtype rows);
    # the scalar reference speaks the padded big-integer encoded domain.
    workload, probes = byte_workload
    space = workload.key_space
    with kernels.use_backend(backend):
        filt = BYTE_FILTER_FACTORIES[name](workload)
        point_batch = filt.may_contain_many(
            np.array(probes, dtype=workload.keys.keys.dtype)
        )
        point_loop = [filt.may_contain(space.encode(probe)) for probe in probes]
        range_batch = filt.may_intersect_many(workload.queries)
        range_loop = [
            filt.may_intersect(lo, hi) for lo, hi in workload.queries.pairs()
        ]
    assert point_batch.dtype == bool and list(point_batch) == point_loop, name
    assert range_batch.dtype == bool and list(range_batch) == range_loop, name
    # Zero false negatives on the keys themselves, probed as raw bytes.
    assert filt.may_contain_many(workload.keys).all(), name


def _backend_snapshot(keys, queries, probes) -> dict:
    """Everything a kernel backend touches, reduced to comparable bytes."""
    point = np.array(probes, dtype=np.int64)
    batch = QueryBatch.from_pairs(queries, WIDTH)
    bloom = BloomFilter(20_000, len(keys), seed=5)
    bloom.add_many(np.array(keys, dtype=np.int64))
    surf = SuRF(keys, WIDTH, physical=True)
    fst = surf._fst
    model = CPFPRModel(keys, WIDTH, queries)
    design = design_proteus(model, 12 * len(keys))
    proteus = Proteus(np.array(keys, dtype=np.int64), WIDTH, design)
    return {
        "bloom_bits": bloom.bits.to_bytes(),
        "bloom_answers": bloom.contains_many(point).tobytes(),
        "fst_dense": None if fst._dense is None else fst._dense.to_bytes(),
        "fst_sparse": None if fst._sparse is None else fst._sparse.to_bytes(),
        "surf_answers": surf.may_intersect_many(batch).tobytes(),
        "design": (
            design.kind, design.trie_depth, design.bloom_prefix_len,
            design.trie_bits, design.bloom_bits,
        ),
        "proteus_answers": proteus.may_intersect_many(batch).tobytes(),
    }


def test_every_backend_is_bit_identical_to_numpy(workload):
    # The registry contract: numpy defines kernel semantics; a compiled
    # backend may only be faster, never different — in stored filter bytes,
    # in batch answers, or in the design point Algorithm 1 lands on.
    keys, queries, probes = workload
    with kernels.use_backend("numpy"):
        reference = _backend_snapshot(keys, queries, probes)
    for backend in kernels.available_backends():
        if backend == "numpy":
            continue
        with kernels.use_backend(backend):
            snapshot = _backend_snapshot(keys, queries, probes)
        for field, expected in reference.items():
            assert snapshot[field] == expected, (backend, field)


def test_batch_accepts_plain_pair_iterables(workload):
    keys, queries, _ = workload
    filt = PrefixBloomFilter(keys, WIDTH, prefix_len=16, num_bits=24_000)
    from_pairs = filt.may_intersect_many(queries)
    from_batch = filt.may_intersect_many(QueryBatch.from_pairs(queries, WIDTH))
    assert (from_pairs == from_batch).all()


def test_empty_filter_batch_answers():
    filt = PrefixBloomFilter([], WIDTH, prefix_len=16, num_bits=1024)
    assert not filt.may_contain_many([1, 2, 3]).any()
    assert not filt.may_intersect_many([(0, 5), (9, 9)]).any()
    oracle = TrieOracle([], WIDTH)
    assert not oracle.may_intersect_many([(0, (1 << WIDTH) - 1)]).any()


def test_one_pbf_wide_space_batch_takes_encoded_keys():
    # Regression: the object-dtype fallback used to route already-encoded
    # keys back through OnePBF.may_contain, which re-encodes raw keys —
    # double-encoding crashed or produced false negatives.
    from repro.keys.keyspace import StringKeySpace
    from repro.workloads.batch import EncodedKeySet

    words = ["strawberry-fields", "marmalade-skies", "tangerine-trees"]
    space = StringKeySpace.for_keys(words)
    # Encode through the space explicitly: this pins the *object-dtype*
    # EncodedKeySet route (ByteKeySet coercion would sidestep the fallback).
    workload = Workload(
        EncodedKeySet.from_raw(words, space),
        QueryBatch.from_raw([("a", "b"), ("tang", "tanh")], space),
        key_space=space,
    )
    filt = OnePBF.from_spec(FilterSpec("1pbf", 16.0), workload.keys, workload)
    encoded = [space.encode(word) for word in words]
    assert filt.may_contain_many(encoded).all()
    # The batch API speaks the encoded domain; the scalar API encodes raw
    # keys itself — the two must agree query-for-query.
    raw_queries = [("tang", "tanh"), ("a", "b")]
    batch = QueryBatch.from_raw(raw_queries, space)
    assert not batch.is_vector
    assert list(filt.may_intersect_many(batch)) == [
        filt.may_intersect(lo, hi) for lo, hi in raw_queries
    ]


def test_width_63_full_space_query_does_not_overflow():
    # Regression: the slot count (span + 1) of the full-space query in a
    # 63-bit space overflowed int64, crashing the batched path where the
    # scalar path returned the clamped conservative True.
    width = 63
    top = (1 << width) - 1
    keys = [5, 1000, 1 << 62]
    full_space = [(0, top), (1, top - 1)]
    pbf = PrefixBloomFilter(keys, width, prefix_len=width, num_bits=4096)
    assert list(pbf.may_intersect_many(full_space)) == [
        pbf.may_intersect(lo, hi) for lo, hi in full_space
    ]
    proteus = _self_designed(
        "proteus", keys, full_space + [(7, 9)], bits_per_key=16, width=width
    )
    assert list(proteus.may_intersect_many(full_space)) == [
        proteus.may_intersect(lo, hi) for lo, hi in full_space
    ]
    model = CPFPRModel(keys, width, full_space + [(7, 9)])
    scalar = CPFPRModel(keys, width, full_space + [(7, 9)], vectorize=False)
    assert model.proteus_fpr(0, width, 4096) == pytest.approx(
        scalar.proteus_fpr(0, width, 4096), abs=1e-12
    )
    assert model.two_pbf_fpr(1, width, 2048, 2048) == pytest.approx(
        scalar.two_pbf_fpr(1, width, 2048, 2048), abs=1e-12
    )
    assert QueryBatch.from_pairs(full_space, width).spans()[0] == 1 << width


def test_wide_key_space_falls_back_to_scalar_loop():
    # 80-bit keys: object-dtype batches, every filter must route through
    # the scalar fallback and still answer identically to the loop.
    width = 80
    keys = [1 << 70, (1 << 70) + 5, 3, 1 << 79]
    filt = PrefixBloomFilter(keys, width, prefix_len=40, num_bits=4096)
    queries = [(0, 10), (1 << 70, (1 << 70) + 2), (1 << 60, 1 << 61)]
    batch = QueryBatch.from_pairs(queries, width)
    assert not batch.is_vector
    assert list(filt.may_intersect_many(batch)) == [
        filt.may_intersect(lo, hi) for lo, hi in queries
    ]
    assert list(filt.may_contain_many(keys)) == [filt.may_contain(k) for k in keys]


def test_surf_vectorised_build_is_bit_identical(workload):
    # Satellite of the "batched build path" ROADMAP item: the numpy
    # LCP/depth computation + from_sorted_prefix_free bulk insertion must
    # produce structurally the same pruned trie as the scalar per-key loop,
    # at every depth cap.
    keys, queries, probes = workload
    for max_depth in (None, 2, 3):
        bulk = SuRF(keys, WIDTH, max_depth)
        scalar = SuRF(keys, WIDTH, max_depth, vectorize=False)
        assert list(bulk._trie.leaves()) == list(scalar._trie.leaves()), max_depth
        assert bulk._trie.level_counts() == scalar._trie.level_counts(), max_depth
        assert bulk._trie.height == scalar._trie.height
        assert bulk.num_keys == scalar.num_keys
        assert bulk.size_in_bits() == scalar.size_in_bits(), max_depth
    # Physical mode encodes the same trie: identical succinct payloads
    # whichever build path produced the ByteTrie.
    bulk_fst = SuRF(keys, WIDTH, physical=True)._fst
    scalar_fst = SuRF(keys, WIDTH, physical=True, vectorize=False)._fst
    assert bulk_fst.size_breakdown() == scalar_fst.size_breakdown()
    if bulk_fst._sparse is not None:
        assert bulk_fst._sparse.to_bytes() == scalar_fst._sparse.to_bytes()
    if bulk_fst._dense is not None:
        assert bulk_fst._dense.to_bytes() == scalar_fst._dense.to_bytes()


def test_surf_non_byte_width_vectorised_build_matches_scalar():
    # The MSB-pad arithmetic lives in both build paths; a 9-bit width (7
    # pad bits) is where they would drift first.
    keys = [0, 64, 65, 300]
    bulk = SuRF(keys, width=9)
    scalar = SuRF(keys, width=9, vectorize=False)
    assert list(bulk._trie.leaves()) == list(scalar._trie.leaves())


def test_rosetta_vectorised_build_is_bit_identical(workload):
    # Satellite of the "batched build path" ROADMAP item: the bulk
    # insert_many construction must produce byte-for-byte the same Bloom
    # contents as the scalar per-key build, level by level.
    keys, _, _ = workload
    bulk = Rosetta(keys, WIDTH, total_bits=32_000, num_levels=12, seed=9)
    scalar = Rosetta(
        keys, WIDTH, total_bits=32_000, num_levels=12, seed=9, vectorize=False
    )
    assert sorted(bulk._blooms) == sorted(scalar._blooms)
    for level, bloom in bulk._blooms.items():
        reference = scalar._blooms[level]
        assert bloom.num_bits == reference.num_bits, level
        assert bloom.num_hashes == reference.num_hashes, level
        assert bloom.bits.to_bytes() == reference.bits.to_bytes(), level


def test_rosetta_wide_key_space_build_falls_back():
    # 80-bit keys: object-dtype key sets cannot take the bulk path but must
    # still build (and answer) correctly.
    width = 80
    keys = [1 << 70, (1 << 70) + 5, 3, 1 << 79]
    filt = Rosetta(keys, width, total_bits=4096, num_levels=8)
    assert all(filt.may_contain(key) for key in keys)
    assert filt.may_intersect(0, 10)


class TestBatchValidationParity:
    """The vectorised fast paths must reject malformed queries with the
    same ValueErrors as the scalar ``_check_range`` — even when the batch
    was constructed with ``validate=False`` (the coercion layer owns the
    deferred check)."""

    @pytest.fixture(scope="class")
    def filt(self, workload):
        keys, _, _ = workload
        return PrefixBloomFilter(keys, WIDTH, prefix_len=16, num_bits=24_000)

    def _scalar_message(self, filt, lo, hi):
        with pytest.raises(ValueError) as excinfo:
            filt.may_intersect(lo, hi)
        return str(excinfo.value)

    def test_empty_range_rejected_identically(self, filt):
        lo, hi = 500, 20
        batch = QueryBatch([0, lo], [5, hi], WIDTH, validate=False)
        with pytest.raises(ValueError) as excinfo:
            filt.may_intersect_many(batch)
        assert str(excinfo.value) == self._scalar_message(filt, lo, hi)

    def test_out_of_width_rejected_identically(self, filt):
        lo, hi = 7, 1 << WIDTH
        batch = QueryBatch([lo], [hi], WIDTH, validate=False)
        with pytest.raises(ValueError) as excinfo:
            filt.may_intersect_many(batch)
        assert str(excinfo.value) == self._scalar_message(filt, lo, hi)

    def test_wide_space_object_batch_rejected_identically(self, workload):
        width = 80
        keys = [3, 1 << 70]
        filt = PrefixBloomFilter(keys, width, prefix_len=40, num_bits=4096)
        batch = QueryBatch([1 << 79], [5], width, validate=False)
        assert not batch.is_vector
        with pytest.raises(ValueError) as excinfo:
            filt.may_intersect_many(batch)
        assert str(excinfo.value) == self._scalar_message(filt, 1 << 79, 5)

    def test_mixed_defect_batch_reports_first_offender(self, filt):
        # Query 0 is out of width, query 1 is inverted: the scalar loop
        # dies on query 0's defect, so the batch path must as well.
        batch = QueryBatch([0, 5], [1 << WIDTH, 2], WIDTH, validate=False)
        with pytest.raises(ValueError) as excinfo:
            filt.may_intersect_many(batch)
        assert str(excinfo.value) == self._scalar_message(filt, 0, 1 << WIDTH)

    def test_validation_flag_is_sticky(self, filt):
        batch = QueryBatch([1, 2], [4, 8], WIDTH, validate=False)
        assert not batch._validated
        filt.may_intersect_many(batch)
        assert batch._validated  # coercion validated once; later calls skip it


class TestMergeRunsParity:
    """The compaction merge fast path (one concatenate + lexsort dedupe via
    the ``merge_runs`` kernel) must equal the ``heapq.merge`` scalar
    reference — same keys, same surviving tombstones, under every backend
    and under the object-dtype wide-key fallback."""

    def _seeded_runs(self, rng, width, num_runs=5):
        from repro.lsm.merge import EntryRun
        from repro.workloads.batch import EncodedKeySet

        runs = []
        for _ in range(num_runs):
            keys = sorted(rng.sample(range(1 << min(width, 16)), rng.randrange(1, 400)))
            tombstones = [rng.random() < 0.3 for _ in keys]
            runs.append(EntryRun(EncodedKeySet(keys, width), np.array(tombstones)))
        return runs

    @pytest.mark.parametrize("backend", kernels.available_backends())
    @pytest.mark.parametrize("drop", [False, True])
    def test_fast_path_equals_heap_reference(self, backend, drop):
        from repro.lsm.merge import merge_entry_runs, merge_entry_runs_scalar

        rng = random.Random(76)
        for trial in range(5):
            runs = self._seeded_runs(rng, WIDTH)
            with kernels.use_backend(backend):
                fast = merge_entry_runs(runs, drop_tombstones=drop)
            slow = merge_entry_runs_scalar(runs, drop_tombstones=drop)
            assert fast.keys.as_list() == slow.keys.as_list(), (backend, trial)
            assert (
                fast.tombstone_mask().tolist() == slow.tombstone_mask().tolist()
            ), (backend, trial)

    def test_wide_key_space_falls_back_to_the_heap_reference(self):
        from repro.lsm.merge import merge_entry_runs, merge_entry_runs_scalar

        rng = random.Random(77)
        runs = self._seeded_runs(rng, width=80, num_runs=3)
        assert not runs[0].keys.is_vector
        fast = merge_entry_runs(runs)
        slow = merge_entry_runs_scalar(runs)
        assert fast.keys.as_list() == slow.keys.as_list()
        assert fast.tombstone_mask().tolist() == slow.tombstone_mask().tolist()

    def test_merge_sorted_equals_heapq_over_plain_lists(self):
        import heapq

        from repro.lsm.sstable import SSTable
        from repro.workloads.batch import EncodedKeySet

        rng = random.Random(78)
        lists = [
            sorted(rng.sample(range(1 << 16), rng.randrange(1, 300)))
            for _ in range(4)
        ]
        merged = SSTable.merge_sorted(
            [EncodedKeySet(keys, WIDTH) for keys in lists]
        )
        reference = sorted(set(heapq.merge(*lists)))
        assert merged.as_list() == reference


def test_bloom_bulk_equals_scalar(workload):
    keys, _, probes = workload
    scalar = BloomFilter(20_000, len(keys), seed=5)
    bulk = BloomFilter(20_000, len(keys), seed=5)
    for key in keys:
        scalar.add(key)
    bulk.add_many(np.array(keys, dtype=np.int64))
    assert scalar.bits.to_bytes() == bulk.bits.to_bytes()
    assert scalar.inserted_items == bulk.inserted_items
    answers = bulk.contains_many(np.array(probes, dtype=np.int64))
    assert list(answers) == [scalar.contains(key) for key in probes]


class TestModelParity:
    @pytest.fixture(scope="class")
    def models(self):
        rng = random.Random(72)
        keys = random_keys(rng, 3000, WIDTH)
        queries = mixed_queries(rng, keys, 800, WIDTH)
        vector = CPFPRModel(keys, WIDTH, queries)
        scalar = CPFPRModel(keys, WIDTH, queries, vectorize=False)
        assert vector._vector and not scalar._vector
        return vector, scalar

    def test_preprocessing_identical(self, models):
        vector, scalar = models
        assert vector.empty_queries == scalar.empty_queries
        assert vector.prefix_counts == scalar.prefix_counts
        assert vector._lcp_at_least == scalar._lcp_at_least

    def test_proteus_fpr_grid(self, models):
        vector, scalar = models
        for l1 in range(0, WIDTH, 4):
            for l2 in range(l1 + 1, WIDTH + 1, 3):
                a = vector.proteus_fpr(l1, l2, 30_000)
                b = scalar.proteus_fpr(l1, l2, 30_000)
                assert a == pytest.approx(b, abs=1e-12), (l1, l2)
            assert vector.proteus_fpr(l1, 0, 0) == pytest.approx(
                scalar.proteus_fpr(l1, 0, 0), abs=1e-12
            )

    def test_two_pbf_fpr_grid(self, models):
        vector, scalar = models
        for l1 in (1, 4, 8, 16):
            for l2 in (l1 + 1, l1 + 8, WIDTH):
                if l2 > WIDTH:
                    continue
                a = vector.two_pbf_fpr(l1, l2, 15_000, 15_000)
                b = scalar.two_pbf_fpr(l1, l2, 15_000, 15_000)
                assert a == pytest.approx(b, abs=1e-12), (l1, l2)


def _same_design_point(a, b):
    return (
        a.kind == b.kind
        and a.trie_depth == b.trie_depth
        and a.bloom_prefix_len == b.bloom_prefix_len
        and a.trie_bits == b.trie_bits
        and a.bloom_bits == b.bloom_bits
    )


@pytest.mark.parametrize("seed", [73, 74, 75])
@pytest.mark.parametrize("family", ["mixed", "correlated"])
def test_algorithm1_identical_design_through_either_model(seed, family):
    rng = random.Random(seed)
    keys = random_keys(rng, 2500, WIDTH)
    if family == "mixed":
        queries = mixed_queries(rng, keys, 500, WIDTH)
    else:
        queries = correlated_queries(rng, keys, 500, WIDTH)
    vector = CPFPRModel(keys, WIDTH, queries)
    scalar = CPFPRModel(keys, WIDTH, queries, vectorize=False)
    budget = 30_000
    for search in (design_proteus, design_one_pbf, design_two_pbf):
        via_vector = search(vector, budget)
        via_scalar = search(scalar, budget)
        assert _same_design_point(via_vector, via_scalar), (
            search.__name__,
            via_vector,
            via_scalar,
        )
        assert via_vector.expected_fpr == pytest.approx(
            via_scalar.expected_fpr, abs=1e-12
        )
