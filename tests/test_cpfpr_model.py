"""CPFPR model tests: internal consistency and model-vs-empirical agreement.

The acceptance bar for this subsystem: on a seeded 10k-key / 1k-query
workload, the built Proteus filter must have zero false negatives and an empirical
FPR within 2x of the CPFPR model's prediction (with a small additive term
for sampling noise at near-zero rates).
"""

import random

import pytest

from conftest import correlated_queries, mixed_queries, random_keys
from repro.api import FilterSpec, Workload, build_filter
from repro.core.cpfpr import CPFPRModel
from repro.core.design import design_one_pbf, design_proteus
from repro.filters.base import TrieOracle
from repro.keys.keyspace import IntegerKeySpace

WIDTH = 32


def _self_designed(family, keys, queries, bits_per_key):
    workload = Workload(keys, queries, key_space=IntegerKeySpace(WIDTH))
    return build_filter(FilterSpec(family, float(bits_per_key)), workload.keys, workload)


def _empirical_fpr(filt, oracle, queries):
    false_positives = 0
    empty = 0
    for lo, hi in queries:
        if oracle.may_intersect(lo, hi):
            assert filt.may_intersect(lo, hi), f"false negative on [{lo}, {hi}]"
        else:
            empty += 1
            false_positives += filt.may_intersect(lo, hi)
    assert empty > 0, "workload produced no empty queries"
    return false_positives / empty, empty


def _assert_within_2x(empirical, predicted, empty):
    # 2x multiplicative agreement with an additive allowance for binomial
    # noise at near-zero rates (a handful of events over `empty` queries).
    slack = 5.0 / empty
    assert empirical <= 2.0 * predicted + slack, (empirical, predicted)
    assert predicted <= 2.0 * empirical + slack, (empirical, predicted)


class TestModelInternals:
    def test_empty_query_classification(self):
        keys = [10, 20, 30]
        queries = [(0, 5), (10, 10), (11, 19), (25, 35), (31, 40)]
        model = CPFPRModel(keys, 8, queries)
        assert model.num_queries == 5
        # (10,10), (25,35) and... (31,40)? 30 < 31, no key in [31,40] -> empty.
        empties = {(lo, hi) for lo, hi, _ in model.empty_queries}
        assert empties == {(0, 5), (11, 19), (31, 40)}

    def test_certain_fp_fraction_monotone(self):
        rng = random.Random(31)
        keys = random_keys(rng, 500, WIDTH)
        queries = mixed_queries(rng, keys, 300, WIDTH)
        model = CPFPRModel(keys, WIDTH, queries)
        fractions = [model.certain_fp_fraction(depth) for depth in range(WIDTH + 1)]
        assert fractions == sorted(fractions, reverse=True)
        assert fractions[0] == 1.0

    def test_design_rejects_bad_layers(self):
        model = CPFPRModel([1, 2], 8, [(4, 5)])
        with pytest.raises(ValueError):
            model.proteus_fpr(5, 5, 100)
        with pytest.raises(ValueError):
            model.two_pbf_fpr(5, 5, 100, 100)

    def test_rejects_out_of_space_inputs(self):
        # Regression: queries used to bypass the key-space bounds check and
        # silently feed garbage LCPs into the model.
        with pytest.raises(ValueError):
            CPFPRModel([1, 2], 8, [(-50, -10)])
        with pytest.raises(ValueError):
            CPFPRModel([1, 2], 8, [(300, 400)])
        with pytest.raises(ValueError):
            CPFPRModel([1, 300], 8, [(4, 5)])

    def test_no_empty_queries_gives_zero_fpr_design(self):
        keys = list(range(0, 256, 2))
        queries = [(k, k) for k in keys[:20]]  # every query hits a key
        model = CPFPRModel(keys, 8, queries)
        assert model.num_empty_queries == 0
        design = design_proteus(model, 1000)
        assert design.expected_fpr == 0.0
        assert design.bloom_prefix_len == 8

    def test_trie_gate_is_deterministic(self):
        # Keys start with bit 0, every query with bit 1: lcp(q, K) = 0, so a
        # depth-1 trie rejects every query while the no-layer design accepts.
        keys = [0b00000000, 0b00000001]
        queries = [(0b11110000, 0b11110011), (0b10100000, 0b10100001)]
        model = CPFPRModel(keys, 8, queries)
        assert model.proteus_fpr(0, 0, 0) == 1.0  # no layers: every empty q passes
        assert model.proteus_fpr(1, 0, 0) == 0.0  # depth-1 trie: all rejected
        assert model.certain_fp_fraction(1) == 0.0


class TestModelVsEmpirical:
    def test_proteus_agreement_uniform_10k(self):
        rng = random.Random(32)
        keys = random_keys(rng, 10_000, WIDTH)
        queries = mixed_queries(rng, keys, 1000, WIDTH)
        filt = _self_designed("proteus", keys, queries, bits_per_key=12)
        oracle = TrieOracle(keys, WIDTH)
        empirical, empty = _empirical_fpr(filt, oracle, queries)
        _assert_within_2x(empirical, filt.expected_fpr, empty)

    def test_proteus_agreement_correlated_10k(self):
        rng = random.Random(33)
        keys = random_keys(rng, 10_000, WIDTH)
        queries = correlated_queries(rng, keys, 1000, WIDTH)
        filt = _self_designed("proteus", keys, queries, bits_per_key=12)
        oracle = TrieOracle(keys, WIDTH)
        empirical, empty = _empirical_fpr(filt, oracle, queries)
        _assert_within_2x(empirical, filt.expected_fpr, empty)

    def test_two_pbf_agreement_mixed_10k(self):
        # The 2PBF model multiplies the two layers' false-positive
        # probabilities (independent seeds); this validates that
        # independence assumption at the same scale as the Proteus tests.
        rng = random.Random(39)
        keys = random_keys(rng, 10_000, WIDTH)
        queries = mixed_queries(rng, keys, 1000, WIDTH)
        filt = _self_designed("2pbf", keys, queries, bits_per_key=12)
        oracle = TrieOracle(keys, WIDTH)
        empirical, empty = _empirical_fpr(filt, oracle, queries)
        _assert_within_2x(empirical, filt.expected_fpr, empty)

    def test_two_pbf_agreement_correlated_10k(self):
        rng = random.Random(43)
        keys = random_keys(rng, 10_000, WIDTH)
        queries = correlated_queries(rng, keys, 1000, WIDTH)
        filt = _self_designed("2pbf", keys, queries, bits_per_key=12)
        oracle = TrieOracle(keys, WIDTH)
        empirical, empty = _empirical_fpr(filt, oracle, queries)
        _assert_within_2x(empirical, filt.expected_fpr, empty)

    def test_one_pbf_agreement(self):
        rng = random.Random(34)
        keys = random_keys(rng, 4000, WIDTH)
        queries = mixed_queries(rng, keys, 600, WIDTH)
        filt = _self_designed("1pbf", keys, queries, bits_per_key=10)
        oracle = TrieOracle(keys, WIDTH)
        empirical, empty = _empirical_fpr(filt, oracle, queries)
        _assert_within_2x(empirical, filt.expected_fpr, empty)

    def test_fixed_design_model_matches_prefix_bloom(self):
        # Evaluate the model at an explicit 1PBF design point and compare to
        # the empirical FPR of the PrefixBloomFilter at the same point.
        from repro.filters.prefix_bloom import PrefixBloomFilter

        rng = random.Random(35)
        keys = random_keys(rng, 4000, WIDTH)
        queries = mixed_queries(rng, keys, 800, WIDTH)
        model = CPFPRModel(keys, WIDTH, queries)
        prefix_len, num_bits = 22, 40_000
        predicted = model.one_pbf_fpr(prefix_len, num_bits)
        filt = PrefixBloomFilter(keys, WIDTH, prefix_len, num_bits)
        oracle = TrieOracle(keys, WIDTH)
        empirical, empty = _empirical_fpr(filt, oracle, queries)
        _assert_within_2x(empirical, predicted, empty)


class TestAlgorithm1:
    def test_design_respects_budget(self):
        rng = random.Random(36)
        keys = random_keys(rng, 3000, WIDTH)
        queries = mixed_queries(rng, keys, 400, WIDTH)
        model = CPFPRModel(keys, WIDTH, queries)
        budget = 30_000
        design = design_proteus(model, budget)
        assert design.total_bits() <= budget
        assert 0 <= design.trie_depth <= WIDTH
        if design.bloom_prefix_len:
            assert design.trie_depth < design.bloom_prefix_len

    def test_chosen_design_beats_naive_alternatives(self):
        # Algorithm 1's pick must be at least as good (under the model) as a
        # handful of arbitrary feasible designs.
        rng = random.Random(37)
        keys = random_keys(rng, 3000, WIDTH)
        queries = correlated_queries(rng, keys, 500, WIDTH)
        model = CPFPRModel(keys, WIDTH, queries)
        budget = 36_000
        chosen = design_proteus(model, budget)
        for bloom_len in (8, 16, 24, WIDTH):
            alternative = model.one_pbf_fpr(bloom_len, budget)
            assert chosen.expected_fpr <= alternative + 1e-12

    def test_one_pbf_design_is_single_layer(self):
        rng = random.Random(38)
        keys = random_keys(rng, 2000, WIDTH)
        queries = mixed_queries(rng, keys, 300, WIDTH)
        model = CPFPRModel(keys, WIDTH, queries)
        design = design_one_pbf(model, 20_000)
        assert design.kind == "1pbf"
        assert design.trie_depth == 0
        assert design.trie_bits == 0
        assert 1 <= design.bloom_prefix_len <= WIDTH
