"""Tests for the online LSM write path: memtable, flush, compaction,
tombstone semantics end to end, budget re-splits, the drift-actuated
filter lifecycle, and the timeline benchmark."""

import json
import random

import numpy as np
import pytest

from repro.api import FilterSpec, resplit_on_topology_change
from repro.evaluation.lsm_bench import main
from repro.evaluation.timeline import check_timeline_report, run_timeline_bench
from repro.lsm import (
    EntryRun,
    FilterLifecycle,
    MemTable,
    OnlineLSMTree,
    SSTable,
    merge_entry_runs,
)
from repro.workloads import EncodedKeySet, QueryBatch
from repro.workloads.generators import (
    correlated_queries,
    random_keys,
    uniform_queries,
    write_stream,
)

WIDTH = 32


def replay_truth(ops_batches) -> dict[int, bool]:
    """Ground truth of a write stream: key -> is-live after the last op."""
    truth: dict[int, bool] = {}
    for ops in ops_batches:
        for op, key in ops:
            truth[key] = op == "put"
    return truth


class TestMemTable:
    def test_last_write_wins(self):
        table = MemTable(WIDTH)
        table.put(5)
        table.delete(5)
        assert table.get(5) is False
        table.put(5)
        assert table.get(5) is True
        assert table.get(6) is None
        assert len(table) == 1

    def test_delete_of_unseen_key_records_a_tombstone(self):
        # The key may live in an SST below: the tombstone must flush.
        table = MemTable(WIDTH)
        table.delete(99)
        assert table.get(99) is False
        assert table.num_tombstones == 1
        run = table.seal()
        assert run.keys.as_list() == [99]
        assert run.tombstone_mask().tolist() == [True]

    def test_seal_sorts_clears_and_marks_tombstones(self):
        table = MemTable(WIDTH, capacity=4)
        table.apply([("put", 30), ("put", 10), ("del", 20), ("put", 40)])
        assert table.is_full
        run = table.seal()
        assert run.keys.as_list() == [10, 20, 30, 40]
        assert run.tombstone_mask().tolist() == [False, True, False, False]
        assert table.is_empty and not table.is_full

    def test_seal_empty_and_bad_inputs_raise(self):
        table = MemTable(WIDTH, capacity=2)
        with pytest.raises(ValueError):
            table.seal()
        with pytest.raises(ValueError):
            table.put(1 << WIDTH)
        with pytest.raises(ValueError):
            table.put(-1)
        with pytest.raises(ValueError):
            table.apply([("upsert", 3)])
        with pytest.raises(ValueError):
            MemTable(WIDTH, capacity=0)


class TestMerge:
    def test_newest_run_shadows_older_entries(self):
        newest = EntryRun(EncodedKeySet([2, 4], WIDTH), np.array([True, False]))
        oldest = EntryRun(EncodedKeySet([2, 3, 4], WIDTH))
        merged = merge_entry_runs([newest, oldest])
        assert merged.keys.as_list() == [2, 3, 4]
        # Key 2: the newest entry is a tombstone; key 4: a live put.
        assert merged.tombstone_mask().tolist() == [True, False, False]

    def test_drop_tombstones_removes_surviving_deletes(self):
        newest = EntryRun(EncodedKeySet([2, 4], WIDTH), np.array([True, False]))
        oldest = EntryRun(EncodedKeySet([2, 3], WIDTH))
        merged = merge_entry_runs([newest, oldest], drop_tombstones=True)
        assert merged.keys.as_list() == [3, 4]
        assert merged.tombstones is None

    def test_merge_can_produce_an_empty_run(self):
        only = EntryRun(EncodedKeySet([7], WIDTH), np.array([True]))
        merged = merge_entry_runs([only], drop_tombstones=True)
        assert len(merged) == 0

    def test_entry_run_validates_mask_shape(self):
        with pytest.raises(ValueError):
            EntryRun(EncodedKeySet([1, 2], WIDTH), np.array([True]))
        with pytest.raises(ValueError):
            merge_entry_runs([])

    def test_merge_sorted_collapses_duplicates(self):
        merged = SSTable.merge_sorted(
            [EncodedKeySet([1, 5, 9], WIDTH), EncodedKeySet([5, 6], WIDTH)]
        )
        assert merged.as_list() == [1, 5, 6, 9]


def churn_tree(spec=None, seed=3, batches=10, batch_size=128, **kwargs):
    """A small tree churned through a seeded stream; returns (tree, truth)."""
    rng = random.Random(seed)
    stream = write_stream(rng, batches, batch_size, WIDTH, delete_fraction=0.2)
    design = QueryBatch.from_pairs(
        uniform_queries(rng, 256, WIDTH, 1000), WIDTH
    )
    kwargs.setdefault("sst_keys", 64)
    kwargs.setdefault("level0_runs", 3)
    tree = OnlineLSMTree(WIDTH, spec, design_queries=design, **kwargs)
    for ops in stream:
        tree.apply(ops)
    tree.flush()
    return tree, replay_truth(stream)


class TestFlushAndCompaction:
    def test_flush_stacks_level0_newest_first(self):
        tree = OnlineLSMTree(WIDTH, sst_keys=4, level0_runs=10)
        tree.apply([("put", 1), ("put", 2), ("put", 3)])
        first = tree.flush()
        tree.apply([("put", 8), ("put", 9)])
        second = tree.flush()
        assert tree.level0 == [second, first]
        assert tree.flush() is None  # empty memtable: no-op

    def test_compaction_triggers_at_level0_runs(self):
        tree = OnlineLSMTree(WIDTH, sst_keys=4, level0_runs=2)
        for base in (0, 100, 200):  # third flush exceeds level0_runs=2
            tree.apply([("put", base + offset) for offset in range(4)])
        assert tree.level0 == []
        assert tree.stats["compactions"] >= 1
        assert tree.num_entries == 12

    def test_newest_wins_across_levels(self):
        tree = OnlineLSMTree(WIDTH, sst_keys=4, level0_runs=1)
        tree.apply([("put", 10), ("put", 20), ("put", 30), ("put", 40)])
        tree.flush()
        tree.apply([("del", 20), ("put", 50)])
        tree.flush()  # forces a merge: the delete must shadow the old put
        assert tree.lookup_many([10, 20, 30, 40, 50]).tolist() == [
            True, False, True, True, True,
        ]

    def test_tombstones_drop_only_at_the_bottom(self):
        tree, truth = churn_tree()
        # Deeper levels were written while entries existed below them only
        # for non-final merges; the deepest populated level must hold no
        # tombstone that a bottom-merge could have dropped.
        populated = [level for level in tree.deep_levels if level]
        if populated:
            bottom = populated[-1]
            assert all(sst.num_tombstones == 0 for sst in bottom)
        assert tree.stats["tombstones_dropped"] > 0

    def test_lookup_matches_replayed_ground_truth(self):
        tree, truth = churn_tree()
        keys = sorted(truth)
        got = tree.lookup_many(np.array(keys, dtype=np.int64))
        want = [truth[key] for key in keys]
        assert got.tolist() == want

    def test_cascade_leaves_empty_levels_the_snapshot_tolerates(self):
        tree = OnlineLSMTree(WIDTH, sst_keys=8, fanout=2, level0_runs=1)
        rng = random.Random(9)
        fresh = random_keys(rng, 512, WIDTH)
        for start in range(0, 512, 8):
            tree.apply([("put", key) for key in fresh[start : start + 8]])
        tree.flush()
        snapshot = tree.snapshot()
        assert any(not level for level in snapshot.levels)  # a real gap
        points = QueryBatch.points(fresh, WIDTH)
        result = snapshot.probe(points)
        assert int(result.missed_reads.sum()) == 0
        assert (result.required_reads >= 1).all()

    def test_every_sst_gets_a_filter_after_every_topology_change(self):
        spec = FilterSpec("bloom", 10.0)
        tree, _ = churn_tree(spec)
        assert tree.num_ssts > 0
        for sst in tree.sstables():
            assert sst.filter is not None
            assert sst.spec is not None
        assert tree.stats["filters_built"] >= tree.num_ssts
        assert tree.filter_size_bits() > 0


class TestRebudget:
    def test_proportional_resplit_keeps_surviving_grants(self):
        spec = FilterSpec("bloom", 10.0)
        previous = resplit_on_topology_change(spec, [100, 200], [None, None])[0]
        specs, stale = resplit_on_topology_change(
            spec, [100, 200, 50], [previous[0], previous[1], None]
        )
        assert stale == [False, False, True]
        assert specs[0].bits_per_key == previous[0].bits_per_key

    def test_equal_resplit_marks_everything_stale_on_topology_change(self):
        spec = FilterSpec("bloom", 10.0)
        previous = resplit_on_topology_change(
            spec, [100, 200], [None, None], policy="equal"
        )[0]
        _, stale = resplit_on_topology_change(
            spec, [100, 200, 50], [*previous, None], policy="equal"
        )
        assert stale == [True, True, True]

    def test_resplit_rejects_mismatched_previous(self):
        with pytest.raises(ValueError):
            resplit_on_topology_change(FilterSpec("bloom", 10.0), [10], [None, None])


@pytest.mark.parametrize(
    "family", ["bloom", "prefix_bloom", "surf", "rosetta", "proteus"]
)
class TestTombstoneSemanticsPerFamily:
    def test_deletes_negative_live_found_zero_missed_reads(self, family):
        spec = FilterSpec(family, 12.0)
        tree, truth = churn_tree(spec, seed=11, batches=6)
        keys = sorted(truth)
        # Tree-level truth: a deleted key answers negative, a live key
        # positive — through every filter family.
        got = tree.lookup_many(np.array(keys, dtype=np.int64))
        assert got.tolist() == [truth[key] for key in keys]
        # Probe-level invariant: a point probe of ANY touched key (live or
        # tombstoned — the read that discovers the delete is required)
        # must never be missed by a filter.
        result = tree.probe(QueryBatch.points(keys, WIDTH))
        assert int(result.missed_reads.sum()) == 0
        live = [key for key in keys if truth[key]]
        live_result = tree.probe(QueryBatch.points(live, WIDTH))
        assert int(live_result.missed_reads.sum()) == 0
        assert (live_result.required_reads >= 1).all()


class TestFilterLifecycle:
    def _shifted_epochs(self, min_empty=8, window=4):
        rng = random.Random(21)
        stream = write_stream(rng, 8, 128, WIDTH, delete_fraction=0.1)
        design = QueryBatch.from_pairs(
            uniform_queries(rng, 512, WIDTH, 1000), WIDTH
        )
        spec = FilterSpec("proteus", 12.0)
        tree = OnlineLSMTree(
            WIDTH, spec, design_queries=design, sst_keys=128, level0_runs=3
        )
        for ops in stream:
            tree.apply(ops)
        tree.flush()
        lifecycle = FilterLifecycle(tree, window=window, min_empty=min_empty)
        touched = sorted(replay_truth(stream))
        shifted = [
            QueryBatch.from_pairs(
                correlated_queries(rng, touched, 256, WIDTH), WIDTH
            )
            for _ in range(4)
        ]
        return tree, lifecycle, shifted

    def test_drift_actuates_and_cuts_false_positives(self):
        tree, lifecycle, shifted = self._shifted_epochs()
        first = tree.probe(shifted[0], sst_stats=(stats := {}))
        lifecycle.observe_epoch(shifted[0], stats)
        assert lifecycle.stats["drift_flags"] > 0
        assert lifecycle.stats["filters_rebuilt"] > 0
        # The rebuilt designs must beat the stale ones on the shifted mix.
        later = tree.probe(shifted[1])
        assert int(later.false_positive_reads.sum()) < int(
            first.false_positive_reads.sum()
        )
        assert int(later.missed_reads.sum()) == 0

    def test_actuation_refreshes_the_shared_design_sample(self):
        tree, lifecycle, shifted = self._shifted_epochs()
        before = tree.design_queries
        tree.probe(shifted[0], sst_stats=(stats := {}))
        lifecycle.observe_epoch(shifted[0], stats)
        assert tree.design_queries is not before
        assert len(tree.design_queries) == len(lifecycle.rolling_sample())

    def test_monitors_prune_when_ssts_compact_away(self):
        tree, lifecycle, shifted = self._shifted_epochs(min_empty=10**9)
        tree.probe(shifted[0], sst_stats=(stats := {}))
        lifecycle.observe_epoch(shifted[0], stats)
        assert lifecycle.num_monitors > 0
        # Churn until compaction replaces the monitored tables.
        rng = random.Random(22)
        for ops in write_stream(rng, 6, 256, WIDTH):
            tree.apply(ops)
        tree.flush()
        tree.probe(shifted[1], sst_stats=(stats2 := {}))
        lifecycle.observe_epoch(shifted[1], stats2)
        assert lifecycle.stats["monitors_pruned"] > 0
        live = set(tree.sstables())
        assert all(sst in live for sst in lifecycle._monitors)

    def test_unfiltered_ssts_are_not_monitored(self):
        tree, _ = churn_tree(spec=None, batches=4)
        lifecycle = FilterLifecycle(tree)
        tree.probe(
            QueryBatch.from_pairs([(1, 50), (60, 90)], WIDTH),
            sst_stats=(stats := {}),
        )
        verdict = lifecycle.observe_epoch([(1, 50), (60, 90)], stats)
        assert verdict["monitored_ssts"] == 0
        assert lifecycle.num_monitors == 0


TIMELINE_ARGS = dict(
    num_epochs=4,
    writes_per_epoch=256,
    queries_per_epoch=256,
    preload=1024,
    shift_epoch=1,
    grace_epochs=1,
    design_queries=512,
    sst_keys=128,
    level0_runs=3,
    seed=19,
)


class TestTimelineBench:
    @pytest.fixture(scope="class")
    def report(self):
        return run_timeline_bench(**TIMELINE_ARGS)

    def test_gate_passes_and_actuator_fired(self, report):
        assert check_timeline_report(report) == []
        assert report["totals"]["adaptive"]["filters_rebuilt"] > 0

    def test_adaptive_beats_static_post_shift(self, report):
        shift = report["timeline"]["shift_epoch"]
        grace = report["timeline"]["grace_epochs"]
        for record in report["epochs"]:
            if record["epoch"] < shift + grace:
                continue
            assert (
                record["adaptive"]["probe"]["false_positive_reads"]
                < record["static"]["probe"]["false_positive_reads"]
            ), record["epoch"]

    def test_zero_missed_reads_and_consistent_lookups(self, report):
        for record in report["epochs"]:
            assert record["adaptive"]["probe"]["missed_reads"] == 0
            assert record["static"]["probe"]["missed_reads"] == 0
        assert report["integrity"]["lookup_consistent"] == {
            "adaptive": True,
            "static": True,
        }

    def test_report_is_seed_deterministic(self, report):
        again = run_timeline_bench(**TIMELINE_ARGS)
        assert json.dumps(report, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )

    def test_check_flags_a_doctored_report(self, report):
        doctored = json.loads(json.dumps(report))
        record = doctored["epochs"][-1]
        record["adaptive"]["probe"]["false_positive_reads"] = (
            record["static"]["probe"]["false_positive_reads"] + 1
        )
        doctored["epochs"][0]["static"]["probe"]["missed_reads"] = 2
        violations = check_timeline_report(doctored)
        assert any("missed reads" in v for v in violations)
        assert any("not strictly below" in v for v in violations)

    def test_cli_timeline_check_writes_report_and_metrics(self, tmp_path):
        out = tmp_path / "timeline.json"
        metrics_out = tmp_path / "metrics.json"
        code = main(
            [
                "--timeline", "--check",
                "--epochs", "4", "--writes-per-epoch", "256",
                "--queries-per-epoch", "256", "--preload", "1024",
                "--shift-epoch", "1", "--design-queries", "512",
                "--sst-keys", "128", "--level0-runs", "3", "--seed", "19",
                "--output", str(out),
                "--metrics-out", str(metrics_out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["mode"] == "timeline"
        payload = json.loads(metrics_out.read_text())
        assert payload["driver"] == "lsm_bench.timeline"
        counters = payload["metrics"]["counters"]
        # Compaction merges dispatch through the kernel registry.
        assert any(
            name.startswith("kernels.dispatch.") and name.endswith(".merge_runs")
            for name in counters
        )
        assert counters["lifecycle.filters_rebuilt"] > 0


class TestLookupProbeDispatch:
    """``lookup_many`` accepts raw iterables through coerce-style dispatch.

    Regression cluster for the pre-PR-10 probe path, which built
    ``np.array(probes, dtype=f"S{width//8}")`` directly: over-length byte
    probes were silently *truncated* — a probe for a key that cannot
    exist in the space could come back ``True`` — and representation
    mismatches surfaced as opaque numpy dtype errors.  The path now
    dispatches through ``probe_key_array``.
    """

    def _byte_tree(self):
        tree = OnlineLSMTree(40, sst_keys=32, memtable_capacity=16)
        for word in [b"ant", b"bee", b"cat", b"dove", b"eel", b"fox"]:
            tree.put(word)
        tree.flush()
        tree.put(b"gnu")  # stays buffered: exercises the memtable branch
        return tree

    def test_lookup_many_accepts_raw_str_and_bytes(self):
        tree = self._byte_tree()
        answers = tree.lookup_many(["ant", b"bee", "gnu", "yak", b"zz"])
        assert answers.tolist() == [True, True, True, False, False]

    def test_lookup_many_accepts_int_iterables_and_generators(self):
        tree = OnlineLSMTree(WIDTH, sst_keys=32, memtable_capacity=16)
        for key in [3, 900, 41_000]:
            tree.put(key)
        tree.flush()
        answers = tree.lookup_many(key for key in [3, 4, 900, 41_000])
        assert answers.tolist() == [True, False, True, True]

    def test_overlength_byte_probe_raises_instead_of_truncating(self):
        tree = self._byte_tree()  # 40-bit space: keys are at most 5 bytes
        with pytest.raises(ValueError, match="exceeds maximum 5"):
            tree.lookup_many([b"antelope"])
        # The 5-byte prefix of the rejected probe is absent: silent
        # truncation would have had nothing to collide with here, but
        # probing b"dovex" truncated to a stored key is the real hazard.
        with pytest.raises(ValueError, match="exceeds maximum 5"):
            tree.lookup_many([b"dove\x00x"])

    def test_representation_mismatch_raises_clearly(self):
        byte_tree = self._byte_tree()
        with pytest.raises(ValueError, match="integer probes against a byte-keyed"):
            byte_tree.lookup_many([17])
        int_tree = OnlineLSMTree(WIDTH, sst_keys=32, memtable_capacity=16)
        int_tree.put(5)
        int_tree.flush()
        with pytest.raises(ValueError, match="byte-keyed probes against an integer"):
            int_tree.lookup_many([b"abc"])

    def test_memtable_only_tree_still_detects_representation(self):
        tree = OnlineLSMTree(40, memtable_capacity=16)
        tree.put(b"ant")  # no flush: only the memtable knows the kind
        with pytest.raises(ValueError, match="integer probes against a byte-keyed"):
            tree.lookup_many([17])
        assert tree.lookup_many([b"ant", b"bee"]).tolist() == [True, False]

    def test_duplicate_probes_keep_positions(self):
        tree = self._byte_tree()
        answers = tree.lookup_many([b"cat", b"cat", b"nope", b"cat"])
        assert answers.tolist() == [True, True, False, True]
