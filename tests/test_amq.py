"""Unit tests for the seed ``repro.amq`` modules, including the generalised
``bloom_fpr`` (Eq. 6 is only exact at the optimal load)."""

import math
import random

import pytest

from repro.amq import (
    BitArray,
    BlockedBloomFilter,
    BloomFilter,
    CountingBloomFilter,
    bloom_fpr,
    bloom_hash_count,
    hash_int_64,
    hash_pair,
    mix64,
)


class TestBitArray:
    def test_set_get_clear(self):
        bits = BitArray(100)
        bits.set(0)
        bits.set(99)
        assert bits.get(0) and bits.get(99) and not bits.get(50)
        bits.clear(0)
        assert not bits.get(0)
        assert bits.count() == 1

    def test_roundtrip(self):
        rng = random.Random(11)
        pattern = [rng.random() < 0.3 for _ in range(77)]
        bits = BitArray.from_bits(pattern)
        assert list(bits) == pattern
        assert list(BitArray.from_bytes(bits.to_bytes(), 77)) == pattern

    def test_bounds(self):
        bits = BitArray(8)
        with pytest.raises(IndexError):
            bits.set(8)
        with pytest.raises(IndexError):
            bits.set_many([0, 9])


class TestHashing:
    def test_mix64_is_deterministic_and_mixing(self):
        assert mix64(0x1234) == mix64(0x1234)
        assert mix64(0) != mix64(1)

    def test_hash_pair_second_hash_is_odd(self):
        for value in (0, 1, 1 << 80, 987654321):
            _, h2 = hash_pair(value)
            assert h2 % 2 == 1

    def test_wide_integers_hash(self):
        wide = 1 << 500
        assert hash_int_64(wide) != hash_int_64(wide + 1)
        with pytest.raises(ValueError):
            hash_int_64(-1)


class TestBloomFpr:
    def test_equation6_recovered_near_optimal_load(self):
        # At m/n = 10 the uncapped optimum k = 6.93; with k frozen at the
        # true optimum the general formula collapses to 0.5^k.
        m, n = 100000, 10000
        k_opt = m / n * math.log(2)
        general = (1.0 - math.exp(-k_opt * n / m)) ** k_opt
        assert general == pytest.approx(0.5**k_opt, rel=1e-9)

    def test_overprovisioned_filter_beats_half_power_k(self):
        # 1000 bits/item caps k at 32; the true FPR is astronomically below
        # Eq. 6's 0.5^32, which the seed implementation reported.
        fpr = bloom_fpr(10000, 10)
        assert fpr < 0.5**32 / 1e10

    def test_underprovisioned_filter_is_worse_than_eq6(self):
        # 2 bits/item: k = 2, true FPR (1 - e^-1)^2 = 0.3996 > 0.25 = 0.5^2.
        fpr = bloom_fpr(20000, 10000)
        assert fpr == pytest.approx((1 - math.exp(-1)) ** 2, rel=1e-6)
        assert fpr > 0.25

    def test_explicit_hash_count(self):
        assert bloom_fpr(1000, 100, num_hashes=1) == pytest.approx(
            1 - math.exp(-0.1), rel=1e-9
        )
        with pytest.raises(ValueError):
            bloom_fpr(1000, 100, num_hashes=0)

    def test_edge_cases(self):
        assert bloom_fpr(1000, 0) == 0.0
        assert bloom_fpr(0, 10) == 1.0
        assert 1 <= bloom_hash_count(1000, 100) <= 32


class TestBloomFilters:
    def test_no_false_negatives(self):
        rng = random.Random(12)
        items = rng.sample(range(1 << 40), 2000)
        bloom = BloomFilter.from_items(items, num_bits=2000 * 10, seed=3)
        assert all(bloom.contains(item) for item in items)

    def test_empirical_fpr_tracks_theory(self):
        rng = random.Random(13)
        universe = 1 << 40
        items = set(rng.sample(range(universe), 5000))
        bloom = BloomFilter.from_items(list(items), num_bits=5000 * 10, seed=5)
        probes = 0
        positives = 0
        while probes < 20000:
            candidate = rng.randrange(universe)
            if candidate in items:
                continue
            probes += 1
            positives += bloom.contains(candidate)
        empirical = positives / probes
        theoretical = bloom.theoretical_fpr()
        assert empirical < 3 * theoretical + 0.002
        assert theoretical < 3 * empirical + 0.002

    def test_counting_bloom_remove(self):
        bloom = CountingBloomFilter(4000, 300, seed=7)
        bloom.add(42)
        bloom.add(42)
        assert bloom.contains(42)
        assert bloom.count(42) >= 2
        bloom.remove(42)
        assert bloom.contains(42)
        bloom.remove(42)
        assert not bloom.contains(42)
        with pytest.raises(KeyError):
            bloom.remove(42)

    def test_blocked_bloom_no_false_negatives(self):
        rng = random.Random(14)
        items = rng.sample(range(1 << 40), 1000)
        blocked = BlockedBloomFilter(1000 * 12, 1000, seed=9)
        blocked.add_many(items)
        assert all(blocked.contains(item) for item in items)
