"""Seeded randomized property suite for the key/batch/merge substrate.

Every test here is a property checked over hundreds of *randomly
generated* inputs (no hand-picked cases) with fixed seeds, so the suite
is deterministic yet covers input shapes no example-based test would
enumerate: duplicate-heavy int lists, mixed ``str``/``bytes`` keys with
embedded and trailing nulls, runs whose key ranges interleave, slices
taken at every boundary.  The invariants pinned:

* :func:`~repro.workloads.batch.coerce_keys` always yields a sorted,
  distinct, round-trippable :class:`~repro.workloads.keyset.KeySet`
  equal to the sorted-set of its input, for int, ``bytes`` and ``str``
  inputs alike;
* :func:`~repro.workloads.batch.coerce_query_batch` preserves pairs
  verbatim and rejects inverted/out-of-space ranges;
* :func:`~repro.lsm.merge.merge_entry_runs` (vector + byte fast paths)
  agrees entry-for-entry with the :func:`~repro.lsm.merge.
  merge_entry_runs_scalar` heap-merge reference, for every tombstone
  pattern and ``drop_tombstones`` flag;
* ``ByteKeySet.slice`` / ``sorted_take`` agree with plain python list
  slicing/selection while aliasing (slice) the parent buffers;
* filters never produce a false negative against the
  :class:`~repro.filters.base.TrieOracle`, and their batched entry
  points agree with their scalar ones query-for-query.
"""

import random

import numpy as np
import pytest

from repro.api import FilterSpec, Workload, build_filter
from repro.filters.base import TrieOracle
from repro.lsm.merge import EntryRun, merge_entry_runs, merge_entry_runs_scalar
from repro.workloads.batch import (
    EncodedKeySet,
    QueryBatch,
    coerce_keys,
    coerce_query_batch,
)
from repro.workloads.bytekeys import ByteKeySet

WIDTH = 32
NUM_TRIALS = 40  # trials per property; each trial draws a fresh input


def _random_int_keys(rng, size, width=WIDTH):
    """Duplicate-heavy unsorted int draw (duplicates stress dedupe paths)."""
    top = 1 << width
    pool = [rng.randrange(top) for _ in range(max(1, size // 2))]
    return [rng.choice(pool) if rng.random() < 0.4 else rng.randrange(top)
            for _ in range(size)]


def _random_byte_keys(rng, size, max_length=WIDTH // 8):
    """Unsorted byte/str mix with embedded nulls and shared prefixes."""
    alphabet = [b"a", b"b", b"\x00", b"z", b"\xff"]
    keys = []
    for _ in range(size):
        length = rng.randrange(1, max_length + 1)
        raw = b"".join(rng.choice(alphabet) for _ in range(length))
        # Trailing nulls are canonicalised away; sometimes hand one in to
        # check the cleaner, sometimes pass the str form.
        if rng.random() < 0.3:
            raw += b"\x00"
        if rng.random() < 0.3 and all(b < 0x80 for b in raw):
            keys.append(raw.rstrip(b"\x00").decode("ascii"))
        else:
            keys.append(raw)
    return keys


def _canonical_bytes(key):
    if isinstance(key, str):
        key = key.encode("utf-8")
    return key.rstrip(b"\x00")


# --------------------------------------------------------------------- #
# coerce_keys                                                           #
# --------------------------------------------------------------------- #


def test_coerce_keys_int_sorted_distinct_roundtrip():
    rng = random.Random(0xC0E1)
    for trial in range(NUM_TRIALS):
        raw = _random_int_keys(rng, rng.randrange(1, 400))
        key_set = coerce_keys(raw, WIDTH)
        expected = sorted(set(raw))
        assert isinstance(key_set, EncodedKeySet)
        assert key_set.as_list() == expected, f"trial {trial}"
        arr = key_set.keys
        assert (arr[1:] > arr[:-1]).all()  # strictly sorted = distinct


def test_coerce_keys_bytes_sorted_distinct_roundtrip():
    rng = random.Random(0xB17E)
    for trial in range(NUM_TRIALS):
        raw = _random_byte_keys(rng, rng.randrange(1, 300))
        key_set = coerce_keys(raw, WIDTH)
        expected = sorted({_canonical_bytes(key) for key in raw})
        assert isinstance(key_set, ByteKeySet)
        assert key_set.as_list() == expected, f"trial {trial}"
        padded = key_set.keys
        assert (padded[1:] > padded[:-1]).all()


def test_coerce_keys_keyset_passthrough_is_identity():
    rng = random.Random(0x1D)
    for _ in range(10):
        key_set = coerce_keys(_random_int_keys(rng, 50), WIDTH)
        assert coerce_keys(key_set, WIDTH) is key_set
        assert coerce_keys(key_set) is key_set
        with pytest.raises(ValueError, match="width"):
            coerce_keys(key_set, WIDTH * 2)


# --------------------------------------------------------------------- #
# coerce_query_batch                                                    #
# --------------------------------------------------------------------- #


def test_coerce_query_batch_preserves_pairs_verbatim():
    rng = random.Random(0x9A7C)
    top = 1 << WIDTH
    for trial in range(NUM_TRIALS):
        pairs = []
        for _ in range(rng.randrange(1, 200)):
            lo = rng.randrange(top)
            hi = min(top - 1, lo + rng.randrange(1024))
            pairs.append((lo, hi))
        batch = coerce_query_batch(pairs, WIDTH)
        assert isinstance(batch, QueryBatch)
        assert list(batch.pairs()) == pairs, f"trial {trial}"


def test_coerce_query_batch_rejects_bad_ranges():
    rng = random.Random(0xBAD)
    top = 1 << WIDTH
    for _ in range(NUM_TRIALS):
        good = [(5, 10)] * rng.randrange(0, 5)
        position = rng.randrange(len(good) + 1)
        if rng.random() < 0.5:
            lo = rng.randrange(1, top)
            bad = (lo, lo - rng.randrange(1, lo + 1))  # inverted
        else:
            bad = (rng.randrange(top), top + rng.randrange(1 << 8))  # too wide
        with pytest.raises(ValueError):
            coerce_query_batch(good[:position] + [bad] + good[position:], WIDTH)


# --------------------------------------------------------------------- #
# merge_entry_runs vs the scalar heap-merge reference                   #
# --------------------------------------------------------------------- #


def _random_runs(rng, make_keys, num_runs):
    runs = []
    for _ in range(num_runs):
        key_set = coerce_keys(make_keys(rng, rng.randrange(1, 120)), WIDTH)
        tombstones = None
        if rng.random() < 0.7:
            tombstones = np.array(
                [rng.random() < 0.3 for _ in range(len(key_set))], dtype=bool
            )
            if not tombstones.any():
                tombstones = None
        runs.append(EntryRun(key_set, tombstones))
    return runs


@pytest.mark.parametrize("make_keys", [_random_int_keys, _random_byte_keys],
                         ids=["int", "bytes"])
@pytest.mark.parametrize("drop_tombstones", [False, True])
def test_merge_entry_runs_matches_scalar_reference(make_keys, drop_tombstones):
    rng = random.Random(0x3E6E)
    for trial in range(NUM_TRIALS):
        runs = _random_runs(rng, make_keys, rng.randrange(1, 6))
        fast = merge_entry_runs(runs, drop_tombstones=drop_tombstones)
        reference = merge_entry_runs_scalar(runs, drop_tombstones=drop_tombstones)
        assert fast.keys.as_list() == reference.keys.as_list(), f"trial {trial}"
        assert (fast.tombstone_mask() == reference.tombstone_mask()).all()


def test_merge_entry_runs_newest_wins():
    """The first run shadows every later run on shared keys."""
    rng = random.Random(0x11EA)
    for _ in range(NUM_TRIALS):
        shared = sorted(set(_random_int_keys(rng, 60)))
        newest = EntryRun(
            coerce_keys(shared, WIDTH),
            np.array([rng.random() < 0.5 for _ in shared], dtype=bool),
        )
        older = EntryRun(coerce_keys(shared, WIDTH))  # all live
        merged = merge_entry_runs([newest, older])
        assert merged.keys.as_list() == shared
        assert (merged.tombstone_mask() == newest.tombstone_mask()).all()


# --------------------------------------------------------------------- #
# ByteKeySet.slice / sorted_take                                        #
# --------------------------------------------------------------------- #


def test_byte_key_set_slice_matches_list_slicing_and_aliases():
    rng = random.Random(0x51C3)
    for trial in range(NUM_TRIALS):
        key_set = coerce_keys(_random_byte_keys(rng, rng.randrange(2, 200)), WIDTH)
        as_list = key_set.as_list()
        start = rng.randrange(len(key_set))
        stop = rng.randrange(start, len(key_set) + 1)
        window = key_set.slice(start, stop)
        assert window.as_list() == as_list[start:stop], f"trial {trial}"
        # The aliasing contract: the slice's padded view shares the
        # parent's memory (zero-copy — what SSTables and shards rely on).
        if len(window):
            assert np.shares_memory(window.keys, key_set.keys)


def test_byte_key_set_sorted_take_matches_list_selection():
    rng = random.Random(0x7A6E)
    for trial in range(NUM_TRIALS):
        key_set = coerce_keys(_random_byte_keys(rng, rng.randrange(2, 200)), WIDTH)
        as_list = key_set.as_list()
        size = rng.randrange(1, len(key_set) + 1)
        indices = np.array(rng.sample(range(len(key_set)), size), dtype=np.int64)
        taken = key_set.sorted_take(indices)
        assert taken.as_list() == sorted(as_list[i] for i in indices), f"trial {trial}"


# --------------------------------------------------------------------- #
# zero false negatives + scalar/batch parity                            #
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("family", ["bloom", "prefix_bloom", "proteus"])
def test_filters_zero_false_negatives_vs_oracle(family):
    rng = random.Random(0xFB + hash(family) % 1000)
    for trial in range(6):
        keys = sorted(set(_random_int_keys(rng, 400)))
        queries = []
        for _ in range(150):
            lo = rng.randrange(1 << WIDTH)
            hi = min((1 << WIDTH) - 1, lo + rng.randrange(512))
            queries.append((lo, hi))
        workload = Workload(coerce_keys(keys, WIDTH), queries)
        filt = build_filter(FilterSpec(family, 12.0), workload.keys, workload)
        oracle = TrieOracle(keys, WIDTH)
        probes = keys[:50] + [rng.randrange(1 << WIDTH) for _ in range(100)]
        truth_points = oracle.may_contain_many(np.array(probes, dtype=np.int64))
        answer_points = filt.may_contain_many(np.array(probes, dtype=np.int64))
        assert not (truth_points & ~answer_points).any(), f"trial {trial}"
        truth_ranges = oracle.may_intersect_many(queries)
        answer_ranges = filt.may_intersect_many(queries)
        assert not (truth_ranges & ~answer_ranges).any(), f"trial {trial}"
        # Scalar-vs-batch parity on the same draws.
        assert [filt.may_contain(p) for p in probes] == answer_points.tolist()
        assert [
            filt.may_intersect(lo, hi) for lo, hi in queries
        ] == answer_ranges.tolist()
