"""Tests for the observability substrate: metrics, probe traces, drift.

Three contracts are pinned here:

* the :mod:`repro.obs.metrics` registry is internally consistent and its
  exports validate against their own schema checker;
* a :class:`~repro.obs.trace.ProbeTrace` reconciles *exactly* against the
  :class:`~repro.lsm.cost.ProbeResult` of the probe it observed — even
  when the ring buffer dropped most events;
* the :class:`~repro.obs.drift.DriftMonitor` is deterministic, stays quiet
  when the live queries match the design sample, and flags a forced
  query-mix shift — and disabled instrumentation leaves the hot paths
  byte-identical in output and unmeasurably close in time.
"""

import json
import time

import numpy as np
import pytest

from repro.api import FilterSpec, Workload, build_filter
from repro.filters.base import TrieOracle
from repro.lsm import LSMTree
from repro.obs.drift import DriftMonitor, predicted_tree_fpr
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Histogram,
    MetricsRegistry,
    timed,
    validate_metrics_payload,
)
from repro.obs.trace import TRACE_FIELDS, ProbeTrace
from repro.workloads.batch import QueryBatch
from repro.workloads.generators import QUERY_FAMILIES

WIDTH = 32


def held_out(workload: Workload, count: int, seed: int, family: str) -> QueryBatch:
    import random

    pairs = QUERY_FAMILIES[family](
        random.Random(seed), workload.keys.as_list(), count, workload.width
    )
    return QueryBatch.from_pairs(pairs, workload.width)


class TestMetricsRegistry:
    def test_counters_accumulate_and_reject_decrease(self):
        registry = MetricsRegistry()
        registry.inc("a.b")
        registry.inc("a.b", 2.5)
        assert registry.counter("a.b").value == 3.5
        with pytest.raises(ValueError, match="cannot decrease"):
            registry.inc("a.b", -1)

    def test_gauges_are_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 4)
        registry.set_gauge("g", 7.5)
        assert registry.gauge("g").value == 7.5

    def test_histogram_places_samples_in_the_right_buckets(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 10.0, 11.0):
            hist.observe(value)
        # <=1, <=10, +inf overflow
        assert hist.counts == [2, 2, 1]
        assert hist.count == 5
        assert hist.total == pytest.approx(27.5)
        payload = hist.to_dict()
        assert len(payload["counts"]) == len(payload["buckets"]) + 1

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, float("inf")))

    def test_name_reuse_across_kinds_is_an_error(self):
        registry = MetricsRegistry()
        registry.inc("x")
        with pytest.raises(ValueError, match="different kind"):
            registry.set_gauge("x", 1.0)
        with pytest.raises(ValueError, match="different kind"):
            registry.observe("x", 1.0)

    def test_timer_observes_elapsed_seconds(self):
        registry = MetricsRegistry()
        with registry.timer("t"):
            time.sleep(0.01)
        hist = registry.histogram("t")
        assert hist.count == 1
        assert hist.total >= 0.005

    def test_timed_is_a_noop_without_a_registry(self):
        with timed(None, "t"):
            pass  # must not raise, must not record anywhere

    def test_to_dict_round_trips_through_json_and_validates(self):
        registry = MetricsRegistry()
        registry.inc("c", 3)
        registry.set_gauge("g", 1.5)
        registry.observe("h", 0.02)
        payload = json.loads(json.dumps(registry.to_dict()))
        assert validate_metrics_payload(payload) == []
        assert payload["counters"]["c"] == 3
        assert payload["histograms"]["h"]["count"] == 1

    def test_prometheus_export_has_the_conventional_shapes(self):
        registry = MetricsRegistry()
        registry.inc("build.filters", 2)
        registry.set_gauge("design.last_total_bits", 512)
        registry.observe("build.seconds", 0.5, buckets=(1.0, 10.0))
        registry.observe("build.seconds", 5.0, buckets=(1.0, 10.0))
        text = registry.to_prometheus()
        assert "build_filters_total 2" in text
        assert "design_last_total_bits 512" in text
        # Cumulative bucket counts with le labels, then +Inf, sum, count.
        assert 'build_seconds_bucket{le="1"} 1' in text
        assert 'build_seconds_bucket{le="10"} 2' in text
        assert 'build_seconds_bucket{le="+Inf"} 2' in text
        assert "build_seconds_count 2" in text

    def test_validate_catches_malformed_payloads(self):
        assert validate_metrics_payload({}) != []
        bad_counter = {
            "counters": {"c": -1},
            "gauges": {},
            "histograms": {},
        }
        assert any("negative" in p for p in validate_metrics_payload(bad_counter))
        bad_hist = {
            "counters": {},
            "gauges": {},
            "histograms": {
                "h": {"buckets": [1.0], "counts": [1, 2], "count": 5, "sum": 1.0}
            },
        }
        assert any("counts sum" in p for p in validate_metrics_payload(bad_hist))
        short_hist = {
            "counters": {},
            "gauges": {},
            "histograms": {"h": {"buckets": [1.0, 2.0], "counts": [1], "count": 1,
                                 "sum": 0.5}},
        }
        assert any("buckets + 1" in p for p in validate_metrics_payload(short_hist))

    def test_default_time_buckets_are_strictly_increasing(self):
        assert list(DEFAULT_TIME_BUCKETS) == sorted(set(DEFAULT_TIME_BUCKETS))


@pytest.fixture(scope="module")
def workload() -> Workload:
    return Workload.generate(num_keys=2000, num_queries=900, width=WIDTH, seed=17)


@pytest.fixture(scope="module")
def filtered_tree(workload) -> LSMTree:
    tree = LSMTree.build(workload.keys, sst_keys=256, fanout=4, seed=17)
    tree.attach_filters(FilterSpec("proteus", 12.0), workload)
    return tree


class TestProbeTrace:
    def test_totals_reconcile_exactly_with_the_probe_result(
        self, filtered_tree, workload
    ):
        trace = ProbeTrace()
        result = filtered_tree.probe(workload.queries, trace=trace)
        assert trace.reconcile(result) == []
        # Spot-check one field end to end, not just through reconcile().
        assert trace.totals["blocks_read"] == int(result.blocks_read.sum())
        assert trace.num_events == int(result.candidates.sum())
        assert trace.dropped == 0

    def test_ring_buffer_drops_events_but_keeps_totals_exact(
        self, filtered_tree, workload
    ):
        trace = ProbeTrace(capacity=64)
        result = filtered_tree.probe(workload.queries, trace=trace)
        assert trace.dropped == trace.num_events - 64
        assert trace.dropped > 0
        assert trace.reconcile(result) == []  # totals never evicted

    def test_reconcile_reports_every_mismatching_field(
        self, filtered_tree, workload
    ):
        trace = ProbeTrace()
        result = filtered_tree.probe(workload.queries, trace=trace)
        result.blocks_read[0] += 1
        result.candidates[0] += 2
        mismatches = trace.reconcile(result)
        assert len(mismatches) == 2
        assert any("blocks_read" in m for m in mismatches)
        assert any("candidates" in m for m in mismatches)

    def test_to_dict_caps_events_and_carries_all_fields(
        self, filtered_tree, workload
    ):
        trace = ProbeTrace()
        filtered_tree.probe(workload.queries, trace=trace)
        payload = trace.to_dict(max_events=8)
        assert len(payload["events"]) == 8
        assert set(payload["totals"]) == set(TRACE_FIELDS)
        assert payload["num_events"] == trace.num_events
        assert payload["capacity"] == trace.capacity

    def test_tracing_does_not_change_the_probe_result(
        self, filtered_tree, workload
    ):
        plain = filtered_tree.probe(workload.queries)
        traced = filtered_tree.probe(workload.queries, trace=ProbeTrace())
        for field in TRACE_FIELDS:
            assert (getattr(plain, field) == getattr(traced, field)).all()


class TestDriftMonitor:
    def test_rejects_invalid_construction_and_observations(self):
        with pytest.raises(ValueError):
            DriftMonitor(predicted_fpr=1.5)
        with pytest.raises(ValueError):
            DriftMonitor(0.01, window=0)
        with pytest.raises(ValueError):
            DriftMonitor(0.01, min_empty=0)
        monitor = DriftMonitor(0.01)
        with pytest.raises(ValueError, match="exceed"):
            monitor.observe(5, 3)
        with pytest.raises(ValueError):
            monitor.observe(-1, 3)

    def test_identical_observation_sequences_are_deterministic(self):
        # Pure arithmetic: two monitors fed the same seeded stream agree
        # report for report, and in their final serialised state.
        rng = np.random.default_rng(99)
        stream = [(int(fp), 100 + int(fp)) for fp in rng.integers(0, 20, size=40)]
        first = DriftMonitor(0.05, window=6, min_empty=200)
        second = DriftMonitor(0.05, window=6, min_empty=200)
        for fp, empty in stream:
            assert first.observe(fp, empty) == second.observe(fp, empty)
        assert first.to_dict() == second.to_dict()

    def test_warm_up_guard_suppresses_early_flags(self):
        monitor = DriftMonitor(0.01, min_empty=100)
        report = monitor.observe(30, 50)  # 60% observed, but only 50 trials
        assert not report.warmed_up
        assert not report.drifted
        report = monitor.observe(30, 50)  # window now holds 100 trials
        assert report.warmed_up
        assert report.drifted

    def test_window_tracks_the_current_mix_not_the_lifetime_mean(self):
        monitor = DriftMonitor(0.5, window=2, abs_threshold=0.1, min_empty=10)
        for _ in range(50):
            monitor.observe(50, 100)  # long quiet history at the prediction
        assert not monitor.drifted
        monitor.observe(100, 100)
        report = monitor.observe(100, 100)  # window now all post-shift
        assert report.observed_fpr == 1.0
        assert report.drifted

    def test_reset_clears_the_window_and_repins_the_prediction(self):
        monitor = DriftMonitor(0.01, min_empty=10)
        monitor.observe(50, 100)
        assert monitor.drifted
        monitor.reset(predicted_fpr=0.5)
        assert monitor.last_report is None
        assert not monitor.drifted
        assert monitor.predicted_fpr == 0.5
        assert monitor.num_batches == 0

    def test_no_drift_on_the_training_query_mix(self, workload):
        # Graded on held-out batches from the *same* family it designed
        # against, the filter's observed FPR stays inside the allowance:
        # the monitor never cries wolf on the mix it was built for.
        filt = build_filter(FilterSpec("proteus", 14.0), workload.keys, workload)
        oracle = TrieOracle(workload.keys.keys, WIDTH)
        monitor = DriftMonitor(filt.expected_fpr, window=4, min_empty=64)
        for seed in range(60, 66):
            batch = held_out(workload, 600, seed, "mixed")
            report = monitor.observe_answers(
                filt.may_intersect_many(batch), oracle.may_intersect_many(batch)
            )
        assert report.warmed_up
        assert monitor.num_drift_flags == 0

    def test_forced_query_mix_shift_is_flagged(self):
        # Train on easy uniform ranges, then serve correlated (near-key)
        # ranges: the design never saw the hard mix, its prediction is far
        # too optimistic, and the monitor must flag the divergence.
        trained = Workload.generate(
            num_keys=2000, num_queries=900, width=WIDTH, seed=21,
            query_family="uniform",
        )
        filt = build_filter(FilterSpec("proteus", 14.0), trained.keys, trained)
        oracle = TrieOracle(trained.keys.keys, WIDTH)
        monitor = DriftMonitor(filt.expected_fpr, window=4, min_empty=64)
        for seed in range(70, 74):
            batch = held_out(trained, 600, seed, "correlated")
            monitor.observe_answers(
                filt.may_intersect_many(batch), oracle.may_intersect_many(batch)
            )
        assert monitor.drifted
        assert monitor.observed_fpr > monitor.predicted_fpr

    def test_observe_result_grades_an_lsm_probe(self, filtered_tree, workload):
        predicted = predicted_tree_fpr(filtered_tree)
        assert predicted is not None and 0.0 < predicted < 1.0
        result = filtered_tree.probe(workload.queries)
        monitor = DriftMonitor(predicted)
        report = monitor.observe_result(result, num_ssts=filtered_tree.num_ssts)
        assert report.window_empty == (
            result.num_queries * filtered_tree.num_ssts
            - int(result.required_reads.sum())
        )
        # Same tree, same mix it designed for: no drift.
        assert not report.drifted

    def test_predicted_tree_fpr_is_none_without_predictions(self, workload):
        bare = LSMTree.build(workload.keys, sst_keys=256, fanout=4, seed=17)
        assert predicted_tree_fpr(bare) is None
        bare.attach_filters(FilterSpec("bloom", 10.0), workload)
        assert predicted_tree_fpr(bare) is None  # bloom has no expected_fpr


class TestDisabledOverhead:
    def test_untraced_probe_is_byte_identical_and_not_slower(
        self, filtered_tree, workload
    ):
        # The overhead contract: with instrumentation off (the defaults),
        # the probe path pays one `is None` check per routed SST group.
        # Results must be identical; wall-clock must be statistically
        # indistinguishable (min-of-5, generous 1.5x bound for CI noise).
        batch = workload.queries
        baseline = filtered_tree.probe(batch)
        explicit = filtered_tree.probe(batch, trace=None)
        for field in TRACE_FIELDS:
            assert (getattr(baseline, field) == getattr(explicit, field)).all()

        def best_of(repeats, fn):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        plain = best_of(5, lambda: filtered_tree.probe(batch))
        disabled = best_of(5, lambda: filtered_tree.probe(batch, trace=None))
        assert disabled <= plain * 1.5 + 1e-3

    def test_uninstrumented_build_is_unchanged_by_the_metrics_plumbing(
        self, workload
    ):
        # metrics=None must leave the chosen design and the answers exactly
        # as they were before the instrumentation existed.
        plain = build_filter(FilterSpec("proteus", 12.0), workload.keys, workload)
        registry = MetricsRegistry()
        instrumented = build_filter(
            FilterSpec("proteus", 12.0), workload.keys, workload, metrics=registry
        )
        assert plain.design == instrumented.design
        batch = held_out(workload, 500, 31, "mixed")
        assert (
            plain.may_intersect_many(batch)
            == instrumented.may_intersect_many(batch)
        ).all()
        # And the registry actually saw the build it was given.
        counters = registry.to_dict()["counters"]
        assert counters["build.filters"] == 1
        assert counters["design.searches"] == 1
        assert counters["cpfpr.evaluations"] > 0
