"""Unit tests for the seed ``repro.keys`` modules."""

import random

import pytest

from repro.keys import (
    IntegerKeySpace,
    StringKeySpace,
    lcp_bits,
    min_distinguishing_prefix_lengths,
    prefix_of,
    prefix_range,
    prefix_range_count,
    prefix_to_range,
    query_set_lcp,
    unique_prefix_counts,
)


class TestKeySpaces:
    def test_integer_roundtrip(self):
        space = IntegerKeySpace(16)
        for value in (0, 1, 12345, (1 << 16) - 1):
            assert space.decode(space.encode(value)) == value

    def test_integer_out_of_range(self):
        space = IntegerKeySpace(8)
        with pytest.raises(ValueError):
            space.encode(256)
        with pytest.raises(ValueError):
            space.encode(-1)

    def test_string_preserves_order(self):
        space = StringKeySpace(8)
        words = [b"", b"a", b"aa", b"ab", b"b", b"ba", b"zz", b"zzzzzzzz"]
        encoded = [space.encode(w) for w in words]
        assert encoded == sorted(encoded)

    def test_string_roundtrip_and_padding(self):
        space = StringKeySpace.for_keys(["apple", "fig", "banana"])
        assert space.max_length == 6
        assert space.decode(space.encode("fig")) == b"fig"
        # Null padding means a short key and its padded twin collide.
        assert space.encode(b"fig") == space.encode(b"fig\x00")

    def test_string_too_long(self):
        with pytest.raises(ValueError):
            StringKeySpace(3).encode(b"abcd")


class TestPrefixArithmetic:
    def test_prefix_of_endpoints(self):
        assert prefix_of(0b1011, 0, 4) == 0
        assert prefix_of(0b1011, 4, 4) == 0b1011
        assert prefix_of(0b1011, 2, 4) == 0b10

    def test_prefix_to_range_inverts_prefix_of(self):
        rng = random.Random(3)
        width = 16
        for _ in range(200):
            key = rng.randrange(1 << width)
            length = rng.randrange(width + 1)
            lo, hi = prefix_to_range(prefix_of(key, length, width), length, width)
            assert lo <= key <= hi

    def test_prefix_range_brute_force(self):
        width = 8
        rng = random.Random(4)
        for _ in range(100):
            lo = rng.randrange(1 << width)
            hi = rng.randrange(lo, 1 << width)
            length = rng.randrange(width + 1)
            expected = {prefix_of(v, length, width) for v in range(lo, hi + 1)}
            plo, phi = prefix_range(lo, hi, length, width)
            assert set(range(plo, phi + 1)) == expected
            assert prefix_range_count(lo, hi, length, width) == len(expected)


class TestLcp:
    def test_lcp_bits_brute_force(self):
        width = 8
        for a in range(0, 256, 7):
            for b in range(0, 256, 11):
                expected = 0
                for length in range(width + 1):
                    if a >> (width - length) == b >> (width - length):
                        expected = length
                assert lcp_bits(a, b, width) == expected

    def test_unique_prefix_counts_brute_force(self):
        width = 12
        rng = random.Random(5)
        keys = sorted(rng.sample(range(1 << width), 200))
        counts = unique_prefix_counts(keys, width)
        for length in range(width + 1):
            assert counts[length] == len({k >> (width - length) for k in keys})

    def test_query_set_lcp_brute_force(self):
        width = 10
        rng = random.Random(6)
        keys = sorted(rng.sample(range(1 << width), 40))
        for _ in range(200):
            lo = rng.randrange(1 << width)
            hi = min((1 << width) - 1, lo + rng.randrange(1, 64))
            expected = max(
                (lcp_bits(k, v, width) for k in keys for v in (lo, hi)),
                default=0,
            )
            if any(lo <= k <= hi for k in keys):
                expected = width
            assert query_set_lcp(keys, lo, hi, width) == expected

    def test_min_distinguishing_prefixes_are_unique(self):
        width = 16
        rng = random.Random(7)
        keys = sorted(rng.sample(range(1 << width), 300))
        lengths = min_distinguishing_prefix_lengths(keys, width)
        truncated = [k >> (width - n) << (width - n) for k, n in zip(keys, lengths)]
        # At its distinguishing length, each key's prefix matches no other key.
        for key, length in zip(keys, lengths):
            if length == width:
                continue
            matches = [k for k in keys if k >> (width - length) == key >> (width - length)]
            assert matches == [key]
        assert len(truncated) == len(keys)
