"""The unified construction API: FilterSpec round-trips, registry
completeness, the build protocol, and budget adherence.

Three contract layers are pinned:

* ``FilterSpec`` is frozen, JSON round-trippable, and rejects malformed
  input instead of silently dropping it;
* every exported ``RangeFilter`` family is registered and buildable through
  ``build_filter`` at 8/12/16 bits per key on a seeded workload, with zero
  false negatives against the exact oracle;
* the built filters actually honour the spec's budget: ``bits_per_key()``
  never overshoots materially, and the Bloom-backed families use the
  budget they were given (SuRF may legitimately undershoot — its trie can
  be smaller than a generous budget).
"""

import pytest

from repro.api import (
    FilterSpec,
    Workload,
    build_filter,
    family,
    register_family,
    registered_families,
)
from repro.api.registry import _FAMILIES
from repro.filters.base import TrieOracle

WIDTH = 28

#: Every filter family the package exports, and whether SuRF-style
#: budget-undershoot is legitimate for it.
EXPECTED_FAMILIES = {
    "proteus": False,
    "1pbf": False,
    "2pbf": False,
    "surf": True,
    "rosetta": False,
    "prefix_bloom": False,
    "bloom": False,
    "oracle": True,
}

#: Relative overshoot allowance: byte-granular BitArray payloads and
#: Rosetta's per-level floors round a requested budget up by a few bits.
BUDGET_SLACK_BITS = 128


@pytest.fixture(scope="module")
def workload():
    return Workload.generate(
        num_keys=1500, num_queries=600, width=WIDTH, seed=11,
        key_dist="uniform", query_family="mixed",
    )


# --------------------------------------------------------------------- #
# FilterSpec                                                            #
# --------------------------------------------------------------------- #


class TestFilterSpec:
    def test_json_round_trip(self):
        specs = [
            FilterSpec("proteus"),
            FilterSpec("rosetta", 10.5),
            FilterSpec("prefix_bloom", 8, {"prefix_len": 20, "seed": 3}),
            FilterSpec("surf", 12.0, {"max_depth": 2}),
        ]
        for spec in specs:
            assert FilterSpec.from_dict(spec.to_dict()) == spec
            assert FilterSpec.from_json(spec.to_json()) == spec

    def test_params_are_read_only(self):
        spec = FilterSpec("bloom", 8, {"seed": 1})
        with pytest.raises(TypeError):
            spec.params["seed"] = 2
        with pytest.raises(AttributeError):
            spec.family = "rosetta"

    def test_to_dict_detached_from_spec(self):
        spec = FilterSpec("bloom", 8, {"seed": 1})
        data = spec.to_dict()
        data["params"]["seed"] = 99
        assert spec.params["seed"] == 1

    def test_rejects_malformed_input(self):
        with pytest.raises(ValueError):
            FilterSpec("")
        with pytest.raises(ValueError):
            FilterSpec("bloom", 0)
        with pytest.raises(ValueError):
            FilterSpec("bloom", -3.5)
        with pytest.raises(ValueError, match="family"):
            FilterSpec.from_dict({"bits_per_key": 8})
        with pytest.raises(ValueError, match="unknown"):
            FilterSpec.from_dict({"family": "bloom", "bit_budget": 8})
        with pytest.raises(ValueError, match="params"):
            FilterSpec.from_dict({"family": "bloom", "params": [1, 2]})

    def test_specs_are_hashable(self):
        # Frozen value objects must work as dict keys (per-spec caches).
        a = FilterSpec("proteus", 14, {"seed": 1})
        b = FilterSpec("proteus", 14, {"seed": 1})
        assert hash(a) == hash(b) and len({a, b}) == 1
        assert hash(a) != hash(a.with_budget(16))

    def test_with_budget_and_with_params(self):
        spec = FilterSpec("rosetta", 8, {"seed": 1})
        wider = spec.with_budget(16)
        assert wider.bits_per_key == 16 and wider.params == spec.params
        merged = spec.with_params(num_levels=4)
        assert merged.params == {"seed": 1, "num_levels": 4}
        assert spec.params == {"seed": 1}  # original untouched


# --------------------------------------------------------------------- #
# Registry completeness and the build protocol                          #
# --------------------------------------------------------------------- #


def test_every_exported_family_is_registered():
    assert set(EXPECTED_FAMILIES) <= set(registered_families())


@pytest.mark.parametrize("name", sorted(EXPECTED_FAMILIES))
@pytest.mark.parametrize("bits_per_key", [8, 12, 16])
def test_family_buildable_with_zero_false_negatives(name, bits_per_key, workload):
    filt = build_filter(FilterSpec(name, bits_per_key), workload.keys, workload)
    oracle = TrieOracle(workload.keys.keys, WIDTH)
    truth = oracle.may_intersect_many(workload.queries)
    answers = filt.may_intersect_many(workload.queries)
    assert not (truth & ~answers).any(), f"{name} dropped a key"
    assert filt.may_contain_many(workload.keys.keys).all()


@pytest.mark.parametrize("bits_per_key", [8, 12, 16])
def test_budget_adherence(bits_per_key, workload):
    budget = bits_per_key * len(workload.keys)
    for name, may_undershoot in EXPECTED_FAMILIES.items():
        if family(name).budget_free:
            continue
        filt = build_filter(FilterSpec(name, bits_per_key), workload.keys, workload)
        assert filt.size_in_bits() <= budget + BUDGET_SLACK_BITS, (
            f"{name} overshot the budget: {filt.size_in_bits()} > {budget}"
        )
        if not may_undershoot:
            assert filt.size_in_bits() >= 0.5 * budget, (
                f"{name} ignored the budget: {filt.size_in_bits()} << {budget}"
            )


def test_unknown_family_is_rejected(workload):
    with pytest.raises(ValueError, match="unknown filter family"):
        build_filter(FilterSpec("cuckoo"), workload.keys, workload)


def test_unknown_param_is_rejected(workload):
    spec = FilterSpec("rosetta", 8, {"nmu_levels": 4})  # typo'd knob
    with pytest.raises(ValueError, match="nmu_levels"):
        build_filter(spec, workload.keys, workload)


def test_conflicting_spec_width_is_rejected(workload):
    spec = FilterSpec("bloom", 8, {"width": WIDTH // 2})
    with pytest.raises(ValueError, match="width"):
        build_filter(spec, workload.keys, workload)


def test_self_designing_family_requires_workload(workload):
    for name in ("proteus", "1pbf", "2pbf"):
        assert family(name).requires_workload
        with pytest.raises(ValueError, match="workload"):
            build_filter(FilterSpec(name, 12), workload.keys)


def test_keys_default_to_the_workload_key_set(workload):
    via_default = build_filter(FilterSpec("bloom", 8), workload=workload)
    assert via_default.num_keys == len(workload.keys)


def test_key_subset_builds_against_shared_sample(workload):
    # The LSM per-SST pattern: one workload sample, a slice of the keys.
    subset = workload.keys.keys[: len(workload.keys) // 4]
    filt = build_filter(FilterSpec("proteus", 12), subset, workload)
    assert filt.num_keys == subset.size
    assert filt.may_contain_many(subset).all()


def test_duplicate_registration_is_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register_family("proteus")(TrieOracle)


def test_third_party_registration_round_trip(workload):
    class EchoOracle(TrieOracle):
        @classmethod
        def from_spec(cls, spec, keys=None, workload=None):
            return TrieOracle.from_spec.__func__(cls, spec, keys, workload)

    name = "test-echo-oracle"
    try:
        register_family(name, budget_free=True)(EchoOracle)
        filt = build_filter(FilterSpec(name, 8), workload.keys, workload)
        assert isinstance(filt, EchoOracle)
    finally:
        _FAMILIES.pop(name, None)


def test_registration_requires_from_spec():
    class NoProtocol:
        pass

    with pytest.raises(TypeError, match="from_spec"):
        register_family("test-no-protocol")(NoProtocol)


# --------------------------------------------------------------------- #
# Workload bundle                                                       #
# --------------------------------------------------------------------- #


class TestWorkload:
    def test_generate_records_provenance(self, workload):
        assert workload.metadata["seed"] == 11
        assert workload.describe()["num_keys"] == len(workload.keys)
        assert workload.width == WIDTH

    def test_raw_keys_need_a_key_space(self):
        with pytest.raises(ValueError, match="key_space"):
            Workload([1, 2, 3], [(0, 5)])

    def test_raw_domain_encoding(self):
        from repro.keys.keyspace import StringKeySpace

        words = ["pear", "peach", "plum"]
        space = StringKeySpace.for_keys(words)
        w = Workload(words, [("pea", "pec")], key_space=space)
        assert w.num_keys == 3 and w.num_queries == 1
        assert w.width == space.width

    def test_width_mismatch_is_rejected(self, workload):
        from repro.workloads.batch import QueryBatch

        other = QueryBatch.from_pairs([(0, 1)], WIDTH + 1)
        with pytest.raises(ValueError, match="width"):
            Workload(workload.keys, other)


# --------------------------------------------------------------------- #
# Per-SST budget derivation                                             #
# --------------------------------------------------------------------- #


class TestBudgetDerivation:
    def test_proportional_split_keeps_bits_per_key(self):
        from repro.api import allocate_sst_budgets

        budgets = allocate_sst_budgets(14.0, [512, 512, 100])
        assert budgets == [14.0, 14.0, 14.0]

    def test_equal_split_preserves_the_global_grant(self):
        from repro.api import allocate_sst_budgets

        counts = [512, 256, 64]
        budgets = allocate_sst_budgets(12.0, counts, policy="equal")
        total = sum(b * n for b, n in zip(budgets, counts))
        assert total == pytest.approx(12.0 * sum(counts))
        # Same total bits each: small SSTs run rich.
        per_sst = {round(b * n, 6) for b, n in zip(budgets, counts)}
        assert len(per_sst) == 1

    def test_rejects_bad_inputs(self):
        from repro.api import allocate_sst_budgets

        with pytest.raises(ValueError, match="at least one SST"):
            allocate_sst_budgets(8.0, [])
        with pytest.raises(ValueError, match="at least one key"):
            allocate_sst_budgets(8.0, [10, 0])
        with pytest.raises(ValueError, match="positive"):
            allocate_sst_budgets(0.0, [10])
        with pytest.raises(ValueError, match="unknown allocation policy"):
            allocate_sst_budgets(8.0, [10], policy="greedy")

    def test_derive_sst_specs_carries_family_and_params(self):
        from repro.api import derive_sst_specs

        spec = FilterSpec("proteus", 16.0, {"seed": 7})
        derived = derive_sst_specs(spec, [100, 200], policy="equal")
        assert [s.family for s in derived] == ["proteus", "proteus"]
        assert all(dict(s.params) == {"seed": 7} for s in derived)
        assert derived[0].bits_per_key > derived[1].bits_per_key
