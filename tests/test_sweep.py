"""The FPR-vs-bits-per-key sweep driver (the paper's core figure family).

Pins the report structure, the zero-false-negative guarantee it enforces,
the monotonicity checker, and the paper's headline outcome on a seeded
mixed workload: Proteus's empirical FPR is no worse than every fixed
baseline's at equal budget on at least one grid point (on this workload it
in fact dominates at every point — asserted loosely here to stay robust to
seed churn).
"""

import pytest

from repro.evaluation.sweep import check_monotone, run_sweep

FAMILIES = ("proteus", "prefix_bloom", "rosetta", "surf")
GRID = (8.0, 16.0)


@pytest.fixture(scope="module")
def report():
    return run_sweep(
        families=FAMILIES,
        grid=GRID,
        num_keys=1200,
        num_queries=500,
        width=26,
        seed=13,
        key_dist="uniform",
        query_family="mixed",
    )


def test_report_structure(report):
    assert set(report["curves"]) == set(FAMILIES)
    for name in FAMILIES:
        points = report["curves"][name]
        assert [p["bits_per_key"] for p in points] == list(GRID)
        for point in points:
            assert 0.0 <= point["empirical_fpr"] <= 1.0
            assert point["size_in_bits"] > 0
            assert point["spec"]["family"] == name
    assert report["evaluation"]["num_empty_queries"] > 0
    # The held-out batch is seeded independently of the design sample.
    assert report["evaluation"]["seed"] != report["workload"]["metadata"]["seed"]


def test_no_family_specific_branches(report):
    # Every curve point was produced by the same registry call: its spec
    # round-trips and names only the family + the budget.
    from repro.api import FilterSpec

    for points in report["curves"].values():
        for point in points:
            spec = FilterSpec.from_dict(point["spec"])
            assert spec.bits_per_key == point["bits_per_key"]


def test_proteus_at_least_matches_every_baseline_somewhere(report):
    baselines = [name for name in FAMILIES if name != "proteus"]
    dominated_points = [
        index
        for index in range(len(GRID))
        if all(
            report["curves"]["proteus"][index]["empirical_fpr"]
            <= report["curves"][name][index]["empirical_fpr"]
            for name in baselines
        )
    ]
    assert dominated_points, "Proteus never matched the baselines at equal budget"


def test_monotone_checker(report):
    # The real curves on this seed are monotone...
    assert check_monotone(report) == []
    # ...and a doctored rise is caught (and forgiven under tolerance).
    doctored = {
        "curves": {
            "fake": [
                {"bits_per_key": 8.0, "empirical_fpr": 0.2},
                {"bits_per_key": 16.0, "empirical_fpr": 0.25},
            ]
        }
    }
    assert len(check_monotone(doctored)) == 1
    assert check_monotone(doctored, tolerance=0.1) == []


def test_budget_free_family_is_rejected():
    with pytest.raises(ValueError, match="budget"):
        run_sweep(families=("oracle",), grid=(8.0,), num_keys=100,
                  num_queries=50, width=20, seed=1)


def test_empty_inputs_are_rejected():
    with pytest.raises(ValueError):
        run_sweep(families=(), grid=(8.0,))
    with pytest.raises(ValueError):
        run_sweep(families=("bloom",), grid=())


def test_cli_writes_report_and_gates(tmp_path, capsys):
    from repro.evaluation.sweep import main, plot_report

    output = tmp_path / "sweep.json"
    code = main(
        [
            "--keys", "400", "--queries", "200", "--width", "24",
            "--families", "proteus,prefix_bloom", "--grid", "8,16",
            "--check-monotone", "--monotone-tolerance", "0.05",
            "--output", str(output),
        ]
    )
    assert code == 0
    import json

    written = json.loads(output.read_text())
    assert set(written["curves"]) == {"proteus", "prefix_bloom"}
    capsys.readouterr()
    # plot_report degrades gracefully: True with matplotlib, False without —
    # either way the figure path decision is exercised, never an exception.
    outcome = plot_report(written, str(tmp_path / "curves.png"))
    assert outcome in (True, False)
    if outcome:
        assert (tmp_path / "curves.png").exists()
