"""Smoke tests for the benchmark harness driver (repro.evaluation.bench)."""

import json

import pytest

from repro.evaluation.bench import main, run_benchmarks


@pytest.fixture(scope="module")
def report():
    return run_benchmarks(num_keys=400, num_queries=200, width=32, seed=9, repeats=1)


class TestBenchHarness:
    def test_report_has_all_sections(self, report):
        assert set(report["speedups"]) >= {"design_search", "range_probe"}
        for timings in report["benchmarks"].values():
            assert timings["scalar_seconds"] > 0
            assert timings["batched_seconds"] > 0

    def test_cli_writes_report(self, tmp_path, capsys):
        output = tmp_path / "bench.json"
        code = main(
            [
                "--keys", "300", "--queries", "150", "--repeats", "1",
                "--output", str(output),
            ]
        )
        assert code == 0
        written = json.loads(output.read_text())
        assert "speedups" in written
        capsys.readouterr()  # swallow the printed report

    def test_min_speedup_gate_can_fail(self, capsys):
        # An absurd floor no machine reaches: the gate must return nonzero.
        code = main(["--keys", "300", "--queries", "150", "--repeats", "1",
                     "--min-speedup", "1e9"])
        assert code == 1
        capsys.readouterr()
