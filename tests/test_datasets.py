"""Dataset loaders: bundled corpora, determinism, and driver integration.

The loaders in :mod:`repro.workloads.datasets` are the repo's stand-ins
for the paper's real datasets (SOSD books/osm, YCSB-E, DBLP strings).
Pinned here:

* every registered dataset loads into a well-formed Workload (sorted
  distinct keys, full query count, provenance metadata) and is a pure
  function of its seeds;
* the committed DBLP corpus file equals its seeded synthesis, so an
  installation without package data reproduces the identical workload;
* ``dataset_queries`` redraws held-out queries against existing keys —
  the hook ``evaluation.sweep.held_out_queries`` relies on;
* the sweep and LSM-bench drivers run end to end on a dataset workload
  with zero false negatives (``--dataset`` smoke path).
"""

import random

import numpy as np
import pytest

from repro.workloads.bytekeys import ByteKeySet, ByteQueryBatch
from repro.workloads.datasets import (
    _DBLP_CORPUS_SEED,
    _DBLP_CORPUS_SIZE,
    DATA_DIR,
    DATASETS,
    dataset_queries,
    list_datasets,
    load_dataset,
    synthesize_dblp_corpus,
)

SMALL = dict(num_keys=512, num_queries=256)


def test_registry_names():
    assert list_datasets() == ["dblp", "sosd_books", "sosd_osm", "ycsb_e"]
    assert set(list_datasets()) == set(DATASETS)


def test_unknown_dataset_lists_the_names():
    with pytest.raises(ValueError, match="sosd_books"):
        load_dataset("tpc_h")


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_loads_well_formed_workload(name):
    workload = load_dataset(name, seed=3, **SMALL)
    assert workload.num_keys <= SMALL["num_keys"]
    assert workload.num_queries == SMALL["num_queries"]
    keys = workload.keys.as_list()
    assert keys == sorted(set(keys))  # sorted, distinct
    meta = workload.metadata
    assert meta["dataset"] == name
    assert meta["source"] == "dataset"
    assert meta["width"] == workload.width
    assert meta["seed"] == 3 and meta["query_seed"] == 4
    # Byte datasets carry byte types; SOSD facsimiles stay integer-encoded.
    if name in ("dblp", "ycsb_e"):
        assert isinstance(workload.keys, ByteKeySet)
        assert isinstance(workload.queries, ByteQueryBatch)
        assert workload.key_space is not None  # auto-attached string space
    else:
        assert not workload.keys.is_bytes
        assert workload.keys.is_vector  # 48/60-bit spaces ride int64


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_loader_is_deterministic(name):
    first = load_dataset(name, seed=7, **SMALL)
    again = load_dataset(name, seed=7, **SMALL)
    assert first.keys.as_list() == again.keys.as_list()
    assert list(first.queries.pairs()) == list(again.queries.pairs())
    other_seed = load_dataset(name, seed=8, **SMALL)
    assert first.keys.as_list() != other_seed.keys.as_list()


def test_query_seed_redraws_queries_over_identical_keys():
    base = load_dataset("dblp", seed=5, **SMALL)
    redrawn = load_dataset("dblp", seed=5, query_seed=99, **SMALL)
    assert base.keys.as_list() == redrawn.keys.as_list()
    assert list(base.queries.pairs()) != list(redrawn.queries.pairs())


def test_dataset_queries_draws_held_out_batches():
    workload = load_dataset("dblp", seed=2, **SMALL)
    held_out = dataset_queries("dblp", workload.keys, 128, seed=77)
    assert isinstance(held_out, ByteQueryBatch)
    assert len(held_out) == 128
    assert held_out.width == workload.width
    # Same seed reproduces, fresh seed differs from the design sample.
    again = dataset_queries("dblp", workload.keys, 128, seed=77)
    assert list(held_out.pairs()) == list(again.pairs())
    design_pairs = set(workload.queries.pairs())
    assert any(pair not in design_pairs for pair in held_out.pairs())


def test_dblp_corpus_file_matches_synthesis():
    # The committed file and the in-memory fallback must be the same corpus.
    path = DATA_DIR / "dblp_keys.txt"
    assert path.is_file(), "bundled corpus missing from the package data"
    from_file = [line for line in path.read_text().splitlines() if line]
    assert from_file == synthesize_dblp_corpus(_DBLP_CORPUS_SIZE, _DBLP_CORPUS_SEED)
    assert len(from_file) == _DBLP_CORPUS_SIZE
    assert from_file == sorted(set(from_file))
    assert all(key.split("/")[0] in ("conf", "journals") for key in from_file)


def test_ycsb_keys_preserve_numeric_order():
    workload = load_dataset("ycsb_e", seed=1, **SMALL)
    keys = workload.keys.as_list()
    assert all(key.startswith(b"user") and len(key) == 14 for key in keys)
    ids = [int(key[4:]) for key in keys]
    assert ids == sorted(ids)  # zero-padded decimal == lexicographic order


def test_sosd_facsimiles_are_clustered_in_their_widths():
    books = load_dataset("sosd_books", seed=4, **SMALL)
    osm = load_dataset("sosd_osm", seed=4, **SMALL)
    assert books.width == 48 and osm.width == 60
    for workload in (books, osm):
        top = (1 << workload.width) - 1
        keys = np.asarray(workload.keys.as_list(), dtype=object)
        assert int(keys[0]) >= 0 and int(keys[-1]) <= top


class TestDriverIntegration:
    def test_sweep_runs_on_a_dataset(self):
        from repro.evaluation.sweep import check_monotone, run_sweep

        report = run_sweep(
            families=("proteus", "prefix_bloom"),
            grid=(10.0, 16.0),
            num_keys=600,
            num_queries=300,
            seed=11,
            dataset="dblp",
        )
        meta = report["workload"]["metadata"]
        assert meta["dataset"] == "dblp"
        assert set(report["curves"]) == {"proteus", "prefix_bloom"}
        for points in report["curves"].values():
            for point in points:
                assert 0.0 <= point["empirical_fpr"] <= 1.0
        assert check_monotone(report, tolerance=0.05) == []

    def test_held_out_queries_uses_the_dataset_sampler(self):
        from repro.evaluation.sweep import held_out_queries

        workload = load_dataset("dblp", seed=6, **SMALL)
        batch = held_out_queries(workload, 64, seed=123, query_family="mixed")
        assert isinstance(batch, ByteQueryBatch)
        assert list(batch.pairs()) == list(
            dataset_queries("dblp", workload.keys, 64, 123).pairs()
        )

    def test_lsm_bench_runs_on_a_dataset(self):
        from repro.evaluation.lsm_bench import run_lsm_bench

        report = run_lsm_bench(
            families=("proteus",),
            bits_per_key=12.0,
            num_keys=800,
            num_queries=300,
            seed=13,
            sst_keys=128,
            dataset="dblp",
        )
        assert report["workload"]["metadata"]["dataset"] == "dblp"
        configs = report["configs"]
        assert configs["proteus"]["probe"]["missed_reads"] == 0
        assert (
            configs["proteus"]["probe"]["false_positive_reads"]
            <= configs["no_filter"]["probe"]["false_positive_reads"]
        )


def test_dataset_rng_isolation():
    # Loaders must not perturb (or depend on) the global random module.
    random.seed(0)
    before = random.random()
    random.seed(0)
    load_dataset("ycsb_e", seed=9, **SMALL)
    assert random.random() == before
